//! DynaMast — adaptive dynamic mastering for replicated systems.
//!
//! This is the umbrella crate of a from-scratch Rust reproduction of
//! *DynaMast: Adaptive Dynamic Mastering for Replicated Systems* (Abebe,
//! Glasbergen, Daudjee — ICDE 2020). It re-exports the workspace crates:
//!
//! * [`common`] — version vectors, ids, values, configuration, metrics.
//! * [`storage`] — the in-memory MVCC row store each data site runs.
//! * [`network`] — the simulated RPC substrate (stands in for Thrift + LAN).
//! * [`replication`] — durable per-site logs and lazy update propagation
//!   (stands in for Kafka).
//! * [`site`] — data sites: site manager + storage + replication manager.
//! * [`core`] — the paper's contribution: the dynamic mastering protocol,
//!   the adaptive site selector, and the assembled DynaMast system.
//! * [`baselines`] — single-master, multi-master, partition-store, and LEAP
//!   comparators built on the same substrate.
//! * [`workloads`] — YCSB, TPC-C, and SmallBank generators.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory
//! and experiment index.

pub use dynamast_baselines as baselines;
pub use dynamast_common as common;
pub use dynamast_core as core;
pub use dynamast_network as network;
pub use dynamast_replication as replication;
pub use dynamast_site as site;
pub use dynamast_storage as storage;
pub use dynamast_workloads as workloads;
