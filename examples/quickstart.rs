//! Quickstart: build a 3-site DynaMast deployment with a tiny key-value
//! workload, run transactions, and watch remastering happen.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes};
use dynamast::common::codec;
use dynamast::common::ids::{ClientId, Key, TableId};
use dynamast::common::{Result, Row, SystemConfig, Value};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::proc::{ProcCall, ProcExecutor, TxnCtx};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::storage::Catalog;

const KV: TableId = TableId::new(0);
const PROC_PUT: u32 = 1;
const PROC_GET: u32 = 2;

/// A two-procedure key-value "application": PUT writes a value, GET reads.
struct KvApp;

impl ProcExecutor for KvApp {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let mut args = call.args.clone();
        match call.proc_id {
            PROC_PUT => {
                let value = codec::get_u64(&mut args)?;
                for key in &call.write_set {
                    ctx.write(*key, Row::new(vec![Value::U64(value)]))?;
                }
                Ok(Bytes::new())
            }
            PROC_GET => {
                let mut sum = 0;
                for key in &call.read_keys {
                    if let Some(row) = ctx.read(*key)? {
                        sum += row.cell(0).as_u64()?;
                    }
                }
                let mut out = Vec::new();
                out.put_u64(sum);
                Ok(Bytes::from(out))
            }
            _ => Err(dynamast::common::DynaError::Internal("unknown proc")),
        }
    }
}

fn put(keys: &[u64], value: u64) -> ProcCall {
    let mut args = Vec::new();
    args.put_u64(value);
    ProcCall {
        proc_id: PROC_PUT,
        args: Bytes::from(args),
        write_set: keys.iter().map(|k| Key::new(KV, *k)).collect(),
        read_keys: vec![],
        read_ranges: vec![],
    }
}

fn get(keys: &[u64]) -> ProcCall {
    ProcCall {
        proc_id: PROC_GET,
        args: Bytes::new(),
        write_set: vec![],
        read_keys: keys.iter().map(|k| Key::new(KV, *k)).collect(),
        read_ranges: vec![],
    }
}

fn main() -> Result<()> {
    // 1. A catalog with one table: 100-key partitions, like the paper's YCSB.
    let mut catalog = Catalog::new();
    catalog.add_table("kv", 1, 100);

    // 2. Three data sites, adaptive site selector, simulated LAN.
    let config = SystemConfig::new(3);
    let system = DynaMastSystem::build(DynaMastConfig::adaptive(config, catalog), Arc::new(KvApp));

    // 3. A client session (carries the SSSI session vector).
    let mut session = ClientSession::new(ClientId::new(1), 3);

    // Writes to two far-apart partitions: the first touches place them, the
    // joint write set forces the selector to co-locate them (remastering).
    system.update(&mut session, &put(&[42], 7))?;
    system.update(&mut session, &put(&[4200], 8))?;
    system.update(&mut session, &put(&[42, 4200], 9))?;

    // Read-only transactions run at any replica that satisfies the session.
    let outcome = system.read(&mut session, &get(&[42, 4200]))?;
    let mut result = outcome.result.clone();
    println!("sum of both keys: {}", result.get_u64()); // 18

    let stats = system.stats();
    println!(
        "committed={} remaster_ops={} partitions_moved={} masters/site={:?}",
        stats.committed_updates, stats.remaster_ops, stats.partitions_moved, stats.masters_per_site
    );
    Ok(())
}
