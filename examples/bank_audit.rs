//! Bank-transfer scenario: run SmallBank on DynaMast under concurrent
//! clients, then audit that the bank's books balance — a live demonstration
//! of snapshot-isolated, lock-based write-write exclusion across dynamic
//! remastering.
//!
//! Run with: `cargo run --example bank_audit`

use std::sync::Arc;
use std::thread;

use bytes::Buf;
use dynamast::common::ids::{ClientId, Key};
use dynamast::common::{Result, StrategyWeights, SystemConfig};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::proc::ProcCall;
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::smallbank::{self, SmallBankConfig, SmallBankWorkload};
use dynamast::workloads::{TxnKind, Workload};

const CLIENTS: usize = 8;
const TXNS_PER_CLIENT: usize = 200;
const SITES: usize = 3;

fn main() -> Result<()> {
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_customers: 5_000,
        ..SmallBankConfig::default()
    });
    let config = SystemConfig::new(SITES)
        .with_weights(StrategyWeights::smallbank())
        .with_instant_service();
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(config, workload.catalog()),
        workload.executor(),
    );
    workload.populate(&mut |key, row| system.load_row(key, row))?;

    let expected_initial =
        workload.config().num_customers as i64 * workload.config().initial_balance * 2;
    println!(
        "loaded {} customers; total balance {expected_initial}",
        5_000
    );

    // Concurrent clients run the SmallBank mix; deposits add new money, so
    // track them to predict the audited total.
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let system = Arc::clone(&system);
        let mut generator = workload.client(ClientId::new(c), 42 + c as u64);
        handles.push(thread::spawn(move || -> Result<i64> {
            let mut session = ClientSession::new(ClientId::new(c), SITES);
            let mut deposited = 0i64;
            for _ in 0..TXNS_PER_CLIENT {
                let txn = generator.next_txn();
                match txn.kind {
                    TxnKind::Update => {
                        system.update(&mut session, &txn.call)?;
                        if txn.label == "single-row-update" {
                            let mut args = txn.call.args.clone();
                            deposited += dynamast::common::codec::get_i64(&mut args)?;
                        }
                    }
                    TxnKind::ReadOnly => {
                        system.read(&mut session, &txn.call)?;
                    }
                }
            }
            Ok(deposited)
        }));
    }
    let mut deposited = 0i64;
    for handle in handles {
        deposited += handle.join().expect("client panicked")?;
    }

    // Audit: read every customer's combined balance through the public API.
    let mut auditor = ClientSession::new(ClientId::new(999), SITES);
    // Freshness: the auditor session starts empty, so give replicas a
    // moment to converge and then read.
    thread::sleep(std::time::Duration::from_millis(200));
    let mut total = 0i64;
    for customer in 0..workload.config().num_customers {
        let call = ProcCall {
            proc_id: smallbank::PROC_BALANCE,
            args: bytes::Bytes::new(),
            write_set: vec![],
            read_keys: vec![
                Key::new(smallbank::CHECKING, customer),
                Key::new(smallbank::SAVINGS, customer),
            ],
            read_ranges: vec![],
        };
        let outcome = system.read(&mut auditor, &call)?;
        let mut slice = outcome.result.clone();
        total += slice.get_i64();
    }

    let stats = system.stats();
    println!(
        "{} update txns committed; {} remaster operations moved {} partitions",
        stats.committed_updates, stats.remaster_ops, stats.partitions_moved
    );
    println!("masters per site: {:?}", stats.masters_per_site);
    println!(
        "audited total: {total}; expected: {}",
        expected_initial + deposited
    );
    assert_eq!(
        total,
        expected_initial + deposited,
        "the books must balance"
    );
    println!("audit passed ✓");
    Ok(())
}
