//! Crash recovery (paper §V-C): run transactions, "crash" a data site, and
//! rebuild both the site's storage and the selector's mastership map from
//! the durable redo logs alone.
//!
//! Run with: `cargo run --example crash_recovery`

use std::sync::Arc;

use bytes::{BufMut, Bytes};
use dynamast::common::ids::{ClientId, Key, SiteId, TableId};
use dynamast::common::{Result, Row, SystemConfig, Value};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::core::recovery::{recover_selector_map, recover_site};
use dynamast::site::proc::{ProcCall, ProcExecutor, TxnCtx};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::storage::Catalog;

const KV: TableId = TableId::new(0);
const PROC_SET: u32 = 1;

struct SetApp;

impl ProcExecutor for SetApp {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let mut args = call.args.clone();
        let value = dynamast::common::codec::get_u64(&mut args)?;
        for key in &call.write_set {
            ctx.write(*key, Row::new(vec![Value::U64(value)]))?;
        }
        Ok(Bytes::new())
    }
}

fn set(keys: &[u64], value: u64) -> ProcCall {
    let mut args = Vec::new();
    args.put_u64(value);
    ProcCall {
        proc_id: PROC_SET,
        args: Bytes::from(args),
        write_set: keys.iter().map(|k| Key::new(KV, *k)).collect(),
        read_keys: vec![],
        read_ranges: vec![],
    }
}

fn main() -> Result<()> {
    let mut catalog = Catalog::new();
    catalog.add_table("kv", 1, 100);
    let config = SystemConfig::new(3)
        .with_instant_network()
        .with_instant_service();
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(config, catalog.clone()),
        Arc::new(SetApp),
    );

    // A workload that spreads mastership and forces some remastering.
    let mut session = ClientSession::new(ClientId::new(1), 3);
    for i in 0..50u64 {
        system.update(&mut session, &set(&[i * 100], i))?;
    }
    for i in 0..10u64 {
        system.update(&mut session, &set(&[i * 100, (i + 20) * 100], 1000 + i))?;
    }
    println!(
        "before crash: {} commits, {} remaster ops",
        system.stats().committed_updates,
        system.stats().remaster_ops
    );

    // "Crash" site 1: cut it off the network. In-flight work drains; the
    // durable logs survive (they are the Kafka stand-in).
    system
        .network()
        .disconnect(dynamast::network::EndpointId::Site(1));
    println!("site 1 disconnected");

    // Recover site 1 purely from the logs.
    let recovered = recover_site(SiteId::new(1), system.logs(), catalog, 4, &[])?;
    println!(
        "replayed {} records; recovered svv = {}",
        recovered.state.offsets.iter().sum::<u64>(),
        recovered.state.svv
    );

    // The recovered store must agree with a live replica on every record.
    let live = &system.sites()[0];
    let snapshot = live.clock().current();
    let mut checked = 0;
    for i in 0..50u64 {
        let key = Key::new(KV, i * 100);
        let live_row = live.store().read(key, &snapshot)?;
        let recovered_row = recovered.state.store.read(key, &recovered.state.svv)?;
        assert_eq!(live_row, recovered_row, "divergence at {key:?}");
        checked += 1;
    }
    println!("verified {checked} records match a live replica ✓");

    // The selector's mastership map is also reconstructible from the logs.
    let map = recover_selector_map(system.logs(), &[])?;
    println!(
        "recovered mastership for {} partitions; site 1 mastered {}",
        map.len(),
        recovered.mastered.len()
    );
    let placements = system.selector().map().placements();
    for (partition, master) in placements {
        if let Some(live_master) = master {
            assert_eq!(
                map.get(&partition),
                Some(&live_master),
                "mastership diverged"
            );
        }
    }
    println!("recovered mastership map matches the live selector ✓");
    Ok(())
}
