//! Architecture shoot-out: run the same YCSB burst on all five systems the
//! paper evaluates and print a side-by-side comparison — a miniature
//! Figure 4a you can run in seconds.
//!
//! Run with: `cargo run --release --example architecture_comparison`

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use dynamast::baselines::leap::LeapSystem;
use dynamast::baselines::single_master::single_master;
use dynamast::baselines::static_system::{StaticKind, StaticSystem};
use dynamast::common::ids::ClientId;
use dynamast::common::{Result, SystemConfig};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::network::{Network, TrafficCategory};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::{TxnKind, Workload, YcsbConfig, YcsbWorkload};

const CLIENTS: usize = 8;
const TXNS_PER_CLIENT: usize = 150;
const SITES: usize = 4;

/// Asserts the traffic matrix matches the architecture: every category in
/// `expected` saw at least one message, every other category saw none. A
/// zero where traffic belongs (or traffic where none belongs) means an RPC
/// path lost its accounting — exactly the regression this example guards.
fn audit_traffic(name: &str, network: &Arc<Network>, expected: &[TrafficCategory]) {
    let snapshot = network.stats().snapshot();
    let mut bad = Vec::new();
    for category in TrafficCategory::ALL {
        let messages = snapshot.get(category).messages;
        let relevant = expected.contains(&category);
        if relevant && messages == 0 {
            bad.push(format!("{} expected traffic, saw none", category.label()));
        } else if !relevant && messages != 0 {
            bad.push(format!(
                "{} expected no traffic, saw {messages} msgs",
                category.label()
            ));
        }
    }
    assert!(bad.is_empty(), "{name}: traffic audit failed: {bad:?}");
    let breakdown: Vec<String> = expected
        .iter()
        .map(|c| {
            let totals = snapshot.get(*c);
            format!("{} {:.1} KiB", c.label(), totals.bytes as f64 / 1024.0)
        })
        .collect();
    println!("{:>16}  traffic: {}", "", breakdown.join(" | "));
}

fn drive(name: &str, system: Arc<dyn ReplicatedSystem>, workload: &YcsbWorkload) -> Result<()> {
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let system = Arc::clone(&system);
        let mut generator = workload.client(ClientId::new(c), 7 + c as u64);
        handles.push(thread::spawn(move || -> Result<()> {
            let mut session = ClientSession::new(ClientId::new(c), SITES);
            for _ in 0..TXNS_PER_CLIENT {
                let txn = generator.next_txn();
                match txn.kind {
                    TxnKind::Update => system.update(&mut session, &txn.call)?,
                    TxnKind::ReadOnly => system.read(&mut session, &txn.call)?,
                };
            }
            Ok(())
        }));
    }
    for handle in handles {
        handle.join().expect("client panicked")?;
    }
    let elapsed = start.elapsed();
    let total = (CLIENTS * TXNS_PER_CLIENT) as f64;
    let stats = system.stats();
    println!(
        "{name:>16}: {:7.0} txn/s | commits {:5} | aborts {:3} | remasters {:4} | resident {:5.1} MiB",
        total / elapsed.as_secs_f64(),
        stats.committed_updates,
        stats.aborts,
        stats.remaster_ops,
        stats.resident_bytes as f64 / (1024.0 * 1024.0),
    );
    Ok(())
}

fn main() -> Result<()> {
    let workload = YcsbWorkload::new(YcsbConfig {
        num_keys: 20_000,
        rmw_fraction: 0.5,
        ..YcsbConfig::default()
    });
    // Small, fast-to-run configuration: real protocol, light service costs.
    let config = || SystemConfig::new(SITES).with_instant_service();
    println!("YCSB 50/50 RMW/scan, {SITES} sites, {CLIENTS} clients x {TXNS_PER_CLIENT} txns\n");

    let dynamast = DynaMastSystem::build(
        DynaMastConfig::adaptive(config(), workload.catalog()),
        workload.executor(),
    );
    workload.populate(&mut |k, r| dynamast.load_row(k, r))?;
    let net = Arc::clone(dynamast.network());
    drive("dynamast", dynamast as Arc<dyn ReplicatedSystem>, &workload)?;
    audit_traffic(
        "dynamast",
        &net,
        &[
            TrafficCategory::ClientSelector,
            TrafficCategory::ClientSite,
            TrafficCategory::Remaster,
            TrafficCategory::Replication,
        ],
    );

    // The same system under floor-2 partial replication: the resident
    // column is the point — the store footprint drops toward 2/4 of full
    // replication while the client API stays identical. DataShip traffic
    // appears because grants to sites without a copy install one first
    // (create-then-grant) and the provisioning planner moves copies.
    let partial = DynaMastSystem::build(
        DynaMastConfig::adaptive(config().with_partial_replication(2), workload.catalog()),
        workload.executor(),
    );
    workload.populate(&mut |k, r| partial.load_row(k, r))?;
    let net = Arc::clone(partial.network());
    drive(
        "dynamast-floor2",
        partial as Arc<dyn ReplicatedSystem>,
        &workload,
    )?;
    audit_traffic(
        "dynamast-floor2",
        &net,
        &[
            TrafficCategory::ClientSelector,
            TrafficCategory::ClientSite,
            TrafficCategory::Remaster,
            TrafficCategory::Replication,
            TrafficCategory::DataShip,
        ],
    );

    let sm = single_master(config(), workload.catalog(), workload.executor());
    workload.populate(&mut |k, r| sm.load_row(k, r))?;
    let net = Arc::clone(sm.network());
    drive("single-master", sm as Arc<dyn ReplicatedSystem>, &workload)?;
    // Remaster traffic with zero remaster ops: first-touch placement grants
    // are charged to the remaster category even under a pinned strategy.
    audit_traffic(
        "single-master",
        &net,
        &[
            TrafficCategory::ClientSelector,
            TrafficCategory::ClientSite,
            TrafficCategory::Remaster,
            TrafficCategory::Replication,
        ],
    );

    for kind in [StaticKind::MultiMaster, StaticKind::PartitionStore] {
        let system = StaticSystem::build(
            kind,
            config(),
            workload.catalog(),
            workload.static_owner(SITES),
            workload.static_tables(),
            workload.executor(),
            8,
        );
        workload.populate(&mut |k, r| system.load_row(k, r))?;
        let name = if kind == StaticKind::MultiMaster {
            "multi-master"
        } else {
            "partition-store"
        };
        let net = Arc::clone(system.network());
        drive(name, system as Arc<dyn ReplicatedSystem>, &workload)?;
        // Both static systems spread writes through client-coordinated 2PC.
        // Multi-master additionally tails every commit out to the other
        // full replicas; partition-store owns each partition exactly once,
        // so its propagator has nothing to ship.
        let expected: &[TrafficCategory] = if kind == StaticKind::MultiMaster {
            &[
                TrafficCategory::ClientSite,
                TrafficCategory::TwoPhaseCommit,
                TrafficCategory::Replication,
            ]
        } else {
            &[TrafficCategory::ClientSite, TrafficCategory::TwoPhaseCommit]
        };
        audit_traffic(name, &net, expected);
    }

    let leap = LeapSystem::build(
        config(),
        workload.catalog(),
        workload.static_owner(SITES),
        workload.static_tables(),
        workload.executor(),
        8,
    );
    workload.populate(&mut |k, r| leap.load_row(k, r))?;
    let net = Arc::clone(leap.network());
    drive("leap", leap as Arc<dyn ReplicatedSystem>, &workload)?;
    audit_traffic(
        "leap",
        &net,
        &[
            TrafficCategory::ClientSelector,
            TrafficCategory::ClientSite,
            TrafficCategory::DataShip,
        ],
    );

    Ok(())
}
