//! Architecture shoot-out: run the same YCSB burst on all five systems the
//! paper evaluates and print a side-by-side comparison — a miniature
//! Figure 4a you can run in seconds.
//!
//! Run with: `cargo run --release --example architecture_comparison`

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use dynamast::baselines::leap::LeapSystem;
use dynamast::baselines::single_master::single_master;
use dynamast::baselines::static_system::{StaticKind, StaticSystem};
use dynamast::common::ids::ClientId;
use dynamast::common::{Result, SystemConfig};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::{TxnKind, Workload, YcsbConfig, YcsbWorkload};

const CLIENTS: usize = 8;
const TXNS_PER_CLIENT: usize = 150;
const SITES: usize = 4;

fn drive(name: &str, system: Arc<dyn ReplicatedSystem>, workload: &YcsbWorkload) -> Result<()> {
    let start = Instant::now();
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let system = Arc::clone(&system);
        let mut generator = workload.client(ClientId::new(c), 7 + c as u64);
        handles.push(thread::spawn(move || -> Result<()> {
            let mut session = ClientSession::new(ClientId::new(c), SITES);
            for _ in 0..TXNS_PER_CLIENT {
                let txn = generator.next_txn();
                match txn.kind {
                    TxnKind::Update => system.update(&mut session, &txn.call)?,
                    TxnKind::ReadOnly => system.read(&mut session, &txn.call)?,
                };
            }
            Ok(())
        }));
    }
    for handle in handles {
        handle.join().expect("client panicked")?;
    }
    let elapsed = start.elapsed();
    let total = (CLIENTS * TXNS_PER_CLIENT) as f64;
    let stats = system.stats();
    println!(
        "{name:>16}: {:7.0} txn/s | commits {:5} | aborts {:3} | remasters {:4}",
        total / elapsed.as_secs_f64(),
        stats.committed_updates,
        stats.aborts,
        stats.remaster_ops,
    );
    Ok(())
}

fn main() -> Result<()> {
    let workload = YcsbWorkload::new(YcsbConfig {
        num_keys: 20_000,
        rmw_fraction: 0.5,
        ..YcsbConfig::default()
    });
    // Small, fast-to-run configuration: real protocol, light service costs.
    let config = || SystemConfig::new(SITES).with_instant_service();
    println!("YCSB 50/50 RMW/scan, {SITES} sites, {CLIENTS} clients x {TXNS_PER_CLIENT} txns\n");

    let dynamast = DynaMastSystem::build(
        DynaMastConfig::adaptive(config(), workload.catalog()),
        workload.executor(),
    );
    workload.populate(&mut |k, r| dynamast.load_row(k, r))?;
    drive("dynamast", dynamast as Arc<dyn ReplicatedSystem>, &workload)?;

    let sm = single_master(config(), workload.catalog(), workload.executor());
    workload.populate(&mut |k, r| sm.load_row(k, r))?;
    drive("single-master", sm as Arc<dyn ReplicatedSystem>, &workload)?;

    for kind in [StaticKind::MultiMaster, StaticKind::PartitionStore] {
        let system = StaticSystem::build(
            kind,
            config(),
            workload.catalog(),
            workload.static_owner(SITES),
            workload.static_tables(),
            workload.executor(),
            8,
        );
        workload.populate(&mut |k, r| system.load_row(k, r))?;
        let name = if kind == StaticKind::MultiMaster {
            "multi-master"
        } else {
            "partition-store"
        };
        drive(name, system as Arc<dyn ReplicatedSystem>, &workload)?;
    }

    let leap = LeapSystem::build(
        config(),
        workload.catalog(),
        workload.static_owner(SITES),
        workload.static_tables(),
        workload.executor(),
        8,
    );
    workload.populate(&mut |k, r| leap.load_row(k, r))?;
    drive("leap", leap as Arc<dyn ReplicatedSystem>, &workload)?;

    Ok(())
}
