//! Flight-recorder walkthrough: run a SmallBank burst against an adaptive
//! DynaMast deployment, then reconstruct one transaction's causal timeline
//! (route → remaster → execute → commit → refresh) and explain one remaster
//! decision's per-candidate feature scores (paper Eq. 8).
//!
//! Run with: `cargo run --release --example trace`
//!
//! Environment:
//! * `TRACE_RING` — per-thread recorder ring capacity (default 1024).
//! * `DYNA_METRICS_JSON` — when set, the unified metrics snapshot is written
//!   to this path (CI validates it against `schemas/metrics_snapshot.schema.json`).

use std::thread;

use dynamast::common::ids::ClientId;
use dynamast::common::trace::{render_timelines, TraceEvent, TraceKind, TracePayload};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::smallbank::{SmallBankConfig, SmallBankWorkload};
use dynamast::workloads::spec::{TxnKind, Workload};

const NUM_SITES: usize = 3;
const CLIENTS: usize = 4;
const TXNS_PER_CLIENT: usize = 250;

fn main() -> dynamast::common::Result<()> {
    // A small SmallBank instance with a pronounced hotspot: the co-access
    // pattern gives the selector real remaster decisions to make.
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_customers: 2_000,
        hotspot_size: 100,
        ..SmallBankConfig::default()
    });
    let config = dynamast::common::SystemConfig::new(NUM_SITES);
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(config, workload.catalog()),
        workload.executor(),
    );
    workload.populate(&mut |key, row| system.load_row(key, row))?;

    // Burst: a few client threads each running their deterministic stream.
    thread::scope(|scope| {
        for c in 0..CLIENTS {
            let system = &system;
            let workload = &workload;
            scope.spawn(move || {
                let id = ClientId::new(c + 1);
                let mut generator = workload.client(id, 0xF11_6487 + c as u64);
                let mut session = ClientSession::new(id, NUM_SITES);
                for _ in 0..TXNS_PER_CLIENT {
                    let txn = generator.next_txn();
                    let outcome = match txn.kind {
                        TxnKind::Update => system.update(&mut session, &txn.call),
                        TxnKind::ReadOnly => system.read(&mut session, &txn.call),
                    };
                    // Chaos-free run: every transaction must commit.
                    outcome.unwrap_or_else(|e| panic!("{} failed: {e}", txn.label));
                }
            });
        }
    });

    let events = system.recorder().snapshot();
    println!(
        "recorded {} events across the burst ({} dropped under snapshot contention)\n",
        events.len(),
        system.recorder().dropped()
    );

    print_one_lifecycle(&events);
    print_one_decision(&events);

    let stats = system.stats();
    println!(
        "burst summary: committed={} remaster_ops={} partitions_moved={} masters/site={:?}\n",
        stats.committed_updates, stats.remaster_ops, stats.partitions_moved, stats.masters_per_site
    );

    // The unified metrics snapshot: selector counters + the traffic matrix.
    let json = system.metrics().snapshot_json();
    match std::env::var("DYNA_METRICS_JSON") {
        Ok(path) if !path.is_empty() => {
            std::fs::write(&path, &json).expect("write DYNA_METRICS_JSON");
            println!("metrics snapshot written to {path}");
        }
        _ => println!("metrics snapshot:\n{json}"),
    }
    Ok(())
}

/// Picks the most interesting fully-recorded transaction — preferring one
/// whose routing required a remaster — and prints its causal timeline.
fn print_one_lifecycle(events: &[TraceEvent]) {
    let complete = |txn: u64| {
        let has = |k: TraceKind| events.iter().any(|e| e.txn_id == txn && e.kind == k);
        has(TraceKind::Route) && has(TraceKind::TxnCommit)
    };
    let remastered = events.iter().rev().find(|e| {
        matches!(e.payload, TracePayload::Route { remastered, .. } if remastered)
            && complete(e.txn_id)
    });
    let chosen = remastered
        .or_else(|| {
            events
                .iter()
                .rev()
                .find(|e| e.kind == TraceKind::Route && complete(e.txn_id))
        })
        .map(|e| e.txn_id);
    let Some(txn) = chosen else {
        println!("no complete transaction lifecycle in the recorder window");
        return;
    };
    // Keep the transaction's own events plus every untraced refresh event;
    // the renderer joins the refreshes in via the commit's version stamp.
    let slice: Vec<TraceEvent> = events
        .iter()
        .filter(|e| e.txn_id == txn || (e.txn_id == 0 && e.kind == TraceKind::RefreshApply))
        .cloned()
        .collect();
    println!("=== one transaction's causal timeline ===");
    print!("{}", render_timelines(&slice, 1));
    println!();
}

/// Prints the per-candidate four-feature scoring table of the most recent
/// remaster decision (Eq. 8: total = balance − delay + intra + inter).
fn print_one_decision(events: &[TraceEvent]) {
    let Some(ev) = events
        .iter()
        .rev()
        .find(|e| e.kind == TraceKind::RemasterDecision)
    else {
        println!("no remaster decision in the recorder window");
        return;
    };
    let TracePayload::Decision {
        chosen,
        partitions,
        epoch,
        candidates,
    } = &ev.payload
    else {
        return;
    };
    println!(
        "=== one remaster decision explained (txn {}, {partitions} partitions, epoch {epoch}, chose site{chosen}) ===",
        ev.txn_id
    );
    println!("  site   balance    delay    intra    inter    total");
    for c in candidates.iter() {
        println!(
            "  {:>4} {:>9.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}{}{}",
            c.site,
            c.balance,
            c.delay,
            c.intra,
            c.inter,
            c.total,
            if c.site == *chosen { "  <= chosen" } else { "" },
            if c.reachable { "" } else { "  (unreachable)" }
        );
    }
    println!("  (total = balance - delay + intra + inter; argmax wins, ties to the lowest id)\n");
}
