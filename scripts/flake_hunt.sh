#!/usr/bin/env bash
# Flake hunter for the ~1/115 conservation flake seen in the selector crash
# sweep (ROADMAP: "+166 at crash_point=MidBatchGrant, seed
# 0xeb331be71de3aff9"). Loops the sweep with the invariant auditor armed so
# a reproduction pins the exact overwritten debit/credit — the first
# iteration replays the recorded seed at the recorded crash point, the rest
# hunt fresh seeds.
#
# Usage: scripts/flake_hunt.sh [iterations]   (default 25)
#
# On failure the auditor's black-box bundles (offending write, causal
# timelines, replay seed) are kept under $DYNA_AUDIT_DIR and the script
# exits non-zero with the failing seed printed.
set -u

ITERATIONS="${1:-25}"
PINNED_SEED="0xeb331be71de3aff9"
PINNED_POINT="MidBatchGrant"
export DYNA_AUDIT_DIR="${DYNA_AUDIT_DIR:-target/flake-hunt-bundles}"
mkdir -p "$DYNA_AUDIT_DIR"

echo "[flake-hunt] building release test binary..."
cargo test --release --test selector_failover --no-run || exit 1

run_sweep() {
  local seed="$1" point="$2" label="$3"
  echo "[flake-hunt] $label: CHAOS_SEED=$seed DYNA_CRASH_POINT=${point:-<all>}"
  if [ -n "$point" ]; then
    CHAOS_SEED="$seed" DYNA_CRASH_POINT="$point" \
      cargo test --release --test selector_failover \
      selector_crash_sweep_covers_every_crash_point -- --exact --nocapture
  else
    CHAOS_SEED="$seed" \
      cargo test --release --test selector_failover \
      selector_crash_sweep_covers_every_crash_point -- --exact --nocapture
  fi
  local status=$?
  if [ $status -ne 0 ]; then
    echo "[flake-hunt] FAILURE at seed $seed (crash point ${point:-all})"
    echo "[flake-hunt] audit bundles retained in $DYNA_AUDIT_DIR:"
    ls -l "$DYNA_AUDIT_DIR" 2>/dev/null || true
    exit $status
  fi
}

# Iteration 1 replays the recorded flake coordinates.
run_sweep "$PINNED_SEED" "$PINNED_POINT" "pinned replay 1/$ITERATIONS"

# Remaining iterations hunt fresh seeds at the pinned crash point (the
# suspected double-master window lives in the epoch-batched grant path).
i=2
while [ "$i" -le "$ITERATIONS" ]; do
  seed="0x$(od -An -N8 -tx8 /dev/urandom | tr -d ' ')"
  run_sweep "$seed" "$PINNED_POINT" "fresh seed $i/$ITERATIONS"
  i=$((i + 1))
done

echo "[flake-hunt] $ITERATIONS iterations clean — no violation reproduced"
