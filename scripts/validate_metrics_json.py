#!/usr/bin/env python3
"""Validate a MetricsRegistry snapshot against its checked-in JSON schema.

Stdlib-only (no jsonschema dependency): implements exactly the schema
subset `schemas/metrics_snapshot.schema.json` uses — `type` (object /
integer / array), `required`, `properties`, `additionalProperties`
(false or a subschema), `items`, `minimum`, and local `$ref` into
`$defs`.

Usage: validate_metrics_json.py <schema.json> <document.json>
Exits 0 when the document conforms; prints every violation and exits 1
otherwise.
"""

import json
import sys


class Validator:
    def __init__(self, schema):
        self.root = schema
        self.errors = []

    def resolve(self, schema):
        """Follows a local `$ref` (e.g. `#/$defs/categoryTotals`)."""
        while "$ref" in schema:
            ref = schema["$ref"]
            if not ref.startswith("#/"):
                raise ValueError(f"only local $refs supported, got {ref!r}")
            node = self.root
            for part in ref[2:].split("/"):
                node = node[part]
            schema = node
        return schema

    def check(self, schema, value, path):
        schema = self.resolve(schema)

        expected = schema.get("type")
        if expected == "object":
            if not isinstance(value, dict):
                self.errors.append(f"{path}: expected object, got {type(value).__name__}")
                return
        elif expected == "integer":
            # bool is an int subclass in Python; a JSON true is not an integer.
            if not isinstance(value, int) or isinstance(value, bool):
                self.errors.append(f"{path}: expected integer, got {type(value).__name__}")
                return
            if "minimum" in schema and value < schema["minimum"]:
                self.errors.append(f"{path}: {value} below minimum {schema['minimum']}")
            return
        elif expected == "array":
            if not isinstance(value, list):
                self.errors.append(f"{path}: expected array, got {type(value).__name__}")
                return
            items = schema.get("items")
            if items is not None:
                for index, item in enumerate(value):
                    self.check(items, item, f"{path}/{index}")
            return
        elif expected is not None:
            raise ValueError(f"unsupported type keyword {expected!r} at {path}")

        props = schema.get("properties", {})
        for name in schema.get("required", []):
            if name not in value:
                self.errors.append(f"{path}: missing required property {name!r}")
        for name, subvalue in value.items():
            subpath = f"{path}/{name}"
            if name in props:
                self.check(props[name], subvalue, subpath)
            else:
                additional = schema.get("additionalProperties", True)
                if additional is False:
                    self.errors.append(f"{path}: unexpected property {name!r}")
                elif additional is not True:
                    self.check(additional, subvalue, subpath)


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} <schema.json> <document.json>")
    with open(sys.argv[1], encoding="utf-8") as f:
        schema = json.load(f)
    with open(sys.argv[2], encoding="utf-8") as f:
        document = json.load(f)

    validator = Validator(schema)
    validator.check(schema, document, "$")
    if validator.errors:
        print(f"{sys.argv[2]} violates {sys.argv[1]}:", file=sys.stderr)
        for error in validator.errors:
            print(f"  {error}", file=sys.stderr)
        sys.exit(1)
    print(f"{sys.argv[2]}: conforms to {sys.argv[1]}")


if __name__ == "__main__":
    main()
