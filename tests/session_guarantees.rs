//! Strong-session snapshot isolation (paper §III-A, Appendix B): clients
//! always observe their own prior writes, sessions never travel backwards in
//! time, and snapshot reads are transactionally consistent.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use bytes::{Buf, BufMut, Bytes};
use dynamast::common::ids::{ClientId, Key, TableId};
use dynamast::common::{Result, Row, SystemConfig, Value};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::proc::{ProcCall, ProcExecutor, TxnCtx};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::storage::Catalog;

const KV: TableId = TableId::new(0);
const PROC_SET_PAIR: u32 = 1;
const PROC_READ_PAIR: u32 = 2;

/// SET_PAIR writes the same value to both keys of the write set; READ_PAIR
/// returns both keys' values. Snapshot isolation requires a reader to see
/// the pair at a single consistent state: both cells equal.
struct PairApp;

impl ProcExecutor for PairApp {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let mut args = call.args.clone();
        match call.proc_id {
            PROC_SET_PAIR => {
                let value = dynamast::common::codec::get_u64(&mut args)?;
                for key in &call.write_set {
                    ctx.write(*key, Row::new(vec![Value::U64(value)]))?;
                }
                Ok(Bytes::new())
            }
            PROC_READ_PAIR => {
                let mut out = Vec::with_capacity(16);
                for key in &call.read_keys {
                    let value = match ctx.read(*key)? {
                        Some(row) => row.cell(0).as_u64()?,
                        None => 0,
                    };
                    out.put_u64(value);
                }
                Ok(Bytes::from(out))
            }
            _ => Err(dynamast::common::DynaError::Internal("unknown proc")),
        }
    }
}

fn set_pair(a: u64, b: u64, value: u64) -> ProcCall {
    let mut args = Vec::new();
    args.put_u64(value);
    ProcCall {
        proc_id: PROC_SET_PAIR,
        args: Bytes::from(args),
        write_set: vec![Key::new(KV, a), Key::new(KV, b)],
        read_keys: vec![],
        read_ranges: vec![],
    }
}

fn read_pair(a: u64, b: u64) -> ProcCall {
    ProcCall {
        proc_id: PROC_READ_PAIR,
        args: Bytes::new(),
        write_set: vec![],
        read_keys: vec![Key::new(KV, a), Key::new(KV, b)],
        read_ranges: vec![],
    }
}

fn build(num_sites: usize) -> Arc<DynaMastSystem> {
    let mut catalog = Catalog::new();
    catalog.add_table("kv", 1, 100);
    let config = SystemConfig::new(num_sites)
        .with_instant_network()
        .with_instant_service();
    DynaMastSystem::build(DynaMastConfig::adaptive(config, catalog), Arc::new(PairApp))
}

/// Read-your-writes: a session's read immediately after its write observes
/// the write, at whichever replica the read routes to.
#[test]
fn sessions_read_their_own_writes() {
    let system = build(4);
    let mut session = ClientSession::new(ClientId::new(1), 4);
    for value in 1..=50u64 {
        system.update(&mut session, &set_pair(1, 2, value)).unwrap();
        let outcome = system.read(&mut session, &read_pair(1, 2)).unwrap();
        let mut result = outcome.result.clone();
        assert_eq!(result.get_u64(), value);
        assert_eq!(result.get_u64(), value);
    }
}

/// Monotonic reads: values observed by one session never go backwards even
/// when reads bounce between replicas.
#[test]
fn session_reads_are_monotone() {
    let system = build(4);
    let writer = {
        let system = Arc::clone(&system);
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            let mut session = ClientSession::new(ClientId::new(9), 4);
            let mut value = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                value += 1;
                system.update(&mut session, &set_pair(5, 6, value)).unwrap();
            }
        });
        (stop, handle)
    };
    let mut session = ClientSession::new(ClientId::new(1), 4);
    let mut last = 0u64;
    for _ in 0..200 {
        let outcome = system.read(&mut session, &read_pair(5, 6)).unwrap();
        let mut result = outcome.result.clone();
        let a = result.get_u64();
        assert!(a >= last, "session went back in time: {a} < {last}");
        last = a;
    }
    writer.0.store(true, Ordering::Relaxed);
    writer.1.join().unwrap();
}

/// Snapshot consistency: a pair written atomically is never observed torn,
/// even while a concurrent writer races and partitions remaster. The two
/// keys live in different partitions, so this exercises cross-partition
/// snapshot reads under remastering.
#[test]
fn paired_writes_are_never_torn() {
    let system = build(3);
    let a = 10u64; // partition 0
    let b = 510u64; // partition 5
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let system = Arc::clone(&system);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut session = ClientSession::new(ClientId::new(7), 3);
            let mut value = 0u64;
            while !stop.load(Ordering::Relaxed) {
                value += 1;
                system.update(&mut session, &set_pair(a, b, value)).unwrap();
            }
            value
        })
    };
    let mut readers = Vec::new();
    for r in 0..3usize {
        let system = Arc::clone(&system);
        let stop = Arc::clone(&stop);
        readers.push(thread::spawn(move || {
            let mut session = ClientSession::new(ClientId::new(100 + r), 3);
            let mut checked = 0;
            while !stop.load(Ordering::Relaxed) {
                let outcome = system.read(&mut session, &read_pair(a, b)).unwrap();
                let mut result = outcome.result.clone();
                let va = result.get_u64();
                let vb = result.get_u64();
                assert_eq!(va, vb, "torn read: {va} vs {vb}");
                checked += 1;
            }
            checked
        }));
    }
    thread::sleep(std::time::Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    let total_writes = writer.join().unwrap();
    let total_checks: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_writes > 10, "writer made progress");
    assert!(total_checks > 10, "readers made progress");
}

/// Write-write conflicts serialize without aborts (the paper's lock-based
/// design): concurrent increments to a shared pair never lose an update.
#[test]
fn concurrent_writers_never_lose_updates() {
    let system = build(3);
    let mut handles = Vec::new();
    for t in 0..4usize {
        let system = Arc::clone(&system);
        handles.push(thread::spawn(move || {
            let mut session = ClientSession::new(ClientId::new(t), 3);
            for i in 0..50u64 {
                // Distinct values per writer; the final state is the last
                // committed pair, and every commit must succeed.
                system
                    .update(&mut session, &set_pair(800, 801, t as u64 * 1000 + i))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(system.stats().committed_updates, 200);
    assert_eq!(
        system.stats().aborts,
        0,
        "lock-based WW handling never aborts"
    );
}
