//! Partial replication: client-visible equivalence with full replication,
//! and availability/repair behavior when a floor-2 replica crashes.
//!
//! The equivalence property is the contract that makes partial replication a
//! *deployment* knob rather than a semantic one: for the same seeded,
//! single-client workload, a `replication=partial` system must return
//! byte-identical results for every transaction a full-replication system
//! runs, conserve SmallBank balances, and end with every tracked partition
//! at or above the copy floor — while actually holding fewer resident rows.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use bytes::Bytes;
use dynamast::common::ids::{ClientId, Key, PartitionId, SiteId};
use dynamast::common::{DynaError, SystemConfig, VersionVector};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::smallbank::{self, SmallBankConfig, SmallBankWorkload};
use dynamast::workloads::Workload;
use proptest::prelude::*;

use common::{
    arm_auditor, arm_watchdog, assert_audit_clean, await_convergence, chaos_config, chaos_seed,
    pair_balance, tolerable, transfer, Rng,
};

const SITES: usize = 4;
const FLOOR: usize = 2;
const CUSTOMERS: u64 = 800;
const INITIAL: i64 = 10_000;
const PARTITION_SIZE: u64 = 100;

fn build(partial: bool) -> Arc<DynaMastSystem> {
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_customers: CUSTOMERS,
        initial_balance: INITIAL,
        ..SmallBankConfig::default()
    });
    let mut config = SystemConfig::new(SITES)
        .with_instant_network()
        .with_instant_service();
    if partial {
        config = config.with_partial_replication(FLOOR);
    }
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(config, workload.catalog()),
        workload.executor(),
    );
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();
    system
}

/// Runs a seeded single-client stream of transfers and pair-balance reads,
/// returning every client-visible result payload in order.
fn run(system: &DynaMastSystem, seed: u64, txns: u64) -> Vec<Bytes> {
    let mut session = ClientSession::new(ClientId::new(1), SITES);
    let mut rng = Rng(seed);
    let mut results = Vec::with_capacity(txns as usize);
    for _ in 0..txns {
        let outcome = match rng.next() % 3 {
            0 | 1 => {
                let from = rng.next() % CUSTOMERS;
                let mut to = rng.next() % CUSTOMERS;
                if to == from {
                    to = (to + 1) % CUSTOMERS;
                }
                let amount = (rng.next() % 100) as i64 + 1;
                system
                    .update(&mut session, &transfer(from, to, amount))
                    .unwrap()
            }
            _ => {
                let a = rng.next() % CUSTOMERS;
                let mut b = rng.next() % CUSTOMERS;
                if b == a {
                    b = (b + 1) % CUSTOMERS;
                }
                system.read(&mut session, &pair_balance(a, b)).unwrap()
            }
        };
        results.push(outcome.result);
    }
    results
}

/// Sum of all checking balances, reading each partition from a site that
/// actually hosts it (under partial replication site 0 need not).
fn checking_total(system: &DynaMastSystem, seed: u64) -> i64 {
    let target = system
        .sites()
        .iter()
        .map(|s| s.clock().current())
        .fold(VersionVector::zero(SITES), |acc, vv| acc.max_with(&vv));
    await_convergence(system, &target, seed);
    let sites = system.sites();
    let rmap = Arc::clone(system.selector().replica_map());
    (0..CUSTOMERS)
        .map(|customer| {
            let key = Key::new(smallbank::CHECKING, customer);
            let partition =
                dynamast::common::ids::partition_id(smallbank::CHECKING, customer / PARTITION_SIZE);
            let host = rmap.replicas(partition)[0];
            sites[host.as_usize()]
                .store()
                .read(key, &target)
                .unwrap()
                .expect("populated account vanished")
                .cell(0)
                .as_i64()
                .unwrap()
        })
        .sum()
}

fn resident_total(system: &DynaMastSystem) -> u64 {
    system
        .sites()
        .iter()
        .map(|s| s.store().resident_bytes())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Full and partial replication run the same seeded workload: every
    /// client-visible result must be byte-identical, money conserved in
    /// both, no tracked partition below the floor, and the partial system
    /// must hold strictly fewer resident bytes.
    #[test]
    fn full_and_partial_replication_are_client_equivalent(
        seed in any::<u64>(),
        txns in 200u64..500,
    ) {
        let full = build(false);
        let partial = build(true);
        let a = run(&full, seed, txns);
        let b = run(&partial, seed, txns);
        prop_assert_eq!(a, b, "client-visible outcomes diverged (seed {:#x})", seed);

        prop_assert_eq!(checking_total(&full, seed), CUSTOMERS as i64 * INITIAL);
        prop_assert_eq!(checking_total(&partial, seed), CUSTOMERS as i64 * INITIAL);

        // Copy floor is an invariant of the replica map, not just a goal.
        let rmap = Arc::clone(partial.selector().replica_map());
        for (p, mask) in rmap.tracked() {
            prop_assert!(
                mask.count_ones() as usize >= FLOOR,
                "partition {:?} below the copy floor (seed {:#x})", p, seed
            );
        }

        // The whole point: a floor-2 deployment holds fewer rows than a
        // 4-copy one (the 2x acceptance number is measured by the bench;
        // here we only pin the direction so provisioning churn can't flake
        // the test).
        let (full_bytes, partial_bytes) = (resident_total(&full), resident_total(&partial));
        prop_assert!(
            partial_bytes < full_bytes,
            "partial replication should shrink the resident footprint \
             (full={} partial={}, seed {:#x})", full_bytes, partial_bytes, seed
        );

        // And the propagator really did strip non-hosted refresh records.
        prop_assert!(
            partial.metrics().counter("refresh_records_skipped").get() > 0,
            "partial replication never skipped a refresh record (seed {:#x})", seed
        );
    }
}

/// Errors a client may see while a floor-2 replica is crashed: everything
/// the full-replication chaos suite tolerates, plus `NotReplica` (a stale
/// route into the crash window resolves by lazy copy repair + resubmit).
fn tolerable_partial(err: &DynaError) -> bool {
    tolerable(err) || matches!(err, DynaError::NotReplica { .. })
}

/// A floor-2 partition loses one of its two replicas mid-run: reads must
/// keep committing (routed to the survivor), an explicit `AddReplica` from
/// the survivor must restore the floor while the site is still down, and
/// after restart + healing the auditors must report zero violations.
#[test]
fn floor_two_survives_replica_crash_and_repairs() {
    const CHAOS_SITES: usize = 3;
    const CHAOS_CUSTOMERS: u64 = 600;

    let seed = chaos_seed() ^ 0x07A5_71A1;
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_customers: CHAOS_CUSTOMERS,
        initial_balance: INITIAL,
        ..SmallBankConfig::default()
    });
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(
            chaos_config(CHAOS_SITES).with_partial_replication(FLOOR),
            workload.catalog(),
        ),
        workload.executor(),
    );
    let _watchdog = arm_watchdog(
        seed,
        "partial replication floor-2 crash".to_string(),
        60,
        Some(Arc::clone(system.network())),
    );
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();
    let auditor = arm_auditor(&system, true, "partial replication chaos");

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut session = ClientSession::new(ClientId::new(t as usize), CHAOS_SITES);
                let mut rng = Rng(seed ^ (t + 1).wrapping_mul(0xA076_1D64_78BD_642F));
                let mut committed = 0u64;
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let result = if rng.next().is_multiple_of(2) {
                        let from = rng.next() % CHAOS_CUSTOMERS;
                        let mut to = rng.next() % CHAOS_CUSTOMERS;
                        if to == from {
                            to = (to + 1) % CHAOS_CUSTOMERS;
                        }
                        let amount = (rng.next() % 100) as i64 + 1;
                        system
                            .update(&mut session, &transfer(from, to, amount))
                            .map(|_| ())
                    } else {
                        let a = rng.next() % CHAOS_CUSTOMERS;
                        let mut b = rng.next() % CHAOS_CUSTOMERS;
                        if b == a {
                            b = (b + 1) % CHAOS_CUSTOMERS;
                        }
                        system
                            .read(&mut session, &pair_balance(a, b))
                            .map(|_| reads += 1)
                    };
                    match result {
                        Ok(()) => committed += 1,
                        Err(e) if tolerable_partial(&e) => {}
                        Err(e) => panic!("client {t}: unexpected error {e} (seed {seed:#x})"),
                    }
                }
                (committed, reads)
            })
        })
        .collect();

    thread::sleep(Duration::from_millis(500));

    // Crash one site. Every floor-2 partition that had a copy there is now
    // down to a single live replica.
    system.crash_site(1);
    let crashed = SiteId::new(1);
    let rmap = Arc::clone(system.selector().replica_map());

    // Pick a partition the crashed site hosted that has not already been
    // widened to every site, and repair its floor from the survivor while
    // the site is still down. (If provisioning already widened everything,
    // the floor is trivially safe and there is nothing to demonstrate.)
    let victim: Option<PartitionId> = (0..CHAOS_CUSTOMERS / PARTITION_SIZE)
        .map(|i| dynamast::common::ids::partition_id(smallbank::CHECKING, i))
        .find(|p| rmap.hosts(*p, crashed) && rmap.copy_count(*p) < CHAOS_SITES);
    if let Some(p) = victim {
        let dest = (0..CHAOS_SITES)
            .map(SiteId::new)
            .find(|s| !rmap.hosts(p, *s))
            .expect("an unwidened partition leaves a third site free");
        system
            .selector()
            .ensure_replica(dest, p)
            .expect("AddReplica from the survivor must succeed while one replica is down");
        let live = rmap
            .replicas(p)
            .into_iter()
            .filter(|s| *s != crashed)
            .count();
        assert!(
            live >= FLOOR,
            "repair did not restore {FLOOR} live copies of {p:?} (seed {seed:#x})"
        );
    }

    // Keep serving for a while on the degraded cluster, then heal.
    thread::sleep(Duration::from_millis(800));
    system.restart_site(1).unwrap();
    thread::sleep(Duration::from_millis(800));
    stop.store(true, Ordering::Relaxed);

    let mut committed = 0u64;
    let mut reads = 0u64;
    for h in handles {
        let (c, r) = h.join().unwrap();
        committed += c;
        reads += r;
    }
    assert!(
        committed > 0 && reads > 0,
        "degraded cluster stopped serving (committed={committed} reads={reads})"
    );
    eprintln!("[chaos] partial replication committed={committed} reads={reads}");

    // Conservation over hosting replicas + a clean audit trail.
    let target = system
        .sites()
        .iter()
        .map(|s| s.clock().current())
        .fold(VersionVector::zero(CHAOS_SITES), |acc, vv| {
            acc.max_with(&vv)
        });
    await_convergence(&system, &target, seed);
    let sites = system.sites();
    let rmap = Arc::clone(system.selector().replica_map());
    let total: i64 = (0..CHAOS_CUSTOMERS)
        .map(|customer| {
            let key = Key::new(smallbank::CHECKING, customer);
            let partition =
                dynamast::common::ids::partition_id(smallbank::CHECKING, customer / PARTITION_SIZE);
            let host = rmap
                .replicas(partition)
                .into_iter()
                .next()
                .expect("every partition keeps at least one replica");
            sites[host.as_usize()]
                .store()
                .read(key, &target)
                .unwrap()
                .expect("populated account vanished")
                .cell(0)
                .as_i64()
                .unwrap()
        })
        .sum();
    assert_eq!(
        total,
        CHAOS_CUSTOMERS as i64 * INITIAL,
        "money not conserved under partial replication (seed {seed:#x})"
    );
    assert_audit_clean(&auditor, seed, "partial replication chaos");
}
