//! Shared plumbing for the chaos-style integration tests (`chaos.rs`,
//! `selector_failover.rs`): seeded reproduction, the liveness watchdog, the
//! compressed retry policy, and the SmallBank invariant transactions.
//!
//! Not every test binary uses every helper.
#![allow(dead_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes};
use dynamast::common::audit::{AuditConfig, AuditSink};
use dynamast::common::ids::Key;
use dynamast::common::{DynaError, RetryPolicy, SystemConfig, VersionVector};
use dynamast::core::dynamast::DynaMastSystem;
use dynamast::network::Network;
use dynamast::site::proc::ProcCall;
use dynamast::workloads::smallbank;

/// Seed override for replaying a failed run; accepts `0x`-hex or decimal.
pub fn chaos_seed() -> u64 {
    match std::env::var("CHAOS_SEED") {
        Ok(raw) => {
            let raw = raw.trim();
            if let Some(hex) = raw.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).expect("CHAOS_SEED must be hex after 0x")
            } else {
                raw.parse().expect("CHAOS_SEED must be an integer")
            }
        }
        Err(_) => 0xD15A_57E5_0C0D_E5EA,
    }
}

/// Splitmix64: a deterministic per-thread driver RNG (kept local so the
/// client schedule is reproducible from the same seed as the fault plan).
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Disarms the watchdog on scope exit (including panic unwinding), so the
/// watchdog only fires on a genuine wedge, not after a normal assertion
/// failure.
pub struct WatchdogGuard {
    done: Arc<AtomicBool>,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Relaxed);
    }
}

/// Kills the whole test process if the chaos run wedges: a liveness failure
/// would otherwise hang CI with no diagnostics. Prints the reproduction seed
/// and `detail` (the fault plan or crash point) before exiting — and, when a
/// network handle is supplied, dumps its in-flight RPC table so the wedged
/// call is identifiable. Supplying the network turns its (off-by-default)
/// in-flight tracking on for the rest of the test.
pub fn arm_watchdog(
    seed: u64,
    detail: String,
    secs: u64,
    network: Option<Arc<Network>>,
) -> WatchdogGuard {
    if let Some(net) = &network {
        net.enable_inflight_tracking();
    }
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    thread::spawn(move || {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while Instant::now() < deadline {
            if flag.load(Ordering::Relaxed) {
                return;
            }
            thread::sleep(Duration::from_millis(100));
        }
        eprintln!(
            "[chaos] WATCHDOG FIRED after {secs}s — reproduce with CHAOS_SEED={seed:#x}; {detail}"
        );
        if let Some(net) = &network {
            let dump = net.dump_inflight();
            if dump.is_empty() {
                eprintln!("[chaos] no RPCs in flight at watchdog expiry");
            } else {
                eprintln!("[chaos] in-flight RPC table:\n{dump}");
            }
            // The flight recorder explains *how the system got here*: the
            // last recorded events grouped into per-transaction causal
            // timelines (route → remaster → execute → commit → refresh).
            if let Some(rec) = net.recorder() {
                let timelines = rec.dump_recent_timelines(256, 8);
                if timelines.is_empty() {
                    eprintln!("[chaos] flight recorder is empty");
                } else {
                    eprintln!("[chaos] flight-recorder timelines (last 256 events):\n{timelines}");
                }
            }
        }
        std::process::exit(101);
    });
    WatchdogGuard { done }
}

/// A small-cluster config with a compressed retry policy so lost messages
/// cost milliseconds, not the production half-second attempt timeout.
pub fn chaos_config(num_sites: usize) -> SystemConfig {
    // Epoch batching is on across the chaos suite (small count-only epochs:
    // `epoch_interval` stays ZERO so flush timing is a pure function of the
    // route sequence, which the replay-determinism test depends on). The
    // tight wait budget keeps the fast-path flush trigger exercised too.
    let mut config = SystemConfig::new(num_sites)
        .with_instant_network()
        .with_instant_service()
        .with_epoch_batching(8, 16);
    config.network = config.network.with_retry(RetryPolicy {
        attempt_timeout: Duration::from_millis(100),
        max_attempts: 3,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(5),
        deadline: Duration::from_millis(300),
    });
    config
}

/// Errors a client may legitimately observe while faults are active: the
/// retry budget ran out, a link was down, routing metadata was stale, the
/// crashed site was mid-shutdown, or the routing raced a selector failover.
/// Anything else is a real bug.
pub fn tolerable(err: &DynaError) -> bool {
    matches!(
        err,
        DynaError::Timeout { .. }
            | DynaError::Network(_)
            | DynaError::NotMaster { .. }
            | DynaError::TxnAborted { .. }
            | DynaError::ShuttingDown
            | DynaError::StaleSelector { .. }
    )
}

/// Waits until every live site's clock dominates `target`.
pub fn await_convergence(system: &DynaMastSystem, target: &VersionVector, seed: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    for site in system.sites() {
        while !site.clock().current().dominates(target) {
            assert!(
                Instant::now() < deadline,
                "replicas failed to converge after healing (seed {seed:#x})"
            );
            thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Arms the streaming invariant auditor over the system's flight recorder.
/// Violation repro bundles land in `DYNA_AUDIT_DIR` when set, else under the
/// target dir so a failed CI run can upload them as artifacts.
pub fn arm_auditor(system: &DynaMastSystem, conservation: bool, detail: &str) -> Arc<AuditSink> {
    let bundle_dir = std::env::var("DYNA_AUDIT_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir().join("dynamast-audit-bundles"));
    system.arm_auditor(AuditConfig {
        conservation,
        bundle_dir: Some(bundle_dir),
        seed: chaos_seed(),
        detail: detail.to_string(),
        ..AuditConfig::default()
    })
}

/// Drains the auditor and fails the test on any confirmed invariant
/// violation. Ring wraps degrade the audit to "incomplete" (reported on
/// stderr for visibility) but are not a failure by themselves.
pub fn assert_audit_clean(sink: &AuditSink, seed: u64, detail: &str) {
    let report = sink.finish();
    if report.incomplete {
        eprintln!(
            "[audit] incomplete coverage ({} ring wraps over {} events) — {detail}",
            report.ring_wraps, report.events
        );
    }
    assert!(
        report.violations.is_empty(),
        "auditor confirmed {} invariant violation(s) (seed {seed:#x}; {detail}):\n{}",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// SmallBank SendPayment between two checking accounts.
pub fn transfer(from: u64, to: u64, amount: i64) -> ProcCall {
    let mut args = Vec::with_capacity(8);
    args.put_i64(amount);
    ProcCall {
        proc_id: smallbank::PROC_SEND_PAYMENT,
        args: Bytes::from(args),
        write_set: vec![
            Key::new(smallbank::CHECKING, from),
            Key::new(smallbank::CHECKING, to),
        ],
        read_keys: vec![],
        read_ranges: vec![],
    }
}

/// SmallBank Balance over an account pair (snapshot pair-sum invariant).
pub fn pair_balance(a: u64, b: u64) -> ProcCall {
    ProcCall {
        proc_id: smallbank::PROC_BALANCE,
        args: Bytes::new(),
        write_set: vec![],
        read_keys: vec![
            Key::new(smallbank::CHECKING, a),
            Key::new(smallbank::CHECKING, b),
        ],
        read_ranges: vec![],
    }
}
