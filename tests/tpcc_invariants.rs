//! TPC-C consistency invariants over a live DynaMast run: payments are
//! conserved between warehouse/district YTD totals and the history table;
//! order and order-line counts agree with the district counters.

use std::sync::Arc;

use dynamast::common::ids::ClientId;
use dynamast::common::{Result, StrategyWeights, SystemConfig};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::tpcc::{self, TpccConfig, TpccWorkload};
use dynamast::workloads::{TxnKind, Workload};

fn build() -> (TpccWorkload, Arc<DynaMastSystem>) {
    let workload = TpccWorkload::new(TpccConfig {
        warehouses: 3,
        customers_per_district: 30,
        num_items: 200,
        ..TpccConfig::default()
    });
    let config = SystemConfig::new(3)
        .with_weights(StrategyWeights::tpcc())
        .with_instant_network()
        .with_instant_service();
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(config, workload.catalog()),
        workload.executor(),
    );
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();
    (workload, system)
}

fn run_mix(
    workload: &TpccWorkload,
    system: &Arc<DynaMastSystem>,
    clients: usize,
    txns: usize,
) -> Result<()> {
    let mut handles = Vec::new();
    for c in 0..clients {
        let system = Arc::clone(system);
        let mut generator = workload.client(ClientId::new(c), 31 + c as u64);
        handles.push(std::thread::spawn(move || -> Result<()> {
            let mut session = ClientSession::new(ClientId::new(c), 3);
            for _ in 0..txns {
                let txn = generator.next_txn();
                match txn.kind {
                    TxnKind::Update => system.update(&mut session, &txn.call)?,
                    TxnKind::ReadOnly => system.read(&mut session, &txn.call)?,
                };
            }
            Ok(())
        }));
    }
    for h in handles {
        h.join().expect("client panicked")?;
    }
    Ok(())
}

/// Reads the freshest committed state directly from a converged replica.
fn converged_store(system: &Arc<DynaMastSystem>) -> Arc<dynamast::site::data_site::DataSite> {
    // Wait for all replicas to converge to a common vv.
    let target = system.sites().iter().map(|s| s.clock().current()).fold(
        dynamast::common::VersionVector::zero(system.config().num_sites),
        |acc, vv| acc.max_with(&vv),
    );
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    for site in system.sites() {
        while !site.clock().current().dominates(&target) {
            assert!(std::time::Instant::now() < deadline, "convergence stalled");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
    system.sites()[0].clone()
}

#[test]
fn payment_totals_balance_across_tables() {
    let (workload, system) = build();
    run_mix(&workload, &system, 4, 80).unwrap();
    let store = converged_store(&system);
    let store = store.store();
    let snapshot = system.sites()[0].clock().current();
    let cfg = workload.config();

    // Warehouse YTD total == district YTD total == sum of history rows.
    let mut warehouse_ytd = 0i64;
    for w in 0..cfg.warehouses {
        if let Some(row) = store
            .read(
                dynamast::common::ids::Key::new(tpcc::WAREHOUSE, w),
                &snapshot,
            )
            .unwrap()
        {
            warehouse_ytd += row.cell(0).as_i64().unwrap();
        }
    }
    let mut district_ytd = 0i64;
    for w in 0..cfg.warehouses {
        for d in 0..cfg.districts_per_warehouse {
            if let Some(row) = store.read(cfg.district_key(w, d), &snapshot).unwrap() {
                district_ytd += row.cell(0).as_i64().unwrap();
            }
        }
    }
    let mut history_total = 0i64;
    for w in 0..cfg.warehouses {
        for d in 0..cfg.districts_per_warehouse {
            for seq in 0..1000 {
                let key = cfg.history_key(w, d, seq);
                match store.read(key, &snapshot).unwrap() {
                    Some(row) => history_total += row.cell(0).as_i64().unwrap(),
                    None => break,
                }
            }
        }
    }
    assert_eq!(warehouse_ytd, district_ytd, "warehouse vs district YTD");
    assert_eq!(warehouse_ytd, history_total, "YTD vs history");
    assert!(warehouse_ytd > 0, "some payments must have committed");
}

#[test]
fn district_counters_match_committed_orders() {
    let (workload, system) = build();
    run_mix(&workload, &system, 3, 60).unwrap();
    let store = converged_store(&system);
    let store = store.store();
    let snapshot = system.sites()[0].clock().current();
    let cfg = workload.config();

    let mut counted_orders = 0u64;
    let mut district_committed = 0u64;
    for w in 0..cfg.warehouses {
        for d in 0..cfg.districts_per_warehouse {
            let district = store
                .read(cfg.district_key(w, d), &snapshot)
                .unwrap()
                .expect("district row");
            district_committed += district.cell(1).as_u64().unwrap();
            for o in 0..2000 {
                let key = cfg.order_key(w, d, o);
                let Some(order) = store.read(key, &snapshot).unwrap() else {
                    continue;
                };
                counted_orders += 1;
                // Every order's line count matches its order-line rows.
                let lines = order.cell(1).as_u64().unwrap();
                for line in 0..lines {
                    assert!(
                        store
                            .read(cfg.order_line_key(w, d, o, line), &snapshot)
                            .unwrap()
                            .is_some(),
                        "missing order line {w}/{d}/{o}/{line}"
                    );
                }
            }
        }
    }
    assert_eq!(counted_orders, district_committed);
    assert!(counted_orders > 0, "some orders must have committed");
}
