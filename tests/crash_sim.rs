//! Process-kill crash-sim tests for the durable segmented log (tentpole of
//! the durability work): a child process runs a SmallBank transfer workload
//! against an on-disk deployment and is SIGKILLed at a seeded point (or
//! deterministically aborted mid-frame-write for the torn-tail case). The
//! parent then restarts the deployment from disk alone —
//! [`DynaMastSystem::recover`] sees only the segment files and checkpoints —
//! and asserts:
//!
//! * **Conservation**: every site's checking total at its recovered svv
//!   equals the populated total. Transfers are single atomic commit records,
//!   so conservation must hold at *any* componentwise svv cut.
//! * **svv/offset consistency**: each site's own svv component equals its
//!   own retained log length (replay consumed everything durable), and no
//!   component exceeds the corresponding origin log.
//! * **Resumability**: the recovered deployment keeps committing transfers,
//!   converges, and still conserves money.
//!
//! A failing run prints the seed; replay with
//! `CHAOS_SEED=<seed> cargo test --test crash_sim`.

mod common;

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use dynamast::common::ids::{ClientId, Key, SiteId};
use dynamast::common::{FsyncMode, SystemConfig, VersionVector};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::smallbank::{self, SmallBankConfig, SmallBankWorkload};
use dynamast::workloads::Workload;

use common::{
    arm_auditor, arm_watchdog, assert_audit_clean, await_convergence, chaos_seed, tolerable,
    transfer, Rng,
};

const SITES: usize = 2;
const CUSTOMERS: u64 = 32;
const INITIAL: i64 = 1_000;
/// Tiny segments so a killed run spans several files (rotation and
/// whole-segment truncation both get exercised, not just the tail).
const SEGMENT_BYTES: u64 = 4_096;

fn durable_config(dir: &Path) -> SystemConfig {
    SystemConfig::new(SITES)
        .with_instant_network()
        .with_instant_service()
        .with_durability(dir.to_path_buf(), FsyncMode::Group)
        .with_segment_bytes(SEGMENT_BYTES)
}

fn workload() -> SmallBankWorkload {
    SmallBankWorkload::new(SmallBankConfig {
        num_customers: CUSTOMERS,
        // 4 partitions of 8 accounts: small enough that transfers cross
        // partitions constantly and mastership keeps moving.
        partition_size: 8,
        initial_balance: INITIAL,
        ..SmallBankConfig::default()
    })
}

/// A fresh scratch directory under the system temp dir, cleaned of any
/// stale residue from a previous run of the same (case, seed).
fn scratch_dir(case: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dynamast-crash-{case}-{seed:016x}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

// ---------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------

/// The killed process. Never runs under a plain `cargo test` (it is
/// `#[ignore]`d and loops forever); the parent tests spawn it via
/// `current_exe() crash_child_workload --exact --ignored` with
/// `DYNAMAST_CRASH_DIR` pointing at the scratch directory, then SIGKILL it.
/// With `DYNAMAST_TORN_WRITE_AT=<n>` set, the segment writer aborts the
/// process itself halfway through its n-th frame write instead.
#[test]
#[ignore = "crash-sim child: spawned and killed by the parent tests"]
fn crash_child_workload() {
    let dir = PathBuf::from(
        std::env::var("DYNAMAST_CRASH_DIR").expect("crash child needs DYNAMAST_CRASH_DIR"),
    );
    let seed = chaos_seed();
    let workload = workload();
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(durable_config(&dir), workload.catalog()),
        workload.executor(),
    );
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();
    // The first checkpoint stands in for the bulk load: rows never rewritten
    // exist only here, not in the redo logs.
    system.checkpoint_all().unwrap();
    // Armed until the kill: the child never drains a final report, but any
    // online violation still writes its repro bundle to disk before death.
    let _auditor = arm_auditor(&system, true, "crash-sim child");
    std::fs::write(dir.join("ready"), b"ok").unwrap();

    let mut session = ClientSession::new(ClientId::new(1), SITES);
    let mut rng = Rng(seed ^ 0x05EB_A5E1_7E57_C41D);
    let mut committed = 0u64;
    let mut next_checkpoint = 48u64;
    loop {
        let from = rng.next() % CUSTOMERS;
        let mut to = rng.next() % CUSTOMERS;
        if to == from {
            to = (to + 1) % CUSTOMERS;
        }
        let amount = (rng.next() % 50) as i64 + 1;
        match system.update(&mut session, &transfer(from, to, amount)) {
            Ok(_) => committed += 1,
            Err(err) => assert!(tolerable(&err), "child hit a non-tolerable error: {err:?}"),
        }
        // Periodic checkpoints while the workload runs: the kill lands at an
        // arbitrary point relative to checkpoint writing and the floor-gated
        // segment truncation that follows it.
        if committed >= next_checkpoint {
            system.checkpoint_all().unwrap();
            next_checkpoint += 48;
        }
    }
}

// ---------------------------------------------------------------------
// Parent side
// ---------------------------------------------------------------------

fn spawn_child(dir: &Path, seed: u64, torn_at: Option<u64>) -> Child {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = Command::new(exe);
    cmd.args([
        "crash_child_workload",
        "--exact",
        "--ignored",
        "--nocapture",
    ])
    .env("DYNAMAST_CRASH_DIR", dir)
    .env("CHAOS_SEED", format!("{seed:#x}"))
    .stdout(Stdio::piped())
    .stderr(Stdio::piped());
    if let Some(n) = torn_at {
        cmd.env("DYNAMAST_TORN_WRITE_AT", n.to_string());
    }
    cmd.spawn().expect("spawn crash child")
}

fn wait_for_ready(dir: &Path, child: &mut Child) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !dir.join("ready").exists() {
        if let Some(status) = child.try_wait().unwrap() {
            panic!("crash child exited before signalling ready: {status}");
        }
        assert!(
            Instant::now() < deadline,
            "crash child never signalled ready"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

/// Restarts the deployment from the scratch directory's disk state only and
/// runs the recovery assertions; returns the recovered system for further
/// driving.
fn recover_and_verify(dir: &Path, seed: u64) -> Arc<DynaMastSystem> {
    let workload = workload();
    let system = DynaMastSystem::recover(
        DynaMastConfig::adaptive(durable_config(dir), workload.catalog()),
        workload.executor(),
    )
    .unwrap_or_else(|err| panic!("disk-only recovery failed (seed {seed:#x}): {err:?}"));

    for (i, site) in system.sites().iter().enumerate() {
        let svv = site.clock().current();
        // Replay consumed the site's entire retained own log: the own svv
        // component and the durable log length must agree exactly (the
        // offset = sequence invariant, checked across the crash).
        assert_eq!(
            svv.get(SiteId::new(i)),
            system.logs().log(SiteId::new(i)).len(),
            "site {i}: own svv component diverges from its durable log (seed {seed:#x})"
        );
        for o in 0..SITES {
            assert!(
                svv.get(SiteId::new(o)) <= system.logs().log(SiteId::new(o)).len(),
                "site {i}: svv[{o}] exceeds origin {o}'s durable log (seed {seed:#x})"
            );
        }
        assert_conserved(site, &svv, seed, &format!("site {i} at its recovered svv"));
    }
    system
}

fn assert_conserved(
    site: &Arc<dynamast::site::data_site::DataSite>,
    at: &VersionVector,
    seed: u64,
    context: &str,
) {
    let total: i64 = (0..CUSTOMERS)
        .map(|customer| {
            site.store()
                .read(Key::new(smallbank::CHECKING, customer), at)
                .unwrap()
                .unwrap_or_else(|| {
                    panic!("{context}: account {customer} vanished (seed {seed:#x})")
                })
                .cell(0)
                .as_i64()
                .unwrap()
        })
        .sum();
    assert_eq!(
        total,
        CUSTOMERS as i64 * INITIAL,
        "{context}: money not conserved (seed {seed:#x})"
    );
}

/// Drives transfers on the recovered deployment, waits for convergence, and
/// re-asserts conservation at the common snapshot: recovery is not just a
/// readable corpse — it resumes propagation from the recovered offsets.
fn resume_and_reverify(system: &Arc<DynaMastSystem>, seed: u64) {
    let auditor = arm_auditor(system, true, "crash-sim resumed deployment");
    let mut session = ClientSession::new(ClientId::new(7), SITES);
    let mut rng = Rng(seed ^ 0x7E5C_0FFE_E5A1_7ED0);
    let mut committed = 0u64;
    for _ in 0..400 {
        let from = rng.next() % CUSTOMERS;
        let mut to = rng.next() % CUSTOMERS;
        if to == from {
            to = (to + 1) % CUSTOMERS;
        }
        match system.update(
            &mut session,
            &transfer(from, to, (rng.next() % 50) as i64 + 1),
        ) {
            Ok(_) => committed += 1,
            Err(err) => assert!(tolerable(&err), "post-recovery error: {err:?}"),
        }
    }
    assert!(
        committed > 0,
        "recovered deployment never committed (seed {seed:#x})"
    );
    let target = system
        .sites()
        .iter()
        .map(|s| s.clock().current())
        .fold(VersionVector::zero(SITES), |acc, vv| acc.max_with(&vv));
    await_convergence(system, &target, seed);
    for (i, site) in system.sites().iter().enumerate() {
        assert_conserved(site, &target, seed, &format!("site {i} after resume"));
    }
    assert_audit_clean(&auditor, seed, "crash-sim resumed deployment");
}

/// SIGKILL at a seeded instant mid-workload, then disk-only recovery.
#[test]
fn process_kill_recovers_conserved_state_from_disk() {
    let seed = chaos_seed() ^ 0xC4A5_0001;
    let dir = scratch_dir("kill", seed);
    let kill_after = Duration::from_millis(40 + (seed >> 8) % 400);
    eprintln!("[crash-sim] kill seed={seed:#x} kill_after={kill_after:?} dir={dir:?}");
    let _watchdog = arm_watchdog(seed, format!("process-kill, dir {dir:?}"), 120, None);

    let mut child = spawn_child(&dir, seed, None);
    wait_for_ready(&dir, &mut child);
    thread::sleep(kill_after);
    if let Some(status) = child.try_wait().unwrap() {
        let out = child.wait_with_output().unwrap();
        panic!(
            "crash child died on its own ({status}) before the kill:\n--- stdout\n{}\n--- stderr\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
    }
    child.kill().unwrap();
    child.wait().unwrap();

    let system = recover_and_verify(&dir, seed);
    resume_and_reverify(&system, seed);
    drop(system);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic mid-fill death: the child aborts halfway through writing a
/// seeded frame, leaving a torn tail on disk. Recovery must truncate it and
/// come back conserved.
#[test]
fn torn_tail_write_is_truncated_on_recovery() {
    let seed = chaos_seed() ^ 0xC4A5_0002;
    let dir = scratch_dir("torn", seed);
    // Low enough to land mid-workload, high enough that transfers started.
    let torn_at = 16 + (seed >> 16) % 48;
    eprintln!("[crash-sim] torn seed={seed:#x} torn_at={torn_at} dir={dir:?}");
    let _watchdog = arm_watchdog(seed, format!("torn-tail, dir {dir:?}"), 120, None);

    let mut child = spawn_child(&dir, seed, Some(torn_at));
    wait_for_ready(&dir, &mut child);
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        if let Some(status) = child.try_wait().unwrap() {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "child never reached the torn-write abort (seed {seed:#x})"
        );
        thread::sleep(Duration::from_millis(20));
    };
    assert!(
        !status.success(),
        "torn-write child exited cleanly instead of aborting (seed {seed:#x})"
    );

    let system = recover_and_verify(&dir, seed);
    resume_and_reverify(&system, seed);
    drop(system);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill–recover–kill–recover: the second incarnation is itself killed and
/// must recover from checkpoints written by *both* prior lives (checkpoint
/// counters and truncation floors stay monotone across restarts).
#[test]
fn repeated_kills_recover_repeatedly() {
    let seed = chaos_seed() ^ 0xC4A5_0003;
    let dir = scratch_dir("rekill", seed);
    eprintln!("[crash-sim] rekill seed={seed:#x} dir={dir:?}");
    let _watchdog = arm_watchdog(seed, format!("repeated kills, dir {dir:?}"), 180, None);

    let mut child = spawn_child(&dir, seed, None);
    wait_for_ready(&dir, &mut child);
    thread::sleep(Duration::from_millis(40 + (seed >> 8) % 200));
    child.kill().unwrap();
    child.wait().unwrap();

    // Second life: recover in-process, keep working, checkpoint again, and
    // die again (drop without shutdown is a graceless-enough stop for state
    // on disk — the svv only moves through the durable log).
    {
        let system = recover_and_verify(&dir, seed);
        resume_and_reverify(&system, seed);
        system.checkpoint_all().unwrap();
    }

    // Third life still conserves and resumes.
    let system = recover_and_verify(&dir, seed);
    resume_and_reverify(&system, seed);
    drop(system);
    let _ = std::fs::remove_dir_all(&dir);
}
