//! Cross-system integration tests: every evaluated system must execute the
//! same workloads correctly — same invariants, same results — differing only
//! in performance (which is the paper's premise for an apples-to-apples
//! comparison).

use std::sync::Arc;
use std::time::Duration;

use dynamast::baselines::leap::LeapSystem;
use dynamast::baselines::single_master::single_master;
use dynamast::baselines::static_system::{StaticKind, StaticSystem};
use dynamast::common::ids::ClientId;
use dynamast::common::{Result, SystemConfig};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::smallbank::{self, SmallBankConfig, SmallBankWorkload};
use dynamast::workloads::{TxnKind, Workload};

fn config(num_sites: usize) -> SystemConfig {
    SystemConfig::new(num_sites).with_instant_network()
}

fn smallbank_workload() -> SmallBankWorkload {
    SmallBankWorkload::new(SmallBankConfig {
        num_customers: 2_000,
        ..SmallBankConfig::default()
    })
}

enum AnySystem {
    Dyna(Arc<DynaMastSystem>),
    Static(Arc<StaticSystem>),
    Leap(Arc<LeapSystem>),
}

impl AnySystem {
    fn as_system(&self) -> Arc<dyn ReplicatedSystem> {
        match self {
            AnySystem::Dyna(s) => Arc::clone(s) as Arc<dyn ReplicatedSystem>,
            AnySystem::Static(s) => Arc::clone(s) as Arc<dyn ReplicatedSystem>,
            AnySystem::Leap(s) => Arc::clone(s) as Arc<dyn ReplicatedSystem>,
        }
    }

    fn load(&self, workload: &dyn Workload) -> Result<()> {
        workload.populate(&mut |key, row| match self {
            AnySystem::Dyna(s) => s.load_row(key, row),
            AnySystem::Static(s) => s.load_row(key, row),
            AnySystem::Leap(s) => s.load_row(key, row),
        })
    }
}

fn build_all(workload: &dyn Workload, num_sites: usize) -> Vec<(&'static str, AnySystem)> {
    let catalog = workload.catalog();
    let executor = workload.executor();
    let owner = workload.static_owner(num_sites);
    let statics = workload.static_tables();
    vec![
        (
            "dynamast",
            AnySystem::Dyna(DynaMastSystem::build(
                DynaMastConfig::adaptive(config(num_sites), catalog.clone()),
                Arc::clone(&executor),
            )),
        ),
        (
            "single-master",
            AnySystem::Dyna(single_master(
                config(num_sites),
                catalog.clone(),
                Arc::clone(&executor),
            )),
        ),
        (
            "multi-master",
            AnySystem::Static(StaticSystem::build(
                StaticKind::MultiMaster,
                config(num_sites),
                catalog.clone(),
                Arc::clone(&owner),
                statics.clone(),
                Arc::clone(&executor),
                8,
            )),
        ),
        (
            "partition-store",
            AnySystem::Static(StaticSystem::build(
                StaticKind::PartitionStore,
                config(num_sites),
                catalog.clone(),
                Arc::clone(&owner),
                statics.clone(),
                Arc::clone(&executor),
                8,
            )),
        ),
        (
            "leap",
            AnySystem::Leap(LeapSystem::build(
                config(num_sites),
                catalog,
                owner,
                statics,
                executor,
                8,
            )),
        ),
    ]
}

/// SmallBank money conservation: transfers move money but the global total
/// is invariant; every system must preserve it under concurrency.
#[test]
fn smallbank_conserves_money_on_every_system() {
    let workload = smallbank_workload();
    let initial_total =
        workload.config().num_customers as i64 * workload.config().initial_balance * 2;
    for (name, any) in build_all(&workload, 3) {
        eprintln!("[money] building {name}");
        any.load(&workload).unwrap();
        let system = any.as_system();
        // Concurrent clients hammer transfers and deposits.
        let mut deposited = 0i64;
        let handles: Vec<_> = (0..6usize)
            .map(|t| {
                let system = Arc::clone(&system);
                let mut generator = workload.client(ClientId::new(t), 99 + t as u64);
                std::thread::spawn(move || {
                    let mut session = ClientSession::new(ClientId::new(t), 3);
                    let mut local_deposits = 0i64;
                    for _ in 0..60 {
                        let txn = generator.next_txn();
                        let outcome = match txn.kind {
                            TxnKind::Update => system.update(&mut session, &txn.call),
                            TxnKind::ReadOnly => system.read(&mut session, &txn.call),
                        };
                        let outcome =
                            outcome.unwrap_or_else(|e| panic!("txn failed: {e} ({})", txn.label));
                        if txn.label == "single-row-update" {
                            // Deposits add money; track to adjust the total.
                            let mut args = txn.call.args.clone();
                            local_deposits += dynamast::common::codec::get_i64(&mut args).unwrap();
                        }
                        drop(outcome);
                    }
                    local_deposits
                })
            })
            .collect();
        for h in handles {
            deposited += h.join().unwrap();
        }
        eprintln!("[money] {name} clients done");

        // Read every balance through the system API with a fresh session
        // whose freshness floor is the last writers' (ensured by a no-op
        // transfer routed through each partition being unnecessary — we
        // instead wait for replica convergence below).
        std::thread::sleep(Duration::from_millis(300));
        let mut session = ClientSession::new(ClientId::new(999), 3);
        let mut total = 0i64;
        for customer in 0..workload.config().num_customers {
            let call = dynamast::site::proc::ProcCall {
                proc_id: smallbank::PROC_BALANCE,
                args: bytes::Bytes::new(),
                write_set: vec![],
                read_keys: vec![
                    dynamast::common::ids::Key::new(smallbank::CHECKING, customer),
                    dynamast::common::ids::Key::new(smallbank::SAVINGS, customer),
                ],
                read_ranges: vec![],
            };
            let outcome = system.read(&mut session, &call).unwrap();
            let mut slice = outcome.result.clone();
            total += dynamast::common::codec::get_i64(&mut slice).unwrap();
        }
        assert_eq!(
            total,
            initial_total + deposited,
            "{name}: money not conserved"
        );
    }
}

/// The same deterministic single-client transaction sequence must produce
/// the same balances on every system (they differ in architecture, not
/// semantics).
#[test]
fn deterministic_stream_produces_identical_balances_everywhere() {
    let workload = smallbank_workload();
    let mut totals = Vec::new();
    for (name, any) in build_all(&workload, 2) {
        eprintln!("[det] running {name}");
        any.load(&workload).unwrap();
        let system = any.as_system();
        let mut generator = workload.client(ClientId::new(0), 7);
        let mut session = ClientSession::new(ClientId::new(0), 2);
        let mut checksum = 0i64;
        for _ in 0..120 {
            let txn = generator.next_txn();
            let outcome = match txn.kind {
                TxnKind::Update => system.update(&mut session, &txn.call),
                TxnKind::ReadOnly => system.read(&mut session, &txn.call),
            }
            .unwrap_or_else(|e| panic!("{name}: txn failed: {e}"));
            if txn.label == "balance" {
                let mut slice = outcome.result.clone();
                checksum = checksum
                    .wrapping_mul(31)
                    .wrapping_add(dynamast::common::codec::get_i64(&mut slice).unwrap());
            }
        }
        totals.push((name, checksum));
    }
    let first = totals[0].1;
    for (name, checksum) in &totals {
        assert_eq!(*checksum, first, "{name} diverged: {totals:?}");
    }
}
