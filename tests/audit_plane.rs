//! Detector self-tests for the invariant audit plane: the streaming
//! auditor over the flight recorder must (a) stay silent on a clean live
//! deployment, (b) flag deliberately injected protocol violations — a
//! double-master write, a dropped refresh record, a duplicate install —
//! with a black-box repro bundle naming the exact offending
//! `(partition, key, (origin, seq))`, and (c) degrade to "incomplete"
//! under ring wrap instead of ever fabricating a violation.

mod common;

use std::path::PathBuf;
use std::sync::Arc;

use dynamast::common::audit::{
    emit_ownership, emit_write_effect, AuditConfig, AuditSink, ViolationKind,
};
use dynamast::common::ids::ClientId;
use dynamast::common::{FlightRecorder, TraceKind, TracePayload, TraceSite};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::smallbank::{SmallBankConfig, SmallBankWorkload};
use dynamast::workloads::Workload;

use common::{chaos_config, chaos_seed, tolerable, transfer, Rng};

/// A scratch bundle directory unique to this test.
fn bundle_dir(case: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dynamast-audit-self-{case}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A recorder with auditing armed, plus an offline sink over it (events are
/// pushed through the production emit helpers, drained by explicit polls).
fn armed_pair(case: &str, conservation: bool) -> (Arc<FlightRecorder>, Arc<AuditSink>, PathBuf) {
    let dir = bundle_dir(case);
    let recorder = FlightRecorder::new(1024);
    recorder.set_audit(true);
    let sink = AuditSink::offline(
        Arc::clone(&recorder),
        AuditConfig {
            conservation,
            bundle_dir: Some(dir.clone()),
            seed: 0xABCD,
            detail: format!("self-test {case}"),
            ..AuditConfig::default()
        },
    );
    (recorder, sink, dir)
}

fn bundle_names(dir: &PathBuf) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.file_name().into_string().unwrap())
                .filter(|n| n.starts_with("audit-") && n.ends_with(".txt"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
}

/// A healthy single-threaded SmallBank run under the armed auditor must
/// produce zero violations while observing real traffic, and the system's
/// metrics registry must expose the sink's live counters.
#[test]
fn live_clean_run_reports_no_violations() {
    let seed = chaos_seed() ^ 0xA0D1_7001;
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_customers: 64,
        partition_size: 8,
        initial_balance: 1_000,
        ..SmallBankConfig::default()
    });
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(chaos_config(3), workload.catalog()),
        workload.executor(),
    );
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();
    let sink = system.arm_auditor(AuditConfig {
        conservation: true,
        bundle_dir: None,
        seed,
        detail: "self-test clean run".into(),
        ..AuditConfig::default()
    });

    let mut session = ClientSession::new(ClientId::new(0), 3);
    let mut rng = Rng(seed);
    for _ in 0..400 {
        let from = rng.next() % 64;
        let mut to = rng.next() % 64;
        if to == from {
            to = (to + 1) % 64;
        }
        match system.update(
            &mut session,
            &transfer(from, to, (rng.next() % 20) as i64 + 1),
        ) {
            Ok(_) => {}
            Err(e) => assert!(tolerable(&e), "unexpected error: {e}"),
        }
    }

    let report = sink.finish();
    assert!(
        report.violations.is_empty(),
        "clean run flagged: {:?}",
        report.violations
    );
    assert!(
        report.events > 0,
        "auditor observed no events on a live run"
    );
    // The registry's audit counters are the sink's own (re-pointed by
    // arm_auditor), so every metrics snapshot reflects the audit plane.
    assert_eq!(
        system.metrics().counter("audit_events").get(),
        report.events
    );
    assert_eq!(system.metrics().counter("audit_violations").get(), 0);
}

/// An injected write sequenced after its site's release of the partition —
/// with no intervening grant — is the double-master signature; the bundle
/// must name the exact offending (partition, key, (origin, seq)).
#[test]
fn injected_double_master_write_is_flagged_with_bundle() {
    let (recorder, sink, dir) = armed_pair("double-master", false);

    // Site 0 commits normally at seq 4, releases partition 9 at seq 5, then
    // "keeps writing" partition 9 at seq 8 without a grant.
    emit_write_effect(
        &recorder,
        1,
        0,
        9,
        7,
        10,
        Some((100, 0, 0)),
        90,
        0,
        4,
        1,
        1,
        false,
    );
    emit_ownership(&recorder, 0, 9, 5, 2, false);
    emit_write_effect(
        &recorder,
        2,
        0,
        9,
        7,
        10,
        Some((90, 0, 4)),
        75,
        0,
        8,
        1,
        2,
        false,
    );
    sink.poll();
    let report = sink.finish();

    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.kind, ViolationKind::DoubleMaster);
    assert_eq!(
        (v.partition, v.table, v.record, v.origin, v.sequence),
        (9, 7, 10, 0, 8),
        "bundle must pin the exact offending write"
    );

    let names = bundle_names(&dir);
    assert_eq!(names.len(), 1, "{names:?}");
    assert!(names[0].contains("double-master"), "{names:?}");
    let body = std::fs::read_to_string(dir.join(&names[0])).unwrap();
    assert!(
        body.contains("offending: p9 key=(7,10) stamp=(site0,8)"),
        "{body}"
    );
    assert!(body.contains("seed: 0xabcd"), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A replica whose refresh frontier passes sequence 3 without installing
/// commit 2's write has dropped a refresh record; the violation names the
/// missing (partition, key, (origin, seq)).
#[test]
fn dropped_refresh_record_is_a_missing_install() {
    let (recorder, sink, dir) = armed_pair("dropped-refresh", false);

    // Origin site 0 commits seqs 1..=3, each writing one key on p3.
    for seq in 1..=3u64 {
        emit_write_effect(
            &recorder,
            seq,
            0,
            3,
            7,
            40 + seq,
            Some((0, 0, 0)),
            seq as i64,
            0,
            seq,
            1,
            0,
            false,
        );
    }
    // Replica site 1 installs commits 1 and 3 — commit 2's record was
    // dropped — yet reports its refresh frontier as having passed seq 3.
    for seq in [1u64, 3] {
        emit_write_effect(
            &recorder,
            0,
            1,
            3,
            7,
            40 + seq,
            None,
            seq as i64,
            0,
            seq,
            1,
            0,
            true,
        );
    }
    recorder.record(
        0,
        TraceSite::Site(1),
        TraceKind::RefreshApply,
        TracePayload::Refresh {
            origin: 0,
            sequence: 3,
            records: 2,
            lag_us: 0,
        },
    );
    sink.poll();
    let report = sink.finish();

    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.kind, ViolationKind::MissingInstall);
    assert_eq!(
        (v.partition, v.table, v.record, v.origin, v.sequence),
        (3, 7, 42, 0, 2),
        "must name exactly the dropped commit's key"
    );
    let names = bundle_names(&dir);
    assert!(
        names.iter().any(|n| n.contains("missing-install")),
        "{names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same origin commit installing the same key twice (a replayed redo
/// record slipping past idempotency) is a duplicate install.
#[test]
fn duplicate_install_is_flagged() {
    let (recorder, sink, dir) = armed_pair("dup-install", false);
    emit_write_effect(
        &recorder,
        1,
        0,
        2,
        5,
        77,
        Some((10, 0, 0)),
        20,
        0,
        6,
        1,
        0,
        false,
    );
    emit_write_effect(
        &recorder,
        1,
        0,
        2,
        5,
        77,
        Some((20, 0, 6)),
        30,
        0,
        6,
        1,
        0,
        false,
    );
    sink.poll();
    let report = sink.finish();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.kind, ViolationKind::DuplicateInstall);
    assert_eq!(
        (v.partition, v.table, v.record, v.origin, v.sequence),
        (2, 5, 77, 0, 6)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Overrunning a tiny ring wraps it; the auditor must account the loss,
/// degrade the run to "incomplete", and stay silent — a wrapped clean
/// stream must never read as a violation.
#[test]
fn ring_wrap_degrades_to_incomplete_never_violation() {
    let dir = bundle_dir("ring-wrap");
    let recorder = FlightRecorder::new(8);
    recorder.set_audit(true);
    let sink = AuditSink::offline(
        Arc::clone(&recorder),
        AuditConfig {
            conservation: true,
            bundle_dir: Some(dir.clone()),
            seed: 0xABCD,
            detail: "self-test ring wrap".into(),
            ..AuditConfig::default()
        },
    );
    // A long, perfectly balanced transfer history (every commit is its own
    // zero-sum group over two keys) — far more events than the ring holds.
    let mut balance_a = 1_000i64;
    let mut balance_b = 1_000i64;
    let mut prev_a = (1_000i64, 0u32, 0u64);
    let mut prev_b = (1_000i64, 0u32, 0u64);
    for seq in 1..=100u64 {
        balance_a -= 5;
        balance_b += 5;
        emit_write_effect(
            &recorder,
            seq,
            0,
            1,
            7,
            1,
            Some(prev_a),
            balance_a,
            0,
            seq,
            1,
            0,
            false,
        );
        emit_write_effect(
            &recorder,
            seq,
            0,
            2,
            7,
            2,
            Some(prev_b),
            balance_b,
            0,
            seq,
            1,
            0,
            false,
        );
        prev_a = (balance_a, 0, seq);
        prev_b = (balance_b, 0, seq);
    }
    sink.poll();
    let report = sink.finish();
    assert!(report.ring_wraps > 0, "a 8-slot ring must have wrapped");
    assert!(
        report.incomplete,
        "wrap must degrade the audit to incomplete"
    );
    assert!(
        report.violations.is_empty(),
        "wrap fabricated a violation: {:?}",
        report.violations
    );
    assert!(bundle_names(&dir).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Repro bundles rotate keep-newest-N: a run that keeps violating does not
/// fill the disk.
#[test]
fn repro_bundles_rotate_keep_newest() {
    let dir = bundle_dir("rotation");
    let recorder = FlightRecorder::new(256);
    recorder.set_audit(true);
    let sink = AuditSink::offline(
        Arc::clone(&recorder),
        AuditConfig {
            conservation: false,
            bundle_dir: Some(dir.clone()),
            bundle_keep: 2,
            seed: 0xABCD,
            detail: "self-test rotation".into(),
        },
    );
    // Five distinct duplicate installs → five bundles written, two kept.
    for i in 0..5u64 {
        emit_write_effect(
            &recorder,
            1,
            0,
            2,
            5,
            i,
            Some((0, 0, 0)),
            1,
            0,
            10 + i,
            1,
            0,
            false,
        );
        emit_write_effect(
            &recorder,
            1,
            0,
            2,
            5,
            i,
            Some((1, 0, 10 + i)),
            2,
            0,
            10 + i,
            1,
            0,
            false,
        );
        sink.poll();
    }
    let report = sink.finish();
    assert_eq!(report.violations.len(), 5, "{:?}", report.violations);
    let names = bundle_names(&dir);
    assert_eq!(names.len(), 2, "rotation must keep exactly 2: {names:?}");
    assert_eq!(
        names,
        vec![
            "audit-000003-duplicate-install.txt".to_string(),
            "audit-000004-duplicate-install.txt".to_string(),
        ]
    );
    let _ = std::fs::remove_dir_all(&dir);
}
