//! Selector failover chaos tests (§V-C): kill the selector at every
//! enumerated crash point inside the remaster protocol mid-SmallBank run,
//! promote the warm standby, and assert the user-facing guarantees survive —
//! money conserved, snapshot pair-sums intact (SSSI), and every partition
//! mastered by exactly one site as witnessed by the live ownership tables.
//!
//! Crash injection is deterministic: the switch fires at a pass ordinal
//! derived from `(CHAOS_SEED, crash_point)`, both printed on every run, so
//! `CHAOS_SEED=<seed> cargo test --test selector_failover` replays a failure
//! bit-for-bit.

mod common;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use dynamast::common::codec::{self, encode_to_vec};
use dynamast::common::ids::{ClientId, Key, PartitionId, SiteId};
use dynamast::common::{DynaError, VersionVector};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::network::{CrashPoint, CrashSwitch, EndpointId, TrafficCategory};
use dynamast::site::messages::{expect_ok, SiteRequest};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::smallbank::{self, SmallBankConfig, SmallBankWorkload};
use dynamast::workloads::Workload;

use common::{
    arm_auditor, arm_watchdog, assert_audit_clean, await_convergence, chaos_config, chaos_seed,
    pair_balance, tolerable, transfer, Rng,
};

const INITIAL: i64 = 10_000;
const CUSTOMERS: u64 = 1_200;
const SHARED: u64 = 800;
const SITES: usize = 3;

/// Builds a populated 3-site SmallBank deployment, optionally arming the
/// selector with a crash switch.
fn build_smallbank(switch: Option<Arc<CrashSwitch>>) -> Arc<DynaMastSystem> {
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_customers: CUSTOMERS,
        initial_balance: INITIAL,
        ..SmallBankConfig::default()
    });
    let mut cfg = DynaMastConfig::adaptive(chaos_config(SITES), workload.catalog());
    cfg.crash_switch = switch;
    let system = DynaMastSystem::build(cfg, workload.executor());
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();
    system
}

/// Every partition must have exactly one master as witnessed by the live
/// ownership tables, and the (promoted) selector's map must agree with each
/// live claim.
fn assert_single_mastership(system: &DynaMastSystem, seed: u64, context: &str) {
    let mut claimants: HashMap<PartitionId, SiteId> = HashMap::new();
    for site in system.sites() {
        for p in site.ownership().mastered_partitions() {
            // Skip the draining sentinel: a partition mid-release is
            // transiently marked, not mastered.
            if p.raw() & (1 << 63) != 0 {
                continue;
            }
            if let Some(other) = claimants.insert(p, site.id()) {
                panic!(
                    "{context}: partition {p:?} mastered by both {other:?} and {:?} \
                     (seed {seed:#x})",
                    site.id()
                );
            }
        }
    }
    let placements: HashMap<PartitionId, Option<SiteId>> =
        system.selector().map().placements().into_iter().collect();
    for (p, owner) in &claimants {
        assert_eq!(
            placements.get(p).copied().flatten(),
            Some(*owner),
            "{context}: selector map disagrees with the live owner of {p:?} (seed {seed:#x})"
        );
    }
    // And the converse: every placed partition the selector believes in has
    // a live claimant (no orphaned mastership after repair).
    for (p, master) in &placements {
        if let Some(master) = master {
            assert_eq!(
                claimants.get(p),
                Some(master),
                "{context}: selector names {master:?} for {p:?} but no live table claims it \
                 (seed {seed:#x})"
            );
        }
    }
}

/// Conservation: the global checking total is invariant under transfers, no
/// matter how many re-executions or failovers happened.
fn assert_conservation(system: &DynaMastSystem, seed: u64) {
    let target = system
        .sites()
        .iter()
        .map(|s| s.clock().current())
        .fold(VersionVector::zero(SITES), |acc, vv| acc.max_with(&vv));
    await_convergence(system, &target, seed);
    let store = system.sites()[0].clone();
    let total: i64 = (0..CUSTOMERS)
        .map(|customer| {
            store
                .store()
                .read(Key::new(smallbank::CHECKING, customer), &target)
                .unwrap()
                .expect("populated account vanished")
                .cell(0)
                .as_i64()
                .unwrap()
        })
        .sum();
    assert_eq!(
        total,
        CUSTOMERS as i64 * INITIAL,
        "money not conserved across failover (seed {seed:#x})"
    );
}

/// One sweep iteration: run SmallBank under contention until the selector
/// dies at `point`, promote the standby, and verify every invariant.
fn run_crash_point(point: CrashPoint) {
    let seed = chaos_seed() ^ point.code().wrapping_mul(0x517C_C1B7_2722_0A95);
    eprintln!("[failover] crash_point={point:?} CHAOS_SEED={seed:#x}");

    // The two batch crash points sit on the epoch-flush path, not the
    // inline remaster path: reaching them needs the flash-crowd shape
    // (every client hammering a small hot range) that keeps the epoch
    // batcher's imbalance probe queueing group moves.
    let hot_mix = matches!(
        point,
        CrashPoint::MidBatchRelease | CrashPoint::MidBatchGrant
    );

    let switch = Arc::new(CrashSwitch::new(seed, point));
    let system = build_smallbank(Some(Arc::clone(&switch)));
    let _watchdog = arm_watchdog(
        seed,
        format!("crash_point={point:?}"),
        60,
        Some(Arc::clone(system.network())),
    );
    // The audit plane shadows every failover run: a double-master window in
    // the handoff shows up as a write sequenced after the old master's
    // release, and an overwritten debit as two writes claiming the same
    // parent stamp — with a repro bundle either way.
    let auditor = arm_auditor(&system, true, &format!("failover crash_point={point:?}"));

    let stop = Arc::new(AtomicBool::new(false));
    let promoted = Arc::new(AtomicBool::new(false));
    let post_failover_commits = Arc::new(AtomicU64::new(0));
    let post_failover_reads = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            let promoted = Arc::clone(&promoted);
            let post_commits = Arc::clone(&post_failover_commits);
            let post_reads = Arc::clone(&post_failover_reads);
            thread::spawn(move || {
                let mut session = ClientSession::new(ClientId::new(t as usize), SITES);
                let mut rng = Rng(seed ^ (t + 1).wrapping_mul(0xA076_1D64_78BD_642F));
                let (mine_a, mine_b) = (1_000 + t, 1_100 + t);
                let mut last_cvv = session.cvv.clone();
                while !stop.load(Ordering::Relaxed) {
                    let was_promoted = promoted.load(Ordering::Acquire);
                    let result = match rng.next() % 3 {
                        0 | 1 if hot_mix => {
                            // Flash crowd: same-partition transfers over a
                            // two-partition hot set, so routing stays on the
                            // sole-master fast path while the hot master's
                            // load imbalance feeds the pending-move queue.
                            let from = rng.next() % 200;
                            let mut to = rng.next() % 200;
                            if to == from {
                                to = (to + 1) % 200;
                            }
                            let amount = (rng.next() % 200) as i64 + 1;
                            system
                                .update(&mut session, &transfer(from, to, amount))
                                .map(|_| ())
                        }
                        0 => {
                            // Contended transfers across the shared range
                            // keep mastership moving, so every remaster
                            // crash point is exercised.
                            let from = rng.next() % SHARED;
                            let mut to = rng.next() % SHARED;
                            if to == from {
                                to = (to + 1) % SHARED;
                            }
                            let amount = (rng.next() % 200) as i64 + 1;
                            system
                                .update(&mut session, &transfer(from, to, amount))
                                .map(|_| ())
                        }
                        1 => {
                            let amount = (rng.next() % 50) as i64 + 1;
                            system
                                .update(&mut session, &transfer(mine_a, mine_b, amount))
                                .map(|_| ())
                        }
                        _ => system
                            .read(&mut session, &pair_balance(mine_a, mine_b))
                            .map(|outcome| {
                                let mut slice = outcome.result.clone();
                                let sum = codec::get_i64(&mut slice).unwrap();
                                assert_eq!(
                                    sum,
                                    2 * INITIAL,
                                    "client {t}: torn snapshot of a private pair across \
                                     failover at {point:?} (seed {seed:#x})"
                                );
                                if was_promoted {
                                    post_reads.fetch_add(1, Ordering::Relaxed);
                                }
                            }),
                    };
                    match result {
                        Ok(()) => {
                            if was_promoted {
                                post_commits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) if tolerable(&e) => {}
                        Err(e) => {
                            panic!("client {t}: unexpected error {e} at {point:?} (seed {seed:#x})")
                        }
                    }
                    assert!(
                        session.cvv.dominates(&last_cvv),
                        "client {t}: session vector regressed across failover at {point:?} \
                         (seed {seed:#x})"
                    );
                    last_cvv = session.cvv.clone();
                }
            })
        })
        .collect();

    // Wait for the armed crash point to be hit mid-protocol.
    let fire_deadline = Instant::now() + Duration::from_secs(30);
    while !switch.fired() {
        assert!(
            Instant::now() < fire_deadline,
            "crash point {point:?} was never reached under load (seed {seed:#x})"
        );
        thread::sleep(Duration::from_millis(2));
    }

    // The selector process is dead. Leave a window where clients hammer the
    // corpse (and any in-flight zombie RPCs land), then promote.
    let zombie = system.crash_selector();
    assert!(zombie.crashed(), "crash switch fired but selector lives");
    thread::sleep(Duration::from_millis(50));
    system
        .promote_standby()
        .unwrap_or_else(|e| panic!("promotion failed at {point:?}: {e} (seed {seed:#x})"));
    assert_eq!(
        system.selector().generation(),
        zombie.generation() + 1,
        "promotion must advance the fencing generation"
    );
    promoted.store(true, Ordering::Release);

    // Post-failover traffic: the promoted selector must route, remaster,
    // and preserve every session.
    thread::sleep(Duration::from_millis(700));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    let commits = post_failover_commits.load(Ordering::Relaxed);
    let reads = post_failover_reads.load(Ordering::Relaxed);
    eprintln!(
        "[failover] crash_point={point:?} post_failover_commits={commits} \
         post_failover_pair_reads={reads}"
    );
    assert!(
        commits > 0,
        "no transaction committed after promotion at {point:?} (seed {seed:#x})"
    );

    assert_conservation(&system, seed);
    assert_single_mastership(&system, seed, &format!("after {point:?}"));
    assert_audit_clean(&auditor, seed, &format!("failover crash_point={point:?}"));
}

/// The sweep: the selector dies at *every* crash point of the remaster
/// protocol, one full SmallBank run per point. `DYNA_CRASH_POINT=<Debug
/// name>` narrows the sweep to one point (the flake hunter pins
/// `MidBatchGrant`).
#[test]
fn selector_crash_sweep_covers_every_crash_point() {
    let only = std::env::var("DYNA_CRASH_POINT").ok();
    for point in CrashPoint::ALL {
        if let Some(only) = &only {
            if format!("{point:?}") != *only {
                continue;
            }
        }
        run_crash_point(point);
    }
}

/// Fencing: after promotion, the deposed selector's queued release/grant
/// RPCs are rejected by the data sites with `StaleSelector`, and mastership
/// stays single.
#[test]
fn zombie_selector_grants_are_fenced_out() {
    let seed = chaos_seed() ^ 0x50B1_E5E1;
    let system = build_smallbank(None);
    let _watchdog = arm_watchdog(
        seed,
        "zombie selector".into(),
        60,
        Some(Arc::clone(system.network())),
    );

    // Place some partitions by running traffic.
    let mut session = ClientSession::new(ClientId::new(0), SITES);
    let mut rng = Rng(seed);
    for _ in 0..200 {
        let from = rng.next() % SHARED;
        let to = (from + 1 + rng.next() % (SHARED - 1)) % SHARED;
        let _ = system.update(&mut session, &transfer(from, to, 5));
    }

    let zombie = system.crash_selector();
    let stale_generation = zombie.generation();
    system.promote_standby().unwrap();
    let live = system.selector();
    assert_eq!(live.generation(), stale_generation + 1);

    // Pick a partition with a live master.
    let (owner, partition) = system
        .sites()
        .iter()
        .find_map(|site| {
            site.ownership()
                .mastered_partitions()
                .into_iter()
                .find(|p| p.raw() & (1 << 63) == 0)
                .map(|p| (site.id(), p))
        })
        .expect("traffic placed at least one partition");
    let other = SiteId::new((owner.as_usize() + 1) % SITES);
    let retry = system.network().config().retry;

    // The zombie's queued release fires late against the owner…
    let release = SiteRequest::Release {
        partition,
        epoch: 1_000_000,
        generation: stale_generation,
    };
    let reply = system
        .network()
        .rpc_with_retry(
            &retry,
            None,
            EndpointId::Site(owner.raw()),
            TrafficCategory::Remaster,
            Bytes::from(encode_to_vec(&release)),
        )
        .unwrap();
    assert_eq!(
        expect_ok(&reply).unwrap_err(),
        DynaError::StaleSelector {
            observed: stale_generation,
            current: stale_generation + 1,
        },
        "fenced site must reject the zombie release"
    );

    // …and its queued grant fires late against another site.
    let grant = SiteRequest::Grant {
        partition,
        epoch: 1_000_000,
        rel_vv: VersionVector::zero(SITES),
        generation: stale_generation,
    };
    let reply = system
        .network()
        .rpc_with_retry(
            &retry,
            None,
            EndpointId::Site(other.raw()),
            TrafficCategory::Remaster,
            Bytes::from(encode_to_vec(&grant)),
        )
        .unwrap();
    assert_eq!(
        expect_ok(&reply).unwrap_err(),
        DynaError::StaleSelector {
            observed: stale_generation,
            current: stale_generation + 1,
        },
        "fenced site must reject the zombie grant"
    );

    // Neither message moved mastership: the owner still masters the
    // partition, the other site does not, and the promoted selector agrees.
    assert!(
        system.sites()[owner.as_usize()]
            .ownership()
            .mastered_partitions()
            .contains(&partition),
        "zombie release must not revoke mastership"
    );
    assert!(
        !system.sites()[other.as_usize()]
            .ownership()
            .mastered_partitions()
            .contains(&partition),
        "zombie grant must not install mastership"
    );
    assert_single_mastership(&system, seed, "after zombie fire");

    // The promoted selector still commits at its own generation.
    system
        .update(&mut session, &transfer(0, 1, 1))
        .expect("promoted selector must keep committing");
}

/// Same `(CHAOS_SEED, crash_point)` ⇒ the same run, bit for bit: the crash
/// fires at the same pass ordinal and the same transaction index, and every
/// transaction outcome before it matches.
#[test]
fn same_seed_and_crash_point_replay_identically() {
    let seed = chaos_seed() ^ 0xDE7E_2217;
    let a = crash_trace(seed);
    let b = crash_trace(seed);
    assert_eq!(a, b, "same (seed, crash point) must replay bit-for-bit");
}

/// Runs a deterministic single-threaded schedule against a crash-armed
/// system and records (trigger ordinal, fired, per-txn outcomes).
fn crash_trace(seed: u64) -> (u64, bool, Vec<u8>) {
    let switch = Arc::new(CrashSwitch::new(seed, CrashPoint::AfterGrantSend));
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_customers: CUSTOMERS,
        initial_balance: INITIAL,
        ..SmallBankConfig::default()
    });
    let mut cfg = DynaMastConfig::adaptive(chaos_config(SITES), workload.catalog());
    cfg.crash_switch = Some(Arc::clone(&switch));
    // No background svv probe: the schedule below is the only driver, so
    // the trace is a pure function of the seed.
    cfg.probe_interval = Duration::ZERO;
    let system = DynaMastSystem::build(cfg, workload.executor());
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();

    let mut session = ClientSession::new(ClientId::new(0), SITES);
    let mut rng = Rng(seed);
    let mut outcomes = Vec::new();
    for _ in 0..300 {
        let from = rng.next() % SHARED;
        let mut to = rng.next() % SHARED;
        if to == from {
            to = (to + 1) % SHARED;
        }
        let outcome = match system.update(&mut session, &transfer(from, to, 7)) {
            Ok(_) => 1u8,
            Err(e) if tolerable(&e) => 0u8,
            Err(e) => panic!("unexpected error in deterministic schedule: {e}"),
        };
        outcomes.push(outcome);
        if switch.fired() {
            break;
        }
    }
    (switch.trigger_ordinal(), switch.fired(), outcomes)
}
