//! Mode-equivalence property: per-transaction remastering and epoch-batched
//! remastering are *policies about when mastership moves*, not about where
//! data lives or what transactions observe. For the same seeded workload the
//! two modes must converge to the identical final ownership table, and the
//! SmallBank conservation invariant must hold under both.
//!
//! Determinism lever: all-zero strategy weights make every Eq. 8 candidate
//! score 0.0, and the argmax breaks ties toward the lowest site id — so every
//! remaster decision in either mode picks site 0, and the final table is a
//! pure function of *which* partitions moved, never of when the mover ran or
//! what the load vector looked like at flush time. A closing sweep pairs
//! every checking partition with partition 0 (pinned at site 0 by the same
//! tie-break), forcing any still-scattered partition through the mandatory
//! inline co-location path in both modes.

mod common;

use std::sync::Arc;

use dynamast::common::ids::{ClientId, Key, PartitionId, SiteId};
use dynamast::common::{StrategyWeights, SystemConfig, VersionVector};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::smallbank::{self, SmallBankConfig, SmallBankWorkload};
use dynamast::workloads::Workload;
use proptest::prelude::*;

use common::{await_convergence, transfer, Rng};

const SITES: usize = 3;
const CUSTOMERS: u64 = 1_200;
const INITIAL: i64 = 10_000;
const PARTITION_SIZE: u64 = 100;

fn build(batched: bool) -> Arc<DynaMastSystem> {
    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_customers: CUSTOMERS,
        initial_balance: INITIAL,
        ..SmallBankConfig::default()
    });
    let mut config = SystemConfig::new(SITES)
        .with_instant_network()
        .with_instant_service()
        .with_weights(StrategyWeights {
            balance: 0.0,
            delay: 0.0,
            intra_txn: 0.0,
            inter_txn: 0.0,
        });
    if batched {
        // Small epochs and a tight wait budget so a short run still crosses
        // every flush trigger (count, wait-budget force, explicit drain).
        config = config.with_epoch_batching(4, 8);
    }
    // Seed the paper's Fig. 5b-style range placement instead of the default
    // unplaced start: cold-start placement under zero weights would put every
    // partition at site 0 immediately, leaving the epoch queue nothing to
    // move. With remote-seeded masters, batched mode must *migrate* them.
    let placements: Vec<_> = {
        let owner = workload.static_owner(SITES);
        smallbank::all_partitions(workload.config())
            .into_iter()
            .map(|p| (p, owner(p)))
            .collect()
    };
    let mut cfg = DynaMastConfig::adaptive(config, workload.catalog());
    cfg.initial_placements = placements.clone();
    let system = DynaMastSystem::build(cfg, workload.executor());
    for (p, s) in &placements {
        system.sites()[s.as_usize()].ownership().grant(*p);
    }
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();
    system
}

/// Pairs of checking partitions seeded on the same non-zero site (block
/// range partitioning: 4–7 at site 1, 8–11 at site 2). A flash crowd split
/// across one pair makes that remote site the load leader, which is what
/// arms the imbalance probe — and two hot partitions queued from the same
/// source site is the smallest shape that coalesces into a real multi-move
/// `BatchRelease`.
const HOT_PAIRS: [(u64, u64); 8] = [
    (4, 5),
    (5, 6),
    (6, 7),
    (4, 7),
    (8, 9),
    (9, 10),
    (10, 11),
    (8, 11),
];

/// Runs the seeded transfer stream, then the deterministic co-location
/// sweep, then drains any queued epoch moves.
///
/// The stream interleaves two shapes. The *flash crowd* (~90%) hammers two
/// partitions co-seeded on a remote site with intra-partition pairs: pure
/// sole-master fast path, so per-txn mode never moves them, while batched
/// mode's probe queues both and a flush migrates them as one batch — exactly
/// the asymmetry the closing sweep must erase. *Scatter* pairs (~10%) stay
/// inside the site-0 seeded block (accounts 0..400) so they never steal the
/// hot partitions inline and dilute the remote site's load share.
fn run(system: &DynaMastSystem, seed: u64, txns: u64, span: u64, hot: (u64, u64)) {
    let mut session = ClientSession::new(ClientId::new(1), SITES);
    let mut rng = Rng(seed);
    for _ in 0..txns {
        let (from, mut to) = if rng.next() % 10 < 9 {
            let base = if rng.next().is_multiple_of(2) {
                hot.0
            } else {
                hot.1
            } * PARTITION_SIZE;
            (
                base + rng.next() % PARTITION_SIZE,
                base + rng.next() % PARTITION_SIZE,
            )
        } else {
            (rng.next() % span, rng.next() % span)
        };
        if to == from {
            to = if to % PARTITION_SIZE == PARTITION_SIZE - 1 {
                to - 1
            } else {
                to + 1
            };
        }
        let amount = (rng.next() % 50) as i64 + 1;
        system
            .update(&mut session, &transfer(from, to, amount))
            .unwrap();
    }
    // The sweep: pair each checking partition with the anchor partition 0.
    // A scattered pair must co-locate inline (both modes share that path),
    // and zero weights send it to site 0.
    for p in 1..CUSTOMERS / PARTITION_SIZE {
        system
            .update(&mut session, &transfer(0, p * PARTITION_SIZE, 1))
            .unwrap();
    }
    system.selector().flush_epoch().unwrap();
}

fn placements(system: &DynaMastSystem) -> Vec<(PartitionId, Option<SiteId>)> {
    let mut table = system.selector().map().placements();
    table.sort_unstable_by_key(|(p, _)| *p);
    table
}

fn checking_total(system: &DynaMastSystem, seed: u64) -> i64 {
    let target = system
        .sites()
        .iter()
        .map(|s| s.clock().current())
        .fold(VersionVector::zero(SITES), |acc, vv| acc.max_with(&vv));
    await_convergence(system, &target, seed);
    let store = system.sites()[0].clone();
    (0..CUSTOMERS)
        .map(|customer| {
            store
                .store()
                .read(Key::new(smallbank::CHECKING, customer), &target)
                .unwrap()
                .expect("populated account vanished")
                .cell(0)
                .as_i64()
                .unwrap()
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seeded workload through both modes: identical final ownership
    /// tables, money conserved in each, and the batched run really batched.
    #[test]
    fn per_txn_and_epoch_batched_modes_converge_identically(
        seed in any::<u64>(),
        txns in 400u64..1_200,
        // Scatter stays within the site-0 seeded block; the span only
        // varies how much of that block the noise traffic touches.
        span in 150u64..400,
        hot_sel in 0usize..HOT_PAIRS.len(),
    ) {
        let hot = HOT_PAIRS[hot_sel];
        let per_txn = build(false);
        let batched = build(true);
        run(&per_txn, seed, txns, span, hot);
        run(&batched, seed, txns, span, hot);

        let a = placements(&per_txn);
        let b = placements(&batched);
        prop_assert_eq!(a, b, "ownership tables diverged (seed {:#x})", seed);

        // The batched run must have exercised the batch path, not just
        // degenerated to inline moves.
        prop_assert!(
            batched.selector().remaster_batch_size.count() > 0,
            "epoch mode never flushed a batch (seed {:#x})",
            seed
        );

        prop_assert_eq!(checking_total(&per_txn, seed), CUSTOMERS as i64 * INITIAL);
        prop_assert_eq!(checking_total(&batched, seed), CUSTOMERS as i64 * INITIAL);
    }
}
