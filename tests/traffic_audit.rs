//! Per-architecture traffic-matrix audit: every category of network traffic
//! an architecture is supposed to generate must be nonzero after a burst,
//! and every category it must not generate must stay zero. A silent zero
//! (or a silent nonzero) means an RPC path gained or lost its accounting —
//! the regression this test pins down for all five systems the paper
//! compares.

use std::sync::Arc;
use std::thread;

use dynamast::baselines::leap::LeapSystem;
use dynamast::baselines::single_master::single_master;
use dynamast::baselines::static_system::{StaticKind, StaticSystem};
use dynamast::common::ids::ClientId;
use dynamast::common::SystemConfig;
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::network::{Network, TrafficCategory};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::{TxnKind, Workload, YcsbConfig, YcsbWorkload};

const SITES: usize = 3;
const CLIENTS: usize = 4;
const TXNS_PER_CLIENT: usize = 100;

fn workload() -> YcsbWorkload {
    YcsbWorkload::new(YcsbConfig {
        num_keys: 4_000,
        rmw_fraction: 0.5,
        ..YcsbConfig::default()
    })
}

fn config() -> SystemConfig {
    SystemConfig::new(SITES).with_instant_service()
}

/// Runs a short burst, then asserts the traffic matrix: nonzero messages
/// for every expected category, zero for every other.
fn burst_and_audit(
    name: &str,
    system: Arc<dyn ReplicatedSystem>,
    network: &Arc<Network>,
    workload: &YcsbWorkload,
    expected: &[TrafficCategory],
) {
    thread::scope(|scope| {
        for c in 0..CLIENTS {
            let system = Arc::clone(&system);
            let mut generator = workload.client(ClientId::new(c), 31 + c as u64);
            scope.spawn(move || {
                let mut session = ClientSession::new(ClientId::new(c), SITES);
                for _ in 0..TXNS_PER_CLIENT {
                    let txn = generator.next_txn();
                    let outcome = match txn.kind {
                        TxnKind::Update => system.update(&mut session, &txn.call),
                        TxnKind::ReadOnly => system.read(&mut session, &txn.call),
                    };
                    outcome.unwrap_or_else(|e| panic!("{name}: {} failed: {e}", txn.label));
                }
            });
        }
    });
    let snapshot = network.stats().snapshot();
    for category in TrafficCategory::ALL {
        let totals = snapshot.get(category);
        if expected.contains(&category) {
            assert!(
                totals.messages > 0,
                "{name}: expected {} traffic, saw none",
                category.label()
            );
            assert!(
                totals.bytes > 0,
                "{name}: {} messages recorded but zero bytes charged",
                category.label()
            );
        } else {
            assert_eq!(
                totals.messages,
                0,
                "{name}: expected no {} traffic, saw {} msgs",
                category.label(),
                totals.messages
            );
        }
    }
}

#[test]
fn dynamast_traffic_categories() {
    let workload = workload();
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(config(), workload.catalog()),
        workload.executor(),
    );
    workload
        .populate(&mut |k, r| system.load_row(k, r))
        .unwrap();
    let net = Arc::clone(system.network());
    burst_and_audit(
        "dynamast",
        system,
        &net,
        &workload,
        &[
            TrafficCategory::ClientSelector,
            TrafficCategory::ClientSite,
            TrafficCategory::Remaster,
            TrafficCategory::Replication,
        ],
    );
}

#[test]
fn single_master_traffic_categories() {
    let workload = workload();
    let system = single_master(config(), workload.catalog(), workload.executor());
    workload
        .populate(&mut |k, r| system.load_row(k, r))
        .unwrap();
    let net = Arc::clone(system.network());
    // Remaster traffic without remaster ops: first-touch placement grants
    // are charged to the remaster category even under a pinned strategy.
    burst_and_audit(
        "single-master",
        system,
        &net,
        &workload,
        &[
            TrafficCategory::ClientSelector,
            TrafficCategory::ClientSite,
            TrafficCategory::Remaster,
            TrafficCategory::Replication,
        ],
    );
}

#[test]
fn multi_master_traffic_categories() {
    let workload = workload();
    let system = StaticSystem::build(
        StaticKind::MultiMaster,
        config(),
        workload.catalog(),
        workload.static_owner(SITES),
        workload.static_tables(),
        workload.executor(),
        8,
    );
    workload
        .populate(&mut |k, r| system.load_row(k, r))
        .unwrap();
    let net = Arc::clone(system.network());
    burst_and_audit(
        "multi-master",
        system,
        &net,
        &workload,
        &[
            TrafficCategory::ClientSite,
            TrafficCategory::TwoPhaseCommit,
            TrafficCategory::Replication,
        ],
    );
}

#[test]
fn partition_store_traffic_categories() {
    let workload = workload();
    let system = StaticSystem::build(
        StaticKind::PartitionStore,
        config(),
        workload.catalog(),
        workload.static_owner(SITES),
        workload.static_tables(),
        workload.executor(),
        8,
    );
    workload
        .populate(&mut |k, r| system.load_row(k, r))
        .unwrap();
    let net = Arc::clone(system.network());
    // Each partition is owned exactly once, so the propagator has nothing
    // to ship: replication must stay zero.
    burst_and_audit(
        "partition-store",
        system,
        &net,
        &workload,
        &[TrafficCategory::ClientSite, TrafficCategory::TwoPhaseCommit],
    );
}

#[test]
fn leap_traffic_categories() {
    let workload = workload();
    let system = LeapSystem::build(
        config(),
        workload.catalog(),
        workload.static_owner(SITES),
        workload.static_tables(),
        workload.executor(),
        8,
    );
    workload
        .populate(&mut |k, r| system.load_row(k, r))
        .unwrap();
    let net = Arc::clone(system.network());
    burst_and_audit(
        "leap",
        system,
        &net,
        &workload,
        &[
            TrafficCategory::ClientSelector,
            TrafficCategory::ClientSite,
            TrafficCategory::DataShip,
        ],
    );
}
