//! Appendix I: replica site selectors route single-site transactions from
//! (possibly stale) local metadata; stale routings abort at the site
//! manager's mastership check and are resubmitted to the master selector.

use std::sync::Arc;

use bytes::{BufMut, Bytes};
use dynamast::common::ids::{ClientId, Key, TableId};
use dynamast::common::{DynaError, Result, Row, SystemConfig, Value};
use dynamast::core::distributed::ReplicaSelector;
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::site::proc::{ProcCall, ProcExecutor, TxnCtx};
use dynamast::site::system::{exec_update_at, ClientSession, ReplicatedSystem};
use dynamast::storage::Catalog;

const KV: TableId = TableId::new(0);

struct SetApp;

impl ProcExecutor for SetApp {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let mut args = call.args.clone();
        let value = dynamast::common::codec::get_u64(&mut args)?;
        for key in &call.write_set {
            ctx.write(*key, Row::new(vec![Value::U64(value)]))?;
        }
        Ok(Bytes::new())
    }
}

fn set(keys: &[u64], value: u64) -> ProcCall {
    let mut args = Vec::new();
    args.put_u64(value);
    ProcCall {
        proc_id: 1,
        args: Bytes::from(args),
        write_set: keys.iter().map(|k| Key::new(KV, *k)).collect(),
        read_keys: vec![],
        read_ranges: vec![],
    }
}

fn build() -> (Arc<DynaMastSystem>, Catalog) {
    let mut catalog = Catalog::new();
    catalog.add_table("kv", 1, 100);
    let config = SystemConfig::new(3)
        .with_instant_network()
        .with_instant_service();
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(config, catalog.clone()),
        Arc::new(SetApp),
    );
    (system, catalog)
}

/// Execute a write through a replica selector, following the Appendix I
/// protocol: on `NotMaster`, resubmit through the master selector.
fn update_via_replica(
    system: &DynaMastSystem,
    replica: &ReplicaSelector,
    session: &mut ClientSession,
    proc: &ProcCall,
) -> Result<()> {
    let decision = replica.route_update(session.id, &session.cvv, &proc.write_set)?;
    match exec_update_at(
        system.network(),
        decision.site,
        0,
        session,
        &decision.min_vv,
        proc,
        true,
    ) {
        Ok(_) => Ok(()),
        Err(DynaError::NotMaster { .. }) => {
            let decision = replica.resubmit(session.id, &session.cvv, &proc.write_set)?;
            exec_update_at(
                system.network(),
                decision.site,
                0,
                session,
                &decision.min_vv,
                proc,
                true,
            )
            .map(|_| ())
        }
        Err(other) => Err(other),
    }
}

#[test]
fn replica_routes_locally_after_refresh() {
    let (system, catalog) = build();
    let mut session = ClientSession::new(ClientId::new(1), 3);
    // Place a few partitions via the master selector.
    for i in 0..5u64 {
        system.update(&mut session, &set(&[i * 100], 1)).unwrap();
    }
    let replica = ReplicaSelector::new(system.selector(), catalog, 3);
    replica.refresh_all();
    // Single-partition writes now route from the replica cache.
    for i in 0..5u64 {
        update_via_replica(&system, &replica, &mut session, &set(&[i * 100], 2)).unwrap();
    }
    assert_eq!(replica.local_routes.get(), 5);
    assert_eq!(replica.forwarded_routes.get(), 0);
}

#[test]
fn unknown_and_split_write_sets_forward_to_master() {
    let (system, catalog) = build();
    let replica = ReplicaSelector::new(system.selector(), catalog, 3);
    let mut session = ClientSession::new(ClientId::new(2), 3);
    // Nothing cached → forward (and the master places the partitions).
    update_via_replica(&system, &replica, &mut session, &set(&[100, 4200], 1)).unwrap();
    assert_eq!(replica.forwarded_routes.get(), 1);
    // Forwarding updated the cache: the same write set now routes locally.
    update_via_replica(&system, &replica, &mut session, &set(&[100, 4200], 2)).unwrap();
    assert_eq!(replica.local_routes.get(), 1);
}

#[test]
fn stale_replica_metadata_aborts_and_resubmits() {
    let (system, catalog) = build();
    let mut session = ClientSession::new(ClientId::new(3), 3);
    // Place partitions 0 and 77 separately, then capture the stale view.
    system.update(&mut session, &set(&[50], 1)).unwrap();
    system.update(&mut session, &set(&[7750], 1)).unwrap();
    let replica = ReplicaSelector::new(system.selector(), catalog, 3);
    replica.refresh_all();

    // Move partition 0 by forcing a joint write set through the master.
    system.update(&mut session, &set(&[50, 7750], 2)).unwrap();

    // The replica's cache may now be stale for partition 0. Route a write
    // to key 50 via the replica: either it still routes correctly (cache
    // happened to match) or the site rejects and the resubmission path
    // succeeds. Either way the write must commit exactly once.
    let before = system.stats().committed_updates;
    update_via_replica(&system, &replica, &mut session, &set(&[50], 3)).unwrap();
    assert_eq!(system.stats().committed_updates, before + 1);
}

/// The full Appendix I configuration as a system: clients run through
/// replica selectors; most routings stay local once placements stabilize.
#[test]
fn distributed_selector_system_serves_clients() {
    use dynamast::core::distributed::DistributedSelectorSystem;
    let (inner, _) = build();
    // Stabilize some placements through the master selector first.
    let mut warm = ClientSession::new(ClientId::new(0), 3);
    for i in 0..10u64 {
        inner.update(&mut warm, &set(&[i * 100], 1)).unwrap();
    }
    let system = DistributedSelectorSystem::new(Arc::clone(&inner), 2);
    let mut handles = Vec::new();
    let system = Arc::new(system);
    for c in 0..4usize {
        let system = Arc::clone(&system);
        handles.push(std::thread::spawn(move || {
            let mut session = ClientSession::new(ClientId::new(c), 3);
            for i in 0..25u64 {
                let key = (i % 10) * 100;
                system.update(&mut session, &set(&[key], i)).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let (local, forwarded) = system.routing_split();
    assert_eq!(local + forwarded, 100);
    assert!(
        local > forwarded,
        "stable placements must route mostly locally: {local} local vs {forwarded} forwarded"
    );
    // Reads flow through unchanged.
    let mut session = ClientSession::new(ClientId::new(9), 3);
    let mut args = Vec::new();
    args.put_u64(0);
    let read = ProcCall {
        proc_id: 1,
        args: Bytes::from(args),
        write_set: vec![],
        read_keys: vec![Key::new(KV, 0)],
        read_ranges: vec![],
    };
    // The SetApp executor ignores read-only calls' write logic; it simply
    // writes nothing and returns. Routing must still succeed.
    system.read(&mut session, &read).unwrap();
}
