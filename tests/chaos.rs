//! Chaos tests: full DynaMast deployments driven under a seeded fault plan —
//! message drops, duplication, delay spikes, directed partitions, and a site
//! crash/restart — while asserting the user-facing guarantees survive:
//! conserved balances, snapshot-consistent reads, monotone sessions, and
//! replica convergence after healing.
//!
//! Every fault draw hashes from one seed; a failing run prints the seed and
//! plan so `CHAOS_SEED=<seed> cargo test --test chaos` replays the exact
//! fault schedule.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dynamast::common::ids::{ClientId, Key};
use dynamast::common::{codec, VersionVector};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::network::{EndpointId, FaultPlan};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::workloads::smallbank::{self, SmallBankConfig, SmallBankWorkload};
use dynamast::workloads::ycsb::{YcsbConfig, YcsbWorkload};
use dynamast::workloads::{TxnKind, Workload};

use common::{
    arm_auditor, arm_watchdog, assert_audit_clean, await_convergence, chaos_config, chaos_seed,
    pair_balance, tolerable, transfer, Rng,
};

/// SmallBank under 1% drops + duplication + a crash/restart of site 1.
///
/// Only SendPayment transfers run (no deposits): a transfer conserves money
/// under at-least-once delivery — every re-execution moves the amount again
/// but never mints it — so the global checking total is invariant no matter
/// how many times a retransmitted update re-executes. Each client also owns
/// a private cross-partition account pair whose sum every committed state
/// preserves; Balance reads of the pair must observe exactly that sum, which
/// is the SSSI snapshot guarantee (a torn read across the two partitions is
/// the only way to see anything else).
#[test]
fn smallbank_survives_drops_duplication_and_a_site_crash() {
    const INITIAL: i64 = 10_000;
    const CUSTOMERS: u64 = 1_200;
    const SHARED: u64 = 800;

    let seed = chaos_seed();
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_drops(0.01)
            .with_duplication(0.005),
    );
    eprintln!("[chaos] smallbank seed={seed:#x} {plan:?}");

    let workload = SmallBankWorkload::new(SmallBankConfig {
        num_customers: CUSTOMERS,
        initial_balance: INITIAL,
        ..SmallBankConfig::default()
    });
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(chaos_config(3), workload.catalog()),
        workload.executor(),
    );
    let _watchdog = arm_watchdog(
        seed,
        format!("{plan:?}"),
        60,
        Some(Arc::clone(system.network())),
    );
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();
    // The audit plane shadows the whole run: exactly-once installs,
    // single-writer-per-fence-interval, and debit/credit conservation of
    // every SendPayment group, checked online from the flight recorder.
    let auditor = arm_auditor(&system, true, "chaos smallbank");
    system.network().set_faults(Some(Arc::clone(&plan)));

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut session = ClientSession::new(ClientId::new(t as usize), 3);
                let mut rng = Rng(seed ^ (t + 1).wrapping_mul(0xA076_1D64_78BD_642F));
                // A private pair spanning two partitions (100 accounts per
                // partition): its sum is this thread's snapshot invariant.
                let (mine_a, mine_b) = (1_000 + t, 1_100 + t);
                let mut committed = 0u64;
                let mut errors = 0u64;
                let mut last_cvv = session.cvv.clone();
                while !stop.load(Ordering::Relaxed) {
                    let result = match rng.next() % 3 {
                        0 => {
                            let from = rng.next() % SHARED;
                            let mut to = rng.next() % SHARED;
                            if to == from {
                                to = (to + 1) % SHARED;
                            }
                            let amount = (rng.next() % 200) as i64 + 1;
                            system
                                .update(&mut session, &transfer(from, to, amount))
                                .map(|_| ())
                        }
                        1 => {
                            let amount = (rng.next() % 50) as i64 + 1;
                            system
                                .update(&mut session, &transfer(mine_a, mine_b, amount))
                                .map(|_| ())
                        }
                        _ => system
                            .read(&mut session, &pair_balance(mine_a, mine_b))
                            .map(|outcome| {
                                let mut slice = outcome.result.clone();
                                let sum = codec::get_i64(&mut slice).unwrap();
                                assert_eq!(
                                    sum,
                                    2 * INITIAL,
                                    "client {t}: torn snapshot of a private pair \
                                     (seed {seed:#x})"
                                );
                            }),
                    };
                    match result {
                        Ok(()) => committed += 1,
                        Err(e) if tolerable(&e) => errors += 1,
                        Err(e) => panic!("client {t}: unexpected error {e} (seed {seed:#x})"),
                    }
                    // SSSI session guarantee: the observed-state vector
                    // never moves backwards, even across failed attempts
                    // and the crash window.
                    assert!(
                        session.cvv.dominates(&last_cvv),
                        "client {t}: session vector regressed (seed {seed:#x})"
                    );
                    last_cvv = session.cvv.clone();
                }
                (committed, errors)
            })
        })
        .collect();

    // Fault timeline: a healthy (but lossy) warmup, then site 1 crashes,
    // the cluster limps with 2/3 sites, the site restarts from its logs,
    // and the tail drains.
    thread::sleep(Duration::from_millis(700));
    system.crash_site(1);
    thread::sleep(Duration::from_millis(1_000));
    system.restart_site(1).unwrap();
    thread::sleep(Duration::from_millis(1_200));
    stop.store(true, Ordering::Relaxed);

    let mut committed = 0u64;
    let mut errors = 0u64;
    for h in handles {
        let (c, e) = h.join().unwrap();
        committed += c;
        errors += e;
    }
    assert!(committed > 0, "no transaction ever committed under chaos");
    eprintln!("[chaos] smallbank committed={committed} tolerated_errors={errors}");

    // Heal everything and let the replicas converge on a common snapshot.
    system.network().set_faults(None);
    let target = system
        .sites()
        .iter()
        .map(|s| s.clock().current())
        .fold(VersionVector::zero(3), |acc, vv| acc.max_with(&vv));
    await_convergence(&system, &target, seed);

    // Global conservation: transfers (even duplicated or re-executed ones)
    // move money, never create or destroy it.
    let store = system.sites()[0].clone();
    let total: i64 = (0..CUSTOMERS)
        .map(|customer| {
            store
                .store()
                .read(Key::new(smallbank::CHECKING, customer), &target)
                .unwrap()
                .expect("populated account vanished")
                .cell(0)
                .as_i64()
                .unwrap()
        })
        .sum();
    assert_eq!(
        total,
        CUSTOMERS as i64 * INITIAL,
        "money not conserved (seed {seed:#x})"
    );
    assert_audit_clean(&auditor, seed, "chaos smallbank");
}

/// YCSB under drops, duplication, delay spikes, and a directed partition
/// between sites 0 and 2 that heals mid-run. Asserts session monotonicity
/// throughout and byte-identical replicas once the fabric heals.
#[test]
fn ycsb_converges_after_partition_heals() {
    const KEYS: u64 = 2_000;

    let seed = chaos_seed() ^ 0x9C5B_DE01;
    let plan = Arc::new(
        FaultPlan::new(seed)
            .with_drops(0.01)
            .with_duplication(0.005)
            .with_delay_spikes(0.02, Duration::from_millis(2)),
    );
    eprintln!("[chaos] ycsb seed={seed:#x} {plan:?}");

    let workload = YcsbWorkload::new(YcsbConfig {
        num_keys: KEYS,
        rmw_fraction: 0.8,
        zipf: Some(0.75),
        affinity_txns: 50,
        ..YcsbConfig::default()
    });
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(chaos_config(3), workload.catalog()),
        workload.executor(),
    );
    let _watchdog = arm_watchdog(
        seed,
        format!("{plan:?}"),
        60,
        Some(Arc::clone(system.network())),
    );
    workload
        .populate(&mut |key, row| system.load_row(key, row))
        .unwrap();
    // YCSB writes aren't zero-sum, so the conservation checker stays off;
    // ownership and exactly-once install auditing remain armed.
    let auditor = arm_auditor(&system, false, "chaos ycsb");
    system.network().set_faults(Some(Arc::clone(&plan)));

    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..3usize)
        .map(|t| {
            let system = Arc::clone(&system);
            let stop = Arc::clone(&stop);
            let mut generator = workload.client(ClientId::new(t), seed ^ t as u64);
            thread::spawn(move || {
                let mut session = ClientSession::new(ClientId::new(t), 3);
                let mut committed = 0u64;
                let mut errors = 0u64;
                let mut last_cvv = session.cvv.clone();
                while !stop.load(Ordering::Relaxed) {
                    let txn = generator.next_txn();
                    let result = match txn.kind {
                        TxnKind::Update => system.update(&mut session, &txn.call),
                        TxnKind::ReadOnly => system.read(&mut session, &txn.call),
                    };
                    match result {
                        Ok(_) => committed += 1,
                        Err(e) if tolerable(&e) => errors += 1,
                        Err(e) => panic!("client {t}: unexpected error {e} (seed {seed:#x})"),
                    }
                    assert!(
                        session.cvv.dominates(&last_cvv),
                        "client {t}: session vector regressed (seed {seed:#x})"
                    );
                    last_cvv = session.cvv.clone();
                }
                (committed, errors)
            })
        })
        .collect();

    // Fault timeline: lossy warmup, then a bidirectional partition between
    // sites 0 and 2 (replication between them stalls; remasters whose grant
    // waits on a stalled replica time out and roll back), then the fabric
    // heals and the backlog drains.
    thread::sleep(Duration::from_millis(400));
    plan.partition_pair(EndpointId::Site(0), EndpointId::Site(2));
    thread::sleep(Duration::from_millis(800));
    plan.heal_all();
    thread::sleep(Duration::from_millis(800));
    stop.store(true, Ordering::Relaxed);

    let mut committed = 0u64;
    let mut errors = 0u64;
    for h in handles {
        let (c, e) = h.join().unwrap();
        committed += c;
        errors += e;
    }
    assert!(committed > 0, "no transaction ever committed under chaos");
    eprintln!("[chaos] ycsb committed={committed} tolerated_errors={errors}");

    system.network().set_faults(None);
    let target = system
        .sites()
        .iter()
        .map(|s| s.clock().current())
        .fold(VersionVector::zero(3), |acc, vv| acc.max_with(&vv));
    await_convergence(&system, &target, seed);

    // Once converged, every replica must hold the identical snapshot: the
    // partition stalled replication but must not have forked it.
    let sites = system.sites();
    for key in 0..KEYS {
        let key = Key::new(dynamast::workloads::ycsb::USERTABLE, key);
        let reference = sites[0].store().read(key, &target).unwrap();
        for (i, site) in sites.iter().enumerate().skip(1) {
            assert_eq!(
                site.store().read(key, &target).unwrap(),
                reference,
                "site {i} diverged at {key:?} (seed {seed:#x})"
            );
        }
    }
    assert_audit_clean(&auditor, seed, "chaos ycsb");
}

/// The same seed must produce the same per-link fault schedule regardless of
/// how message sends interleave across links — that is what makes a chaos
/// failure replayable from nothing but the printed seed.
#[test]
fn identical_seeds_produce_identical_fault_schedules() {
    let mk = |seed: u64| {
        FaultPlan::new(seed)
            .with_drops(0.2)
            .with_duplication(0.1)
            .with_delay_spikes(0.1, Duration::from_millis(1))
    };
    let links: [(Option<EndpointId>, Option<EndpointId>); 4] = [
        (None, Some(EndpointId::Site(0))),
        (Some(EndpointId::Site(0)), Some(EndpointId::Site(1))),
        (Some(EndpointId::Site(2)), Some(EndpointId::Site(0))),
        (Some(EndpointId::Selector), Some(EndpointId::Site(1))),
    ];

    // Draw plan A round-robin across links and plan B link-major: the
    // per-link ordinal counters must make each link's schedule independent
    // of the global interleaving.
    let a = mk(7);
    let mut sched_a = vec![Vec::new(); links.len()];
    for _ in 0..256 {
        for (i, (from, to)) in links.iter().enumerate() {
            sched_a[i].push(a.decide(*from, *to));
        }
    }
    let b = mk(7);
    let mut sched_b = vec![Vec::new(); links.len()];
    for (i, (from, to)) in links.iter().enumerate() {
        for _ in 0..256 {
            sched_b[i].push(b.decide(*from, *to));
        }
    }
    assert_eq!(sched_a, sched_b, "same seed must replay the same schedule");

    // The schedule is non-degenerate at these probabilities...
    assert!(sched_a.iter().flatten().any(|d| d.drop));
    assert!(sched_a.iter().flatten().any(|d| d.duplicate));
    assert!(sched_a.iter().flatten().any(|d| !d.drop && !d.duplicate));
    // ...and a different seed diverges.
    let c = mk(8);
    let mut sched_c = vec![Vec::new(); links.len()];
    for (i, (from, to)) in links.iter().enumerate() {
        for _ in 0..256 {
            sched_c[i].push(c.decide(*from, *to));
        }
    }
    assert_ne!(sched_b, sched_c, "different seeds must diverge");
}
