//! Failure-injection tests (paper §V-C): sites recover from the durable
//! logs; the selector's mastership map is reconstructible from grant/release
//! records.

use std::sync::Arc;

use bytes::{BufMut, Bytes};
use dynamast::common::ids::{ClientId, Key, SiteId, TableId};
use dynamast::common::{Result, Row, SystemConfig, Value};
use dynamast::core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast::core::recovery::{recover_selector_map, recover_site};
use dynamast::site::proc::{ProcCall, ProcExecutor, TxnCtx};
use dynamast::site::system::{ClientSession, ReplicatedSystem};
use dynamast::storage::Catalog;

const KV: TableId = TableId::new(0);

struct SetApp;

impl ProcExecutor for SetApp {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let mut args = call.args.clone();
        let value = dynamast::common::codec::get_u64(&mut args)?;
        for key in &call.write_set {
            ctx.write(*key, Row::new(vec![Value::U64(value)]))?;
        }
        Ok(Bytes::new())
    }
}

fn set(keys: &[u64], value: u64) -> ProcCall {
    let mut args = Vec::new();
    args.put_u64(value);
    ProcCall {
        proc_id: 1,
        args: Bytes::from(args),
        write_set: keys.iter().map(|k| Key::new(KV, *k)).collect(),
        read_keys: vec![],
        read_ranges: vec![],
    }
}

fn build() -> (Arc<DynaMastSystem>, Catalog) {
    let mut catalog = Catalog::new();
    catalog.add_table("kv", 1, 100);
    let config = SystemConfig::new(3)
        .with_instant_network()
        .with_instant_service();
    let system = DynaMastSystem::build(
        DynaMastConfig::adaptive(config, catalog.clone()),
        Arc::new(SetApp),
    );
    (system, catalog)
}

#[test]
fn replayed_site_matches_live_replica() {
    let (system, catalog) = build();
    let mut session = ClientSession::new(ClientId::new(1), 3);
    // Single-partition writes place; joint write sets remaster.
    for i in 0..40u64 {
        system.update(&mut session, &set(&[i * 100], i)).unwrap();
    }
    for i in 0..10u64 {
        system
            .update(&mut session, &set(&[i * 100, (i + 15) * 100], 5000 + i))
            .unwrap();
    }

    let recovered = recover_site(SiteId::new(2), system.logs(), catalog, 4, &[]).unwrap();
    // The recovered svv must cover the session's entire history.
    assert!(recovered.state.svv.dominates(&session.cvv));
    // Every record agrees with the freshest live data. Replay drained the
    // logs completely, so wait until the live replica's refresh stream has
    // caught up to the session history before comparing cuts — commit acks
    // do not wait for remote refresh application.
    let live = &system.sites()[0];
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while !live.clock().current().dominates(&session.cvv) {
        assert!(
            std::time::Instant::now() < deadline,
            "live replica never caught up to the session history"
        );
        std::thread::yield_now();
    }
    let live_vv = live.clock().current();
    for i in 0..40u64 {
        let key = Key::new(KV, i * 100);
        let expected = live.store().read(key, &live_vv).unwrap();
        let got = recovered
            .state
            .store
            .read(key, &recovered.state.svv)
            .unwrap();
        assert_eq!(got, expected, "divergence at {key:?}");
    }
}

#[test]
fn selector_map_recovers_current_masterships() {
    let (system, _) = build();
    let mut session = ClientSession::new(ClientId::new(1), 3);
    for i in 0..30u64 {
        system.update(&mut session, &set(&[i * 100], 1)).unwrap();
    }
    // Force remastering by joining distant partitions.
    for i in 0..10u64 {
        system
            .update(&mut session, &set(&[i * 100, (29 - i) * 100], 2))
            .unwrap();
    }
    let recovered = recover_selector_map(system.logs(), &[]).unwrap();
    for (partition, master) in system.selector().map().placements() {
        let Some(live_master) = master else { continue };
        assert_eq!(
            recovered.get(&partition),
            Some(&live_master),
            "stale mastership for {partition:?}"
        );
    }
    assert!(!recovered.is_empty());
}

#[test]
fn crashed_site_does_not_block_others() {
    let (system, _) = build();
    let mut session = ClientSession::new(ClientId::new(1), 3);
    // Keep partitions away from site 1 by seeding activity then crashing it.
    for i in 0..10u64 {
        system.update(&mut session, &set(&[i * 100], 1)).unwrap();
    }
    // Find a partition NOT mastered at site 1 and keep writing to it after
    // the crash; single-site execution must be unaffected.
    let victim = SiteId::new(1);
    system
        .network()
        .disconnect(dynamast::network::EndpointId::Site(1));
    let placements = system.selector().map().placements();
    let survivor_partition = placements
        .iter()
        .find_map(|(p, m)| (*m != Some(victim)).then_some(*p))
        .expect("some partition not on the victim");
    let (_, index) = dynamast::common::ids::unpack_partition_id(survivor_partition);
    let key = index * 100;
    for value in 0..5 {
        system
            .update(&mut session, &set(&[key], value))
            .expect("transactions on surviving sites must proceed");
    }
}

#[test]
fn mid_remaster_crash_recovers_consistent_mastership() {
    let (system, _) = build();
    let mut session = ClientSession::new(ClientId::new(1), 3);
    for i in 0..12u64 {
        system.update(&mut session, &set(&[i * 100], 1)).unwrap();
    }
    // Pick a placed partition; its master A will die mid-remaster.
    let placements = system.selector().map().placements();
    let (partition, master) = placements
        .iter()
        .find_map(|(p, m)| m.map(|m| (*p, m)))
        .expect("some partition is placed");
    let a = master.as_usize();
    let b = (a + 1) % 3;
    let sites = system.sites();

    // Release at A, then crash A before any grant is issued: the remaster
    // is cut down exactly between its two halves.
    let rel_vv = sites[a].release(partition, 1_000_000).unwrap();
    system.crash_site(a);

    // The grant still completes at B: the release record is durable in A's
    // log and B's replica catches up to `rel_vv` from it.
    let grant_vv = sites[b].grant(partition, 1_000_000, &rel_vv).unwrap();
    assert!(grant_vv.dominates(&rel_vv));

    // A restarts from the logs and re-derives its mastership set.
    system.restart_site(a).unwrap();
    let sites = system.sites();
    let recovered = recover_selector_map(system.logs(), &[]).unwrap();
    assert_eq!(
        recovered.get(&partition),
        Some(&SiteId::new(b)),
        "recovery must honor the grant that outlived the releaser's crash"
    );
    // The recovered selector map agrees with every live ownership table,
    // including the restarted site's.
    for (p, owner) in &recovered {
        for (i, site) in sites.iter().enumerate() {
            assert_eq!(
                site.ownership().is_mastered(*p),
                i == owner.as_usize(),
                "site {i} ownership of {p:?} disagrees with the recovered map"
            );
        }
    }
}

#[test]
fn recovered_clock_continues_the_sequence() {
    let (system, catalog) = build();
    let mut session = ClientSession::new(ClientId::new(1), 3);
    for i in 0..12u64 {
        system.update(&mut session, &set(&[i * 100], i)).unwrap();
    }
    let recovered = recover_site(SiteId::new(0), system.logs(), catalog, 4, &[]).unwrap();
    let clock =
        dynamast::site::SiteClock::from_recovered(SiteId::new(0), recovered.state.svv.clone());
    let next = clock.allocate();
    assert_eq!(next, recovered.state.svv.get(SiteId::new(0)) + 1);
}
