//! Offline stand-in for the `bytes` crate (see `crates/shims/README.md`).
//!
//! Implements the subset this workspace uses: [`Bytes`] (cheaply clonable,
//! reference-counted immutable byte slices), [`BytesMut`] (a growable
//! buffer), and the [`Buf`]/[`BufMut`] cursor traits with the big-endian
//! fixed-width accessors the codec relies on.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied once; the shim does not keep the
    /// zero-copy static-lifetime optimization of the real crate).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let arc: Arc<[u8]> = Arc::from(data);
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }

    /// Number of bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` iff no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-slice view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let arc: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: arc.len(),
            data: arc,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{:?}", self.as_slice())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// `true` iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.vec.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a byte source. Multi-byte accessors are big-endian,
/// matching the real `bytes` crate.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The next contiguous chunk of unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// `true` iff any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let mut copied = 0;
        while copied < dst.len() {
            let chunk = self.chunk();
            let n = chunk.len().min(dst.len() - copied);
            dst[copied..copied + n].copy_from_slice(&chunk[..n]);
            self.advance(n);
            copied += n;
        }
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl<T: Buf + ?Sized> Buf for &mut T {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, n: usize) {
        (**self).advance(n)
    }
}

/// Write cursor. Multi-byte writers are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, data: &[u8]) {
        (**self).put_slice(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fixed_width() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_i64(-5);
        buf.put_slice(b"xy");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 1 + 4 + 8 + 8 + 2);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.get_i64(), -5);
        let mut rest = [0u8; 2];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert!(!b.has_remaining());
    }

    #[test]
    fn clone_and_slice_share_data() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let c = s.clone();
        assert_eq!(c, s);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn advance_moves_view() {
        let mut b = Bytes::from(vec![9, 8, 7]);
        b.advance(1);
        assert_eq!(&b[..], &[8, 7]);
    }
}
