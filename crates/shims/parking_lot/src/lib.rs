//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! minimal, API-compatible implementations of its external dependencies (see
//! `crates/shims/README.md`). This one wraps `std::sync` primitives behind
//! `parking_lot`'s non-poisoning API: `lock()`/`read()`/`write()` return
//! guards directly, and a poisoned std lock (a thread panicked while holding
//! it) is treated as still usable, matching `parking_lot` semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// The `Option` is always `Some` outside of [`Condvar`] waits, which
/// temporarily take the inner std guard to hand it to `std::sync::Condvar`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A readers-writer lock with `parking_lot`'s non-poisoning interface.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Outcome of a [`Condvar::wait_for`] call.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` iff the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with this module's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all blocked waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut g = lock.lock();
        let res = cvar.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
