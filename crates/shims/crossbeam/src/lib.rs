//! Offline stand-in for the `crossbeam` crate (see `crates/shims/README.md`).
//!
//! Only the `channel` module is provided: MPMC channels with cloneable
//! senders *and* receivers and crossbeam's disconnection semantics (send
//! fails once all receivers are gone; recv fails once the queue is empty and
//! all senders are gone). Built on a mutex + condvars rather than lock-free
//! queues — throughput is a few million ops/s, ample for the simulated RPC
//! fabric.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::Duration;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// Signalled on push and on sender disconnect.
        readable: Condvar,
        /// Signalled on pop and on receiver disconnect (bounded sends wait).
        writable: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait timed out with the channel still connected.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC: each message goes to exactly one
    /// receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded channel; `send` blocks while `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking if the channel is bounded and full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            loop {
                if shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match shared.capacity {
                    Some(cap) if queue.len() >= cap.max(1) => {
                        queue = shared
                            .writable
                            .wait(queue)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            shared.readable.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.writable.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = shared
                    .readable
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Like [`Receiver::recv`] with an overall timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let shared = &self.shared;
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.writable.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = shared
                    .readable
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        }

        /// Dequeues a message if one is ready.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let shared = &self.shared;
            let mut queue = shared.lock();
            match queue.pop_front() {
                Some(value) => {
                    drop(queue);
                    shared.writable.notify_one();
                    Ok(value)
                }
                None => Err(RecvError),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake receivers so they observe the disconnect. Take the
                // queue lock so the notification cannot race ahead of a
                // receiver that has checked `senders` but not yet parked.
                let _guard = self.shared.lock();
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = self.shared.lock();
                self.shared.writable.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(5).unwrap();
            drop(tx2);
            assert_eq!(rx.recv().unwrap(), 5);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = bounded(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn blocked_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            let t = thread::spawn(move || rx.recv().unwrap());
            thread::sleep(Duration::from_millis(10));
            tx.send(9u8).unwrap();
            assert_eq!(t.join().unwrap(), 9);
        }

        #[test]
        fn blocked_recv_wakes_on_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let t = thread::spawn(move || rx.recv());
            thread::sleep(Duration::from_millis(10));
            drop(tx);
            assert_eq!(t.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_share_the_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..10u32 {
                tx.send(i).unwrap();
            }
            let mut seen = Vec::new();
            for _ in 0..5 {
                seen.push(rx1.recv().unwrap());
                seen.push(rx2.recv().unwrap());
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
