//! Offline stand-in for the `proptest` crate (see `crates/shims/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, [`prop_oneof!`],
//! range/tuple/collection/option strategies, `any::<T>()`, `prop_map`, and
//! `ProptestConfig::with_cases`. Differences from the real crate:
//!
//! * **No shrinking.** A failing case reports the case number and message
//!   but not a minimized input. Inputs are deterministic per (test name,
//!   case index), so failures reproduce exactly.
//! * **Simplified string strategies.** A `&str` pattern is not interpreted
//!   as a full regex; only a trailing `{m,n}` length bound is honoured, and
//!   characters are drawn from a fixed mixed ASCII/Unicode alphabet.

use rand::rngs::SmallRng;

pub mod test_runner {
    //! Test configuration and per-case RNG derivation.

    use super::SmallRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Subset of proptest's run configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// A failed assertion inside a property test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: String) -> Self {
            TestCaseError(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic per-test seed derived from the test's full path.
    pub fn seed_for(test_name: &str) -> u64 {
        // FNV-1a.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// RNG for one case of one test.
    pub fn case_rng(seed: u64, case: u32) -> SmallRng {
        SmallRng::seed_from_u64(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::SmallRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Erases the strategy type (for [`prop_oneof!`][crate::prop_oneof]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut SmallRng) -> T;
    }

    impl<T, S: Strategy<Value = T>> DynStrategy<T> for S {
        fn generate_dyn(&self, rng: &mut SmallRng) -> T {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among type-erased strategies
    /// (backs [`prop_oneof!`][crate::prop_oneof]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given options; each case picks one uniformly.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `&str` patterns act as bounded random strings: a trailing `{m,n}`
    /// sets the length range, everything else about the pattern is ignored.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut SmallRng) -> String {
            const ALPHABET: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', ',', '!', '"', '\\', '/',
                'é', 'ß', '中', '🦀', '\n', '\t', '\0',
            ];
            let (min, max) = parse_len_bounds(self).unwrap_or((0, 32));
            let len = rng.gen_range(min..=max);
            (0..len)
                .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
                .collect()
        }
    }

    fn parse_len_bounds(pattern: &str) -> Option<(usize, usize)> {
        let inner = pattern.strip_suffix('}')?;
        let brace = inner.rfind('{')?;
        let (min_s, max_s) = inner[brace + 1..].split_once(',')?;
        Some((min_s.trim().parse().ok()?, max_s.trim().parse().ok()?))
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::SmallRng;
    use rand::Rng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// A size specification: exact, `a..b`, or `a..=b`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` of a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; sizes below `size`'s minimum can occur if
    /// the element strategy cannot produce enough distinct values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.min..=self.size.max);
            let mut out = BTreeSet::new();
            // Bounded attempts: small element domains may not have `target`
            // distinct values.
            for _ in 0..target.saturating_mul(8).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use super::strategy::Strategy;
    use super::SmallRng;
    use rand::Rng;

    /// Strategy for `Option<T>`: `None` 25% of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Runs each contained `#[test]` function over many generated cases.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u64..100, ref_v in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::test_runner::case_rng(seed, case);
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    // The closure is called where declared on purpose: it
                    // gives `prop_assert!`'s `return Err(...)` a function
                    // boundary to return through.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!("proptest case {case} (seed {seed:#x}) failed: {err}");
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

pub mod prelude {
    //! The glob-importable API surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Nested module matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0usize..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn tuples_and_vecs_compose(
            pairs in prop::collection::vec((0usize..4, any::<u64>()), 1..6),
        ) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 6);
            for (i, _) in &pairs {
                prop_assert!(*i < 4);
            }
        }

        #[test]
        fn mapped_strategies_apply(v in (0u64..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 10);
        }

        #[test]
        fn oneof_picks_every_branch(v in prop_oneof![0u64..1, 10u64..11]) {
            prop_assert!(v == 0 || v == 10);
        }

        #[test]
        fn string_pattern_len_bounds(s in ".{0,7}") {
            prop_assert!(s.chars().count() <= 7);
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(0u64..3)) {
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_cases_are_respected(_x in 0u64..2) {
            // Runs without panicking; case count is internal.
        }
    }

    #[test]
    fn btree_set_respects_bounds() {
        let mut rng = crate::test_runner::case_rng(1, 0);
        use crate::strategy::Strategy;
        let s = crate::collection::btree_set(0u64..50, 0..20);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 20);
        }
    }
}
