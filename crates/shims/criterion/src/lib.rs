//! Offline stand-in for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Implements the harness surface the bench crate uses: `Criterion` with
//! `benchmark_group`/`bench_function`, `Bencher::iter`/`iter_batched`, the
//! `criterion_group!`/`criterion_main!` macros, and `black_box`. Measurement
//! is a plain warm-up + timed-loop mean (no bootstrap statistics, no HTML
//! reports); results print as `name  time: <mean>/iter (<n> iters)`.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier to keep the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortizes setup cost.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs: large batches.
    SmallInput,
    /// Large per-iteration inputs: batches of one.
    LargeInput,
    /// Per-iteration setup, batch size one.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput | BatchSize::PerIteration => 1,
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher<'a> {
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Filled in by the iter calls: (total elapsed, iterations).
    result: &'a mut Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine` in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let mut iters = 0u64;
        let started = Instant::now();
        let deadline = started + self.measurement_time;
        loop {
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
            if Instant::now() >= deadline {
                break;
            }
        }
        *self.result = Some((started.elapsed(), iters));
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len();
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            for input in inputs {
                black_box(routine(input));
            }
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let overall_start = Instant::now();
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let started = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            elapsed += started.elapsed();
            iters += batch as u64;
            if elapsed >= self.measurement_time
                || overall_start.elapsed() >= self.measurement_time * 4
            {
                break;
            }
        }
        *self.result = Some((elapsed, iters));
    }
}

/// The benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark warm-up duration.
    pub fn warm_up_time(mut self, value: Duration) -> Self {
        self.warm_up_time = value;
        self
    }

    /// Sets the per-benchmark measurement duration.
    pub fn measurement_time(mut self, value: Duration) -> Self {
        self.measurement_time = value;
        self
    }

    /// Accepted for API compatibility; this shim sizes by time, not samples.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(self, &name.to_string(), f);
        self
    }
}

/// A named set of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion, &full, f);
        self
    }

    /// Ends the group (exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(criterion: &Criterion, name: &str, mut f: F) {
    let mut result = None;
    let mut bencher = Bencher {
        measurement_time: criterion.measurement_time,
        warm_up_time: criterion.warm_up_time,
        result: &mut result,
    };
    f(&mut bencher);
    match result {
        Some((elapsed, iters)) if iters > 0 => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<50} time: {} ({iters} iters)", format_ns(per_iter));
        }
        _ => println!("{name:<50} time: (no measurement recorded)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_measurement() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("group");
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = target_a
    }

    fn target_a(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_generates_callable() {
        benches();
    }
}
