//! Offline stand-in for the `criterion` crate (see `crates/shims/README.md`).
//!
//! Implements the harness surface the bench crate uses: `Criterion` with
//! `benchmark_group`/`bench_function`, `Bencher::iter`/`iter_batched`, the
//! `criterion_group!`/`criterion_main!` macros, and `black_box`. Measurement
//! is a plain warm-up + timed-loop mean (no bootstrap statistics, no HTML
//! reports); results print as `name  time: <mean>/iter (<n> iters)`.
//!
//! Every completed benchmark is also collected into a process-global result
//! table. [`finalize`] (called automatically by `criterion_main!`; custom
//! mains call it explicitly) writes the table as JSON to the path named by
//! the `CRITERION_JSON` environment variable and **exits nonzero if any
//! benchmark recorded no measurement** — a benchmark whose closure never
//! called an `iter` method is a harness bug, not a result, and CI must not
//! treat its "(no measurement recorded)" line as a pass.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier to keep the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How [`Bencher::iter_batched`] amortizes setup cost.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs: large batches.
    SmallInput,
    /// Large per-iteration inputs: batches of one.
    LargeInput,
    /// Per-iteration setup, batch size one.
    PerIteration,
}

impl BatchSize {
    fn batch_len(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput | BatchSize::PerIteration => 1,
        }
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher<'a> {
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Filled in by the iter calls: (total elapsed, iterations).
    result: &'a mut Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine` in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let mut iters = 0u64;
        let started = Instant::now();
        let deadline = started + self.measurement_time;
        loop {
            for _ in 0..16 {
                black_box(routine());
            }
            iters += 16;
            if Instant::now() >= deadline {
                break;
            }
        }
        *self.result = Some((started.elapsed(), iters));
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let batch = size.batch_len();
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            for input in inputs {
                black_box(routine(input));
            }
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        let overall_start = Instant::now();
        loop {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let started = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            elapsed += started.elapsed();
            iters += batch as u64;
            if elapsed >= self.measurement_time
                || overall_start.elapsed() >= self.measurement_time * 4
            {
                break;
            }
        }
        *self.result = Some((elapsed, iters));
    }
}

/// The benchmark driver.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark warm-up duration.
    pub fn warm_up_time(mut self, value: Duration) -> Self {
        self.warm_up_time = value;
        self
    }

    /// Sets the per-benchmark measurement duration.
    pub fn measurement_time(mut self, value: Duration) -> Self {
        self.measurement_time = value;
        self
    }

    /// Accepted for API compatibility; this shim sizes by time, not samples.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(self, &name.to_string(), f);
        self
    }
}

/// A named set of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion, &full, f);
        self
    }

    /// Ends the group (exists for API compatibility).
    pub fn finish(self) {}
}

/// One benchmark's collected outcome.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean nanoseconds per iteration; `None` if no measurement was
    /// recorded (the closure never called an `iter` method).
    pub mean_ns: Option<f64>,
    /// Iterations measured.
    pub iters: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Snapshot of every benchmark result collected so far in this process.
pub fn results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap().clone()
}

/// Renders the collected results as a JSON document.
pub fn results_json() -> String {
    let results = RESULTS.lock().unwrap();
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
            match r.mean_ns {
                Some(ns) => format!(
                    "    {{\"name\":\"{name}\",\"mean_ns\":{ns:.1},\"iters\":{}}}",
                    r.iters
                ),
                None => format!("    {{\"name\":\"{name}\",\"missing\":true}}"),
            }
        })
        .collect();
    format!(
        "{{\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    )
}

/// Writes `CRITERION_JSON` (when set) and returns the number of benchmarks
/// that recorded no measurement. Split from [`finalize`] so tests can check
/// the outcome without the process exit.
pub fn finalize_report() -> usize {
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            std::fs::write(&path, results_json()).expect("write CRITERION_JSON");
            println!("benchmark results written to {path}");
        }
    }
    let missing: Vec<String> = RESULTS
        .lock()
        .unwrap()
        .iter()
        .filter(|r| r.mean_ns.is_none())
        .map(|r| r.name.clone())
        .collect();
    for name in &missing {
        eprintln!("error: benchmark `{name}` recorded no measurement");
    }
    missing.len()
}

/// End-of-run hook: emits the JSON report and fails the process if any
/// benchmark recorded no measurement. `criterion_main!` calls this; custom
/// `main`s should call it as their last statement.
pub fn finalize() {
    if finalize_report() > 0 {
        std::process::exit(1);
    }
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(criterion: &Criterion, name: &str, mut f: F) {
    let mut result = None;
    let mut bencher = Bencher {
        measurement_time: criterion.measurement_time,
        warm_up_time: criterion.warm_up_time,
        result: &mut result,
    };
    f(&mut bencher);
    let collected = match result {
        Some((elapsed, iters)) if iters > 0 => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<50} time: {} ({iters} iters)", format_ns(per_iter));
            BenchResult {
                name: name.to_string(),
                mean_ns: Some(per_iter),
                iters,
            }
        }
        _ => {
            println!("{name:<50} time: (no measurement recorded)");
            BenchResult {
                name: name.to_string(),
                mean_ns: None,
                iters: 0,
            }
        }
    };
    RESULTS.lock().unwrap().push(collected);
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.2} s/iter", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
/// Finishes with [`finalize`]: the JSON report is written and a missing
/// measurement fails the run.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_measurement() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("group");
        group.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64, 2, 3],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        targets = target_a
    }

    fn target_a(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_generates_callable() {
        benches();
    }

    #[test]
    fn results_collect_means_and_missing() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        c.bench_function("collected_ok", |b| b.iter(|| 2 + 2));
        // A closure that never calls an iter method records nothing.
        c.bench_function("collected_missing", |_b| {});
        let all = results();
        let ok = all
            .iter()
            .find(|r| r.name == "collected_ok")
            .expect("collected");
        assert!(ok.mean_ns.is_some() && ok.iters > 0);
        let missing = all
            .iter()
            .find(|r| r.name == "collected_missing")
            .expect("collected");
        assert!(missing.mean_ns.is_none());
        assert!(
            finalize_report() >= 1,
            "missing benchmark must fail the run"
        );
        let json = results_json();
        assert!(
            json.contains("\"name\":\"collected_ok\",\"mean_ns\":"),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"collected_missing\",\"missing\":true"),
            "{json}"
        );
    }
}
