//! Offline stand-in for the `rand` crate (see `crates/shims/README.md`).
//!
//! Provides the subset this workspace uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], the
//! [`rngs::SmallRng`]/[`rngs::StdRng`] generators, and
//! [`seq::SliceRandom::shuffle`]. Both generators are xoshiro256++ seeded
//! via splitmix64 — not cryptographic, deterministic per seed, which is all
//! the simulation needs. Streams differ from the real crate's, so exact
//! sampled values (not distributions) differ from upstream-rand builds.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values uniformly samplable from the full bit stream (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $t);
                }
                start + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Maps a uniform `u64` onto `[0, span)` via the widening-multiply trick
/// (Lemire); bias is ≤ 2⁻⁶⁴·span, irrelevant for simulation use.
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix of any seed is
        // never all zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators matching the real crate's module layout.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// A small fast generator (xoshiro256++ here).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "standard" generator (same engine as [`SmallRng`] in this shim,
    /// from a different seed stream).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed ^ 0xA076_1D64_78BD_642F))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0..=3usize);
            assert!(w <= 3);
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn f64_draws_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
