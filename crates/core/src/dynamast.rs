//! The assembled DynaMast system (§V).
//!
//! [`DynaMastSystem`] wires together `m` data sites (each with the in-memory
//! MVCC store and a replication manager subscribed to every peer log), the
//! durable log set, the simulated network, and the site selector. It
//! implements the [`ReplicatedSystem`] client API used by the benchmark
//! harness.
//!
//! The same assembly expresses the **single-master** baseline: seed every
//! partition at the master site and pin the selector
//! ([`SelectorMode::Pinned`]) — update transactions then always route to the
//! master while reads spread over the replicas, exactly the paper's
//! single-master comparator (§VI-A1).

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};

use dynamast_common::codec::encode_to_vec;
use dynamast_common::ids::{PartitionId, SiteId};
use dynamast_common::metrics::{JsonMetric, MetricsRegistry};
use dynamast_common::trace::next_trace_id;
use dynamast_common::{DynaError, FlightRecorder, Result, SystemConfig, VersionVector};
use dynamast_network::{CrashSwitch, EndpointId, Network, TrafficCategory};
use dynamast_replication::checkpoint;
use dynamast_replication::LogSet;
use dynamast_site::data_site::{DataSite, DataSiteConfig, SiteRuntime};
use dynamast_site::messages::{expect_ok, SiteRequest, SiteResponse};
use dynamast_site::proc::{ProcCall, ProcExecutor, ReadMode};
use dynamast_site::system::{
    exec_read_at, exec_update_at, Breakdown, ClientSession, ReplicatedSystem, SystemStats,
    TxnOutcome,
};
use dynamast_storage::Catalog;

use crate::selector::{ProbeHandle, SelectorInit, SelectorMode, SiteSelector};

/// Estimated wire size of a `begin_transaction` routing request (write-set
/// keys plus header); used to charge the client→selector hop.
fn route_request_size(proc: &ProcCall) -> usize {
    32 + proc.write_set.len() * 12
}

/// Per-site checkpoint directory under the durable-log root (siblings of the
/// `site-<i>` segment directories).
fn checkpoint_dir(root: &Path, site: usize) -> PathBuf {
    root.join(format!("ckpt-site-{site}"))
}

/// Every Nth checkpoint per site is a full (self-contained) image; those in
/// between are incremental over the last full, carrying only partitions
/// dirtied since that base. The periodic full rebase bounds the incremental
/// chain recovery has to resolve.
const FULL_CHECKPOINT_PERIOD: u64 = 4;

/// Snapshot-time gauge: resident store bytes per live site plus their total
/// (the partial-replication footprint claim). Holds the system weakly so the
/// registry never keeps a dropped deployment alive.
struct ResidentBytesGauge {
    system: std::sync::Weak<DynaMastSystem>,
}

impl JsonMetric for ResidentBytesGauge {
    fn metric_json(&self) -> String {
        let Some(sys) = self.system.upgrade() else {
            return "{\"total_bytes\":0,\"per_site\":[]}".to_string();
        };
        let per: Vec<u64> = sys
            .sites
            .read()
            .iter()
            .map(|s| s.store().resident_bytes())
            .collect();
        let total: u64 = per.iter().sum();
        let per: Vec<String> = per.iter().map(u64::to_string).collect();
        format!(
            "{{\"total_bytes\":{total},\"per_site\":[{}]}}",
            per.join(",")
        )
    }
}

/// Snapshot-time gauge: replica-count census over every tracked partition —
/// how many sit at the floor, between floor and all sites, and at all sites.
struct ReplicaCensusGauge {
    system: std::sync::Weak<DynaMastSystem>,
}

impl JsonMetric for ReplicaCensusGauge {
    fn metric_json(&self) -> String {
        let Some(sys) = self.system.upgrade() else {
            return "{\"at_floor\":0,\"partial\":0,\"at_all\":0,\"tracked\":0}".to_string();
        };
        let selector = sys.selector.read().clone();
        let rmap = selector.replica_map();
        let mut partitions: Vec<PartitionId> = selector
            .map()
            .placements()
            .into_iter()
            .map(|(p, _)| p)
            .collect();
        partitions.extend(rmap.tracked().into_iter().map(|(p, _)| p));
        partitions.sort_unstable();
        partitions.dedup();
        let (at_floor, partial, at_all) = rmap.census(&partitions);
        format!(
            "{{\"at_floor\":{at_floor},\"partial\":{partial},\"at_all\":{at_all},\"tracked\":{}}}",
            partitions.len()
        )
    }
}

/// (Re-)binds the live selector's counters into the registry. Called at
/// build and again on standby promotion, when a *new* selector instance
/// (with fresh counters) replaces the crashed one.
fn register_selector_metrics(metrics: &MetricsRegistry, selector: &SiteSelector) {
    metrics.register_counter("selector.remaster_ops", Arc::clone(&selector.remaster_ops));
    metrics.register_counter(
        "selector.partitions_moved",
        Arc::clone(&selector.partitions_moved),
    );
    metrics.register_counter("selector.placements", Arc::clone(&selector.placements));
    metrics.register_counter(
        "selector.remaster_rpcs",
        Arc::clone(&selector.remaster_rpcs),
    );
    metrics.register_counter(
        "selector.remaster_rpcs_saved",
        Arc::clone(&selector.remaster_rpcs_saved),
    );
    metrics.register_histogram(
        "selector.remaster_batch_size",
        Arc::clone(&selector.remaster_batch_size),
    );
    metrics.register_counter("replica_adds", Arc::clone(&selector.replica_adds));
    metrics.register_counter("replica_drops", Arc::clone(&selector.replica_drops));
}

/// Pre-creates the audit-plane counters so every metrics snapshot satisfies
/// the pinned schema even when no auditor is armed; [`DynaMastSystem::arm_auditor`]
/// rebinds them to the live sink's counters.
fn register_audit_metrics(metrics: &MetricsRegistry) {
    let _ = metrics.counter("audit_events");
    let _ = metrics.counter("audit_violations");
    let _ = metrics.counter("audit_ring_wraps");
}

/// Construction parameters.
pub struct DynaMastConfig {
    /// Shared system configuration.
    pub system: SystemConfig,
    /// Table catalog.
    pub catalog: Catalog,
    /// Initial mastership assignments (empty = fully unplaced, the paper's
    /// default for DynaMast; the Fig. 5b experiment seeds a manual range
    /// placement; single-master seeds everything at site 0).
    pub initial_placements: Vec<(PartitionId, SiteId)>,
    /// Adaptive strategies or pinned placement.
    pub mode: SelectorMode,
    /// svv probe interval for the read-routing freshness cache.
    pub probe_interval: Duration,
    /// RPC worker threads per site.
    pub rpc_workers: usize,
    /// Deterministic selector kill switch (crash-point injection tests).
    pub crash_switch: Option<Arc<CrashSwitch>>,
}

impl DynaMastConfig {
    /// Adaptive DynaMast with no initial placement.
    pub fn adaptive(system: SystemConfig, catalog: Catalog) -> Self {
        DynaMastConfig {
            system,
            catalog,
            initial_placements: Vec::new(),
            mode: SelectorMode::Adaptive,
            probe_interval: Duration::from_millis(20),
            rpc_workers: 24,
            crash_switch: None,
        }
    }
}

/// A running DynaMast deployment.
pub struct DynaMastSystem {
    name: &'static str,
    config: SystemConfig,
    network: Arc<Network>,
    logs: LogSet,
    /// Live sites; a slot is swapped for a freshly recovered instance on
    /// [`DynaMastSystem::restart_site`].
    sites: RwLock<Vec<Arc<DataSite>>>,
    /// The live selector; swapped for a promoted standby on
    /// [`DynaMastSystem::promote_standby`].
    selector: RwLock<Arc<SiteSelector>>,
    /// Set between [`DynaMastSystem::crash_selector`] and promotion: the
    /// client paths fail fast (retryably) instead of talking to the corpse.
    selector_down: AtomicBool,
    /// Always-on flight recorder; shared with every component through the
    /// network fabric's attach point.
    recorder: Arc<FlightRecorder>,
    /// Unified metrics registry: selector counters, per-architecture
    /// timings, and the fabric's traffic matrix under named handles.
    metrics: Arc<MetricsRegistry>,
    // Retained so a crashed site/selector can be rebuilt.
    catalog: Catalog,
    mode: SelectorMode,
    probe_interval: Duration,
    executor: Arc<dyn ProcExecutor>,
    initial_placements: Vec<(PartitionId, SiteId)>,
    rpc_workers: usize,
    /// The initial bulk load (the recovery checkpoint): log replay starts
    /// from an empty store, so rows that were loaded but never rewritten
    /// must be restored from this image on restart.
    base_image: Mutex<Vec<(dynamast_common::ids::Key, dynamast_common::Row)>>,
    /// Last durable-checkpoint counter issued per site (0 = never
    /// checkpointed); [`DynaMastSystem::checkpoint_site`] increments before
    /// use so counters stay strictly monotone across restarts.
    ckpt_counters: Mutex<Vec<u64>>,
    /// Per-site offsets of the *previous* checkpoint, used as the truncation
    /// floors: floors lag one checkpoint behind so a corrupt newest file can
    /// always fall back to its still-fully-covered predecessor.
    last_ckpt_offsets: Mutex<Vec<Option<Vec<u64>>>>,
    // Drop order matters: stop the probe before the site runtimes.
    probe: Mutex<Option<ProbeHandle>>,
    runtimes: Mutex<Vec<Option<SiteRuntime>>>,
}

impl DynaMastSystem {
    /// Builds and starts a deployment.
    pub fn build(cfg: DynaMastConfig, executor: Arc<dyn ProcExecutor>) -> Arc<Self> {
        Self::build_named("dynamast", cfg, executor)
    }

    /// Builds with an explicit report name (the single-master baseline
    /// reuses this assembly under a different name).
    pub fn build_named(
        name: &'static str,
        cfg: DynaMastConfig,
        executor: Arc<dyn ProcExecutor>,
    ) -> Arc<Self> {
        let m = cfg.system.num_sites;
        let network = Network::new(cfg.system.network, cfg.system.seed);
        // Attach the recorder before any component construction: sites, the
        // selector, and the replication subscribers each cache the handle at
        // build time and would otherwise run untraced.
        let recorder = FlightRecorder::from_env();
        network.set_recorder(Some(Arc::clone(&recorder)));
        // With a configured log directory the redo logs live on disk
        // (segmented, CRC-checked — see `dynamast_replication::segment`).
        // `build` assumes a fresh deployment; restarting an existing one
        // from its disk state is `DynaMastSystem::recover`.
        let logs = match &cfg.system.durability.log_dir {
            Some(root) => LogSet::open_persistent(
                m,
                root,
                cfg.system.durability.segment_bytes,
                cfg.system.durability.fsync,
            )
            .expect("open persistent log set"),
            None => LogSet::new(m),
        };
        let metrics = Arc::new(MetricsRegistry::new());
        let refresh_skipped = metrics.counter("refresh_records_skipped");
        let partial = cfg.system.replication.is_partial();
        let mut sites = Vec::with_capacity(m);
        let mut runtimes = Vec::with_capacity(m);
        for i in 0..m {
            let id = SiteId::new(i);
            let initial: Vec<PartitionId> = cfg
                .initial_placements
                .iter()
                .filter(|(_, s)| *s == id)
                .map(|(p, _)| *p)
                .collect();
            let site = DataSite::new(
                DataSiteConfig {
                    id,
                    system: cfg.system.clone(),
                    replicate: true,
                    // Partial replication: a site starts hosting only its
                    // seeded masterships; `load_row` marks the default
                    // hosts of each populated partition, and everything
                    // else arrives through the AddReplica protocol.
                    hosted: partial.then(|| initial.clone()),
                    initial_partitions: initial,
                    static_owner: None,
                    replicated_tables: Vec::new(),
                    refresh_skipped: Some(Arc::clone(&refresh_skipped)),
                },
                cfg.catalog.clone(),
                logs.clone(),
                Arc::clone(&network),
                Arc::clone(&executor),
            );
            runtimes.push(site.start(cfg.rpc_workers));
            sites.push(site);
        }
        let selector = SiteSelector::with_init(
            cfg.system.clone(),
            cfg.catalog.clone(),
            cfg.mode.clone(),
            Arc::clone(&network),
            SelectorInit {
                crash_switch: cfg.crash_switch,
                ..SelectorInit::default()
            },
        );
        selector.map().seed(cfg.initial_placements.iter().copied());
        // Seeded masters hold their partitions (the master-hosts invariant),
        // over and above the lazy default replica set.
        if partial {
            for (p, s) in &cfg.initial_placements {
                selector.replica_map().add(*p, *s);
            }
        }
        let probe = (cfg.probe_interval > Duration::ZERO)
            .then(|| selector.start_vv_probe(cfg.probe_interval));
        metrics.register_traffic("network", Arc::clone(network.stats()) as _);
        register_selector_metrics(&metrics, &selector);
        register_audit_metrics(&metrics);
        let sys = Arc::new(DynaMastSystem {
            name,
            config: cfg.system,
            network,
            logs,
            sites: RwLock::new(sites),
            selector: RwLock::new(selector),
            selector_down: AtomicBool::new(false),
            recorder,
            metrics,
            catalog: cfg.catalog,
            mode: cfg.mode,
            probe_interval: cfg.probe_interval,
            executor,
            initial_placements: cfg.initial_placements,
            rpc_workers: cfg.rpc_workers,
            base_image: Mutex::new(Vec::new()),
            ckpt_counters: Mutex::new(vec![0; m]),
            last_ckpt_offsets: Mutex::new(vec![None; m]),
            probe: Mutex::new(probe),
            runtimes: Mutex::new(runtimes.into_iter().map(Some).collect()),
        });
        sys.register_replication_gauges();
        sys
    }

    /// Restarts a whole deployment from disk alone: the segmented logs and
    /// per-site checkpoints under the configured log directory (§V-C,
    /// process-kill recovery). Nothing from a prior in-memory instance is
    /// consulted — this is the path a crash-killed process takes on reboot.
    ///
    /// Each site is rebuilt by [`crate::recovery::recover_site_checkpointed`]
    /// (checkpoint image + retained-suffix replay); the placement map is the
    /// initial placement overlaid with the retained remaster history and the
    /// sites' checkpoint-reconstructed ownership claims; the selector's
    /// epoch floor is raised above every retained remaster epoch. Rows
    /// bulk-loaded but never checkpointed are *not* recoverable (the load
    /// image is not logged) — checkpoint once after population.
    pub fn recover(cfg: DynaMastConfig, executor: Arc<dyn ProcExecutor>) -> Result<Arc<Self>> {
        Self::recover_named("dynamast", cfg, executor)
    }

    /// [`DynaMastSystem::recover`] with an explicit report name.
    pub fn recover_named(
        name: &'static str,
        cfg: DynaMastConfig,
        executor: Arc<dyn ProcExecutor>,
    ) -> Result<Arc<Self>> {
        let m = cfg.system.num_sites;
        let root = cfg
            .system
            .durability
            .log_dir
            .clone()
            .ok_or(DynaError::Internal(
                "recover requires a configured durable log directory",
            ))?;
        let network = Network::new(cfg.system.network, cfg.system.seed);
        let recorder = FlightRecorder::from_env();
        network.set_recorder(Some(Arc::clone(&recorder)));
        let logs = LogSet::open_persistent(
            m,
            &root,
            cfg.system.durability.segment_bytes,
            cfg.system.durability.fsync,
        )?;
        let mut per_site = Vec::with_capacity(m);
        let mut counters = Vec::with_capacity(m);
        let mut last_offsets = Vec::with_capacity(m);
        for i in 0..m {
            let ckpt = checkpoint::load_latest(&checkpoint_dir(&root, i))?;
            last_offsets.push(ckpt.as_ref().map(|c| c.offsets.clone()));
            let recovered = crate::recovery::recover_site_checkpointed(
                SiteId::new(i),
                &logs,
                ckpt,
                cfg.catalog.clone(),
                cfg.system.mvcc_versions,
            )?;
            counters.push(recovered.last_checkpoint);
            per_site.push(recovered);
        }
        let claims: Vec<(SiteId, Vec<PartitionId>)> = per_site
            .iter()
            .enumerate()
            .map(|(i, s)| (SiteId::new(i), s.claims.clone()))
            .collect();
        let map = crate::recovery::recover_selector_map_reconciled(
            &logs,
            &cfg.initial_placements,
            &claims,
        )?;
        // The epoch floor must clear every epoch ever issued. Retained logs
        // cover the recent ones; the checkpoints' persisted watermarks cover
        // epochs whose Release/Grant records were truncated away.
        let mut epoch_floor = crate::recovery::max_remaster_epoch(&logs)?;
        for recovered in &per_site {
            epoch_floor = epoch_floor.max(recovered.epoch);
        }

        let metrics = Arc::new(MetricsRegistry::new());
        let refresh_skipped = metrics.counter("refresh_records_skipped");
        let partial = cfg.system.replication.is_partial();
        let mut sites = Vec::with_capacity(m);
        let mut runtimes = Vec::with_capacity(m);
        for (i, recovered) in per_site.into_iter().enumerate() {
            let id = SiteId::new(i);
            // Map-derived (not raw-claims) mastership closes the orphan
            // window: a partition released but never re-granted reverts to
            // the releasing site, exactly as `restart_site` resolves it.
            let mut mastered: Vec<PartitionId> = map
                .iter()
                .filter(|&(_, s)| *s == id)
                .map(|(p, _)| *p)
                .collect();
            mastered.sort();
            let site = DataSite::from_recovered(
                DataSiteConfig {
                    id,
                    system: cfg.system.clone(),
                    replicate: true,
                    initial_partitions: mastered,
                    static_owner: None,
                    replicated_tables: Vec::new(),
                    // The checkpoint's hosted set is the site's post-restart
                    // hosting truth (copies installed after the cut were
                    // never checkpointed). `None` — no checkpoint, full log
                    // replay — means the rebuilt store holds everything.
                    hosted: recovered.hosted.clone(),
                    refresh_skipped: Some(Arc::clone(&refresh_skipped)),
                },
                recovered.state.store,
                recovered.state.svv,
                logs.clone(),
                Arc::clone(&network),
                Arc::clone(&executor),
            );
            site.install_remaster_epoch(recovered.epoch);
            runtimes.push(site.start_with_offsets(cfg.rpc_workers, recovered.state.offsets));
            sites.push(site);
        }

        let selector = SiteSelector::with_init(
            cfg.system.clone(),
            cfg.catalog.clone(),
            cfg.mode.clone(),
            Arc::clone(&network),
            SelectorInit {
                epoch_floor,
                crash_switch: cfg.crash_switch,
                ..SelectorInit::default()
            },
        );
        selector.map().seed(map.iter().map(|(p, s)| (*p, *s)));
        // Seed the freshness cache from the recovered svvs so the first
        // reads route sensibly before the probe's first round trip, and
        // reconcile the replica map against each site's recovered hosted
        // set (masters without a copy heal lazily via NotReplica repair).
        for site in &sites {
            selector.observe_site_vv(site.id(), &site.clock().current());
            if partial {
                if let Some(hosted) = site.hosted_partitions() {
                    selector.replica_map().reconcile_site(site.id(), &hosted);
                }
            }
        }
        let probe = (cfg.probe_interval > Duration::ZERO)
            .then(|| selector.start_vv_probe(cfg.probe_interval));
        metrics.register_traffic("network", Arc::clone(network.stats()) as _);
        register_selector_metrics(&metrics, &selector);
        register_audit_metrics(&metrics);
        let sys = Arc::new(DynaMastSystem {
            name,
            config: cfg.system,
            network,
            logs,
            sites: RwLock::new(sites),
            selector: RwLock::new(selector),
            selector_down: AtomicBool::new(false),
            recorder,
            metrics,
            catalog: cfg.catalog,
            mode: cfg.mode,
            probe_interval: cfg.probe_interval,
            executor,
            initial_placements: cfg.initial_placements,
            rpc_workers: cfg.rpc_workers,
            base_image: Mutex::new(Vec::new()),
            ckpt_counters: Mutex::new(counters),
            last_ckpt_offsets: Mutex::new(last_offsets),
            probe: Mutex::new(probe),
            runtimes: Mutex::new(runtimes.into_iter().map(Some).collect()),
        });
        sys.register_replication_gauges();
        Ok(sys)
    }

    /// Registers the snapshot-time partial-replication gauges (resident
    /// store bytes, replica census) under the metrics `traffic` section.
    /// Weak handles avoid a registry ↔ system reference cycle.
    fn register_replication_gauges(self: &Arc<Self>) {
        self.metrics.register_traffic(
            "store_resident_bytes",
            Arc::new(ResidentBytesGauge {
                system: Arc::downgrade(self),
            }) as _,
        );
        self.metrics.register_traffic(
            "replica_census",
            Arc::new(ReplicaCensusGauge {
                system: Arc::downgrade(self),
            }) as _,
        );
    }

    /// The simulated network (traffic accounting).
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// The always-on flight recorder (causal transaction timelines).
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The unified metrics registry (JSON snapshot export).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Arms the streaming invariant auditor over this system's flight
    /// recorder and re-points the `audit_*` counters in the metrics
    /// registry at the sink's live counters. The sink polls the recorder
    /// rings until [`dynamast_common::audit::AuditSink::finish`] is called.
    pub fn arm_auditor(
        &self,
        config: dynamast_common::audit::AuditConfig,
    ) -> Arc<dynamast_common::audit::AuditSink> {
        let sink = dynamast_common::audit::AuditSink::arm(Arc::clone(&self.recorder), config);
        self.metrics
            .register_counter("audit_events", sink.events_counter());
        self.metrics
            .register_counter("audit_violations", sink.violations_counter());
        self.metrics
            .register_counter("audit_ring_wraps", sink.ring_wraps_counter());
        sink
    }

    /// The durable logs (recovery tests).
    pub fn logs(&self) -> &LogSet {
        &self.logs
    }

    /// Writes one site's durable checkpoint (svv cut + store image +
    /// per-origin offsets + mastered set) and advances the log truncation
    /// floors. Requires a configured durable log directory.
    ///
    /// Floors lag one checkpoint behind: writing checkpoint *N* lowers the
    /// site's floors to checkpoint *N−1*'s offsets, so even if *N* is later
    /// unreadable, recovery's fallback to *N−1* still finds every record it
    /// needs retained. A segment is physically deleted only once **every**
    /// site's floor (and hence every subscriber cursor, which is always
    /// ahead of the site's own checkpoint) has passed it.
    pub fn checkpoint_site(&self, site: usize) -> Result<()> {
        let Some(root) = self.config.durability.log_dir.clone() else {
            return Err(DynaError::Internal(
                "checkpoint requires a configured durable log directory",
            ));
        };
        let (counter, base_counter) = {
            let mut counters = self.ckpt_counters.lock();
            counters[site] += 1;
            let counter = counters[site];
            // Full rebase on the first checkpoint of each period; the rest
            // of the period ships incrementals over that full (only
            // partitions dirtied since its cut).
            let base = if (counter - 1).is_multiple_of(FULL_CHECKPOINT_PERIOD) {
                0
            } else {
                counter - ((counter - 1) % FULL_CHECKPOINT_PERIOD)
            };
            (counter, base)
        };
        let ckpt = self.sites.read()[site].build_checkpoint(counter, base_counter)?;
        checkpoint::write(&checkpoint_dir(&root, site), &ckpt)?;
        let prev = self.last_ckpt_offsets.lock()[site].replace(ckpt.offsets.clone());
        if let Some(prev) = prev {
            for (origin, &floor) in prev.iter().enumerate() {
                self.logs
                    .log(SiteId::new(origin))
                    .record_consumer_floor(site, floor)?;
            }
        }
        Ok(())
    }

    /// Checkpoints every site in turn (the periodic checkpoint driver; also
    /// the "first checkpoint after bulk load" a durable deployment needs
    /// before rows loaded-but-never-rewritten are recoverable).
    pub fn checkpoint_all(&self) -> Result<()> {
        for site in 0..self.config.num_sites {
            self.checkpoint_site(site)?;
        }
        Ok(())
    }

    /// Snapshot of the live data sites. A crashed-then-restarted site is a
    /// *new* [`DataSite`] instance, so callers needing post-restart state
    /// must re-take the snapshot.
    pub fn sites(&self) -> Vec<Arc<DataSite>> {
        self.sites.read().clone()
    }

    /// Crashes a site: its RPC server, replication subscribers, and all
    /// volatile state (prepared 2PC fragments, caches, counters) are gone,
    /// exactly as a process kill. Durable logs survive.
    pub fn crash_site(&self, site: usize) {
        // Drop the runtime outside the lock: ServerHandle joins its worker
        // threads, which may be mid-RPC.
        let runtime = self.runtimes.lock()[site].take();
        drop(runtime);
    }

    /// Restarts a crashed site from the durable logs (§V-C): replays every
    /// log into a fresh store, resumes replication from the replayed
    /// offsets, and re-derives the mastership set from the grant/release
    /// history.
    pub fn restart_site(&self, site: usize) -> Result<()> {
        let id = SiteId::new(site);
        let mut ckpt_epoch = 0;
        // Partial replication: the checkpoint's hosted set is the restarted
        // site's hosting truth. `None` (no checkpoint, or full replication)
        // means full log replay rebuilt a complete copy.
        let mut hosted: Option<Vec<PartitionId>> = None;
        let recovered = if let Some(root) = &self.config.durability.log_dir {
            // Durable deployment: seed from the site's latest checkpoint and
            // replay only the retained suffix (replay-from-zero would read
            // below the truncated base once checkpoints advanced the
            // floors). The site's own reconstructed claims reconcile the
            // retained remaster history exactly as fenced live tables do on
            // selector promotion.
            let ckpt = checkpoint::load_latest(&checkpoint_dir(root, site))?;
            let state = crate::recovery::recover_site_checkpointed(
                id,
                &self.logs,
                ckpt,
                self.catalog.clone(),
                self.config.mvcc_versions,
            )?;
            let map = crate::recovery::recover_selector_map_reconciled(
                &self.logs,
                &self.initial_placements,
                &[(id, state.claims.clone())],
            )?;
            let mut mastered: Vec<PartitionId> = map
                .into_iter()
                .filter(|(_, s)| *s == id)
                .map(|(p, _)| p)
                .collect();
            mastered.sort();
            ckpt_epoch = state.epoch;
            hosted = state.hosted.clone();
            crate::recovery::RecoveredSite {
                state: state.state,
                mastered,
            }
        } else {
            crate::recovery::recover_site(
                id,
                &self.logs,
                self.catalog.clone(),
                self.config.mvcc_versions,
                &self.initial_placements,
            )?
        };
        // Restore the checkpoint beneath the replayed log: version chains
        // are read newest-from-tail, so the base row goes in only where no
        // logged write ever touched the record (any replayed version
        // supersedes the load image).
        {
            let image = self.base_image.lock();
            let hosted_filter: Option<HashSet<PartitionId>> =
                hosted.as_ref().map(|h| h.iter().copied().collect());
            for (key, row) in image.iter() {
                // Under partial replication only hosted partitions get their
                // base rows back — foreign rows would inflate the footprint
                // and leak through later copy installs.
                if let Some(h) = &hosted_filter {
                    if !h.contains(&self.catalog.partition_of(*key)?) {
                        continue;
                    }
                }
                if !recovered.state.store.contains(*key)? {
                    recovered.state.store.install(
                        *key,
                        dynamast_storage::VersionStamp::new(SiteId::new(0), 0),
                        row.clone(),
                    )?;
                }
            }
        }
        let fresh = DataSite::from_recovered(
            DataSiteConfig {
                id,
                system: self.config.clone(),
                replicate: true,
                initial_partitions: recovered.mastered,
                static_owner: None,
                replicated_tables: Vec::new(),
                hosted,
                refresh_skipped: Some(self.metrics.counter("refresh_records_skipped")),
            },
            recovered.state.store,
            recovered.state.svv,
            self.logs.clone(),
            Arc::clone(&self.network),
            Arc::clone(&self.executor),
        );
        // A restarted site lost its volatile fence watermark; re-arm it so
        // a selector deposed before the crash stays fenced out.
        fresh.install_selector_generation(self.selector.read().generation());
        // Likewise the remaster-epoch watermark: checkpoint watermark maxed
        // with whatever the retained logs still show.
        fresh.install_remaster_epoch(
            ckpt_epoch.max(crate::recovery::max_remaster_epoch(&self.logs)?),
        );
        // The rebuilt store was populated by direct log replay, which never
        // passes the audited install hooks. Mark the restart before any
        // live events resume so the audit plane re-baselines this site
        // instead of reading the replay window as missing installs.
        dynamast_common::audit::emit_site_restart(&self.recorder, site as u32);
        // Reconcile the selector's replica map with what actually survived:
        // copies installed after the checkpoint cut are gone (their rows
        // were never checkpointed), so stale map rows must not route reads
        // here. Masters whose copy was lost heal lazily through NotReplica
        // repair on the first touch.
        if self.config.replication.is_partial() {
            if let Some(h) = fresh.hosted_partitions() {
                self.selector.read().replica_map().reconcile_site(id, &h);
            }
        }
        let runtime = fresh.start_with_offsets(self.rpc_workers, recovered.state.offsets);
        self.sites.write()[site] = fresh;
        self.runtimes.lock()[site] = Some(runtime);
        Ok(())
    }

    /// The live site selector. After [`DynaMastSystem::promote_standby`]
    /// this is a *new* [`SiteSelector`] instance; callers holding an old
    /// `Arc` hold the deposed (fenced-out) selector.
    pub fn selector(&self) -> Arc<SiteSelector> {
        self.selector.read().clone()
    }

    /// Kills the selector process: its svv probe stops, and the client
    /// paths fail retryably until a standby is promoted. Returns the dead
    /// selector's handle so tests can exercise the zombie (a deposed
    /// selector whose queued remaster RPCs fire after promotion and must be
    /// fenced out by the data sites).
    pub fn crash_selector(&self) -> Arc<SiteSelector> {
        self.probe.lock().take();
        self.selector_down.store(true, Ordering::Release);
        self.selector.read().clone()
    }

    /// Promotes a warm standby to replace a crashed selector (§V-C).
    ///
    /// The standby:
    /// 1. **Fences** every reachable site at `generation + 1`, collecting
    ///    each site's svv and live ownership table in the same RPC. From
    ///    this instant the sites reject the deposed selector's remaster
    ///    messages with [`DynaError::StaleSelector`], so no repair below can
    ///    race a zombie grant.
    /// 2. **Rebuilds the partition map** from the durable grant/release
    ///    logs reconciled against the live tables
    ///    ([`crate::recovery::recover_selector_map_reconciled`]).
    /// 3. **Repairs half-completed remasters**: a partition whose
    ///    log-derived owner is live but does not claim it in its table was
    ///    caught in the release-without-grant window — the standby re-grants
    ///    it to that owner at a fresh epoch (mirroring the live selector's
    ///    back-grant self-healing), with `rel_vv` = the owner's own fenced
    ///    svv so the dominance wait is trivially satisfied.
    /// 4. **Rebuilds the freshness cache** from the fenced svvs and raises
    ///    the new selector's session floor to their element-wise max, so a
    ///    client whose session vector died with the old selector still
    ///    reads its own writes (SSSI holds across failover).
    ///
    /// Epochs are allocated strictly above anything in the logs so the new
    /// selector never collides with its predecessor in the sites'
    /// per-`(partition, epoch)` idempotency caches.
    pub fn promote_standby(&self) -> Result<()> {
        let old_generation = self.selector.read().generation();
        let new_generation = old_generation + 1;
        let retry = self.network.config().retry;
        let fence = Bytes::from(encode_to_vec(&SiteRequest::FenceSelector {
            generation: new_generation,
        }));

        // 1. Fence + snapshot. A site that cannot be reached is treated as
        // crashed: it cannot accept zombie grants either, and it re-learns
        // the generation on restart (`restart_site`).
        let mut fenced: Vec<(SiteId, VersionVector, Vec<PartitionId>)> = Vec::new();
        for i in 0..self.config.num_sites {
            let reply = self.network.rpc_with_retry(
                &retry,
                None,
                EndpointId::Site(i as u32),
                TrafficCategory::Remaster,
                fence.clone(),
            );
            match reply.and_then(|bytes| expect_ok(&bytes)) {
                Ok(SiteResponse::Fenced { svv, mastered }) => {
                    fenced.push((SiteId::new(i), svv, mastered));
                }
                Ok(_) => return Err(DynaError::Internal("unexpected fence response")),
                Err(DynaError::Timeout { .. } | DynaError::Network(_)) => continue,
                Err(e) => return Err(e),
            }
        }

        // 2. Log-derived map, reconciled against the live tables.
        let live_tables: Vec<(SiteId, Vec<PartitionId>)> = fenced
            .iter()
            .map(|(site, _, mastered)| (*site, mastered.clone()))
            .collect();
        let map = crate::recovery::recover_selector_map_reconciled(
            &self.logs,
            &self.initial_placements,
            &live_tables,
        )?;
        let mut next_epoch = crate::recovery::max_remaster_epoch(&self.logs)?;
        // Logs may have been truncated past old Release/Grant records; the
        // checkpoints persist each site's epoch watermark, so max them in
        // before allocating repair epochs (epoch-reissue-after-truncation
        // would collide with the sites' `(partition, epoch)` idempotency
        // ledgers and misattribute audit-plane events).
        if let Some(root) = &self.config.durability.log_dir {
            for i in 0..self.config.num_sites {
                if let Some(ckpt) = checkpoint::load_latest(&checkpoint_dir(root, i))? {
                    next_epoch = next_epoch.max(ckpt.epoch);
                }
            }
        }

        // 3. Repair release-without-grant windows: the map names a live
        // owner whose table does not claim the partition. Sorted so the
        // epoch assignment is deterministic.
        let claims: HashMap<SiteId, HashSet<PartitionId>> = fenced
            .iter()
            .map(|(site, _, mastered)| (*site, mastered.iter().copied().collect()))
            .collect();
        let mut repairs: Vec<(PartitionId, SiteId)> = map
            .iter()
            .filter(|(p, owner)| claims.get(owner).is_some_and(|owned| !owned.contains(p)))
            .map(|(p, owner)| (*p, *owner))
            .collect();
        repairs.sort_by_key(|(p, _)| *p);
        for (partition, owner) in repairs {
            next_epoch += 1;
            let rel_vv = fenced
                .iter()
                .find(|(site, _, _)| *site == owner)
                .map(|(_, svv, _)| svv.clone())
                .expect("owner came from the fenced set");
            let grant = SiteRequest::Grant {
                partition,
                epoch: next_epoch,
                rel_vv,
                generation: new_generation,
            };
            let reply = self.network.rpc_with_retry(
                &retry,
                None,
                EndpointId::Site(owner.raw()),
                TrafficCategory::Remaster,
                Bytes::from(encode_to_vec(&grant)),
            )?;
            match expect_ok(&reply)? {
                SiteResponse::Granted { .. } => {}
                _ => return Err(DynaError::Internal("unexpected repair-grant response")),
            }
        }

        // 4. Conservative session floor: element-wise max of the fenced
        // svvs. Every version any client could have observed through the
        // old selector is ≤ some site's svv, so routing every post-failover
        // transaction at or above this floor preserves SSSI.
        let mut floor = VersionVector::zero(self.config.num_sites);
        for (_, svv, _) in &fenced {
            floor.merge_max(svv);
        }
        let standby = SiteSelector::with_init(
            self.config.clone(),
            self.catalog.clone(),
            self.mode.clone(),
            Arc::clone(&self.network),
            SelectorInit {
                generation: new_generation,
                epoch_floor: next_epoch,
                session_floor: Some(floor),
                crash_switch: None,
                // The replica map describes durable site state (copies
                // survive a selector crash); the standby inherits it rather
                // than rebuilding from the lazy defaults.
                replica_map: Some(Arc::clone(self.selector.read().replica_map())),
            },
        );
        standby.map().seed(map);
        for (site, svv, _) in &fenced {
            standby.observe_site_vv(*site, svv);
        }

        let probe = (self.probe_interval > Duration::ZERO)
            .then(|| standby.start_vv_probe(self.probe_interval));
        register_selector_metrics(&self.metrics, &standby);
        *self.selector.write() = standby;
        *self.probe.lock() = probe;
        self.selector_down.store(false, Ordering::Release);
        Ok(())
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Loads one row into every replica (initial database population; the
    /// paper pre-loads OLTPBench data before measuring). Under partial
    /// replication the row goes only to the partition's default hosts (plus
    /// its seeded master, if any), which also marks those partitions hosted.
    pub fn load_row(
        &self,
        key: dynamast_common::ids::Key,
        row: dynamast_common::Row,
    ) -> Result<()> {
        let sites = self.sites.read();
        if self.config.replication.is_partial() {
            let partition = self.catalog.partition_of(key)?;
            let floor = self
                .config
                .replication
                .effective_floor(self.config.num_sites);
            let mut hosts = crate::replica_map::ReplicaMap::default_hosts(
                self.config.num_sites,
                floor,
                partition,
            );
            if let Some((_, seeded)) = self
                .initial_placements
                .iter()
                .find(|(p, _)| *p == partition)
            {
                if !hosts.contains(seeded) {
                    hosts.push(*seeded);
                }
            }
            let selector = self.selector.read();
            for s in hosts {
                let site = &sites[s.as_usize()];
                site.host_partition(partition);
                site.load_row(key, row.clone())?;
                selector.replica_map().add(partition, s);
            }
        } else {
            for site in sites.iter() {
                site.load_row(key, row.clone())?;
            }
        }
        drop(sites);
        self.base_image.lock().push((key, row));
        Ok(())
    }

    /// Every partition a call's declared read set touches (point reads and
    /// range spans). Mirrors the site-side hosting admission check so read
    /// routing under partial replication targets a site that can actually
    /// serve the snapshot.
    fn read_partitions(&self, proc: &ProcCall) -> Vec<PartitionId> {
        if !self.config.replication.is_partial() {
            return Vec::new();
        }
        let mut parts = Vec::new();
        for key in proc.read_keys.iter().chain(&proc.write_set) {
            if let Ok(p) = self.catalog.partition_of(*key) {
                parts.push(p);
            }
        }
        for range in &proc.read_ranges {
            if range.end <= range.start {
                continue;
            }
            if let Ok(schema) = self.catalog.table(range.table) {
                let first = range.start / schema.partition_size;
                let last = (range.end - 1) / schema.partition_size;
                for index in first..=last {
                    parts.push(dynamast_common::ids::partition_id(range.table, index));
                }
            }
        }
        parts.sort_unstable();
        parts.dedup();
        parts
    }

    /// Stops the probe and site runtimes (also happens on drop).
    pub fn shutdown(&self) {
        self.probe.lock().take();
        // Drain under the lock, join worker threads outside it.
        let drained: Vec<_> = self.runtimes.lock().iter_mut().map(Option::take).collect();
        drop(drained);
    }
}

impl ReplicatedSystem for DynaMastSystem {
    fn name(&self) -> &'static str {
        self.name
    }

    fn update(&self, session: &mut ClientSession, proc: &ProcCall) -> Result<TxnOutcome> {
        let t0 = Instant::now();
        // One trace id for the whole client transaction: resubmissions show
        // up as additional Route events on the same timeline.
        let txn_id = next_trace_id();
        // Retry loop: between routing and execution another transaction may
        // remaster a partition away; the site rejects with NotMaster and the
        // client re-routes (same resubmission rule as Appendix I).
        let mut last_err = DynaError::Internal("unreachable: no routing attempts");
        for attempt in 0..16u32 {
            // Back off between resubmissions: under an instant network a hot
            // partition's mastership can ping-pong faster than the re-route /
            // re-exec cycle, and lockstep retries lose that race repeatedly.
            // A real resubmitting client pays at least a client↔selector RTT
            // here anyway.
            if attempt > 0 {
                std::thread::sleep(Duration::from_micros(u64::from(attempt) * 50));
            }
            // Between selector crash and standby promotion there is no one
            // to route; fail the attempt retryably so a concurrent
            // promotion un-wedges the resubmission loop.
            if self.selector_down.load(Ordering::Acquire) {
                last_err = DynaError::Network("selector unavailable (awaiting promotion)");
                continue;
            }
            // Re-read per attempt: a promotion may have swapped the
            // selector since the last one.
            let selector = self.selector.read().clone();
            // begin_transaction request to the selector (charged hop).
            self.network
                .charge_one_way(TrafficCategory::ClientSelector, route_request_size(proc));
            // Transport faults during routing or remastering (a crashed
            // master, exhausted retries, a mid-protocol selector crash) are
            // retryable: the next attempt routes around the unreachable
            // site — or through the promoted standby. StaleSelector means
            // this routing raced a promotion; the retry picks up the new
            // selector.
            let decision = match selector.route_update_traced(
                txn_id,
                session.id,
                &session.cvv,
                &proc.write_set,
            ) {
                Ok(d) => d,
                Err(
                    err @ (DynaError::Timeout { .. }
                    | DynaError::Network(_)
                    | DynaError::StaleSelector { .. }),
                ) => {
                    last_err = err;
                    continue;
                }
                Err(DynaError::NotReplica { site, partition }) => {
                    // A grant landed on a site whose copy was dropped (or
                    // lost across a restart) after the selector's replica
                    // map said otherwise. Reinstall the copy and re-route.
                    let _ = selector.repair_replica(site, partition);
                    last_err = DynaError::NotReplica { site, partition };
                    continue;
                }
                Err(other) => return Err(other),
            };
            // Routing response back to the client.
            self.network.charge_one_way(
                TrafficCategory::ClientSelector,
                16 + self.config.num_sites * 8,
            );
            match exec_update_at(
                &self.network,
                decision.site,
                txn_id,
                session,
                &decision.min_vv,
                proc,
                true,
            ) {
                Ok((result, timings)) => {
                    return Ok(TxnOutcome {
                        result,
                        breakdown: Breakdown::from_parts(
                            decision.lookup,
                            decision.routing,
                            timings,
                            t0.elapsed(),
                        ),
                    });
                }
                Err(
                    err @ (DynaError::NotMaster { .. }
                    | DynaError::Timeout { .. }
                    | DynaError::Network(_)),
                ) => {
                    // NotMaster: mastership moved between routing and
                    // execution — re-route. Timeout/Network: the routed
                    // site died mid-transaction; execution is at-least-once
                    // under faults (see `dynamast_site::system`), so
                    // resubmission is the client's recovery path here too.
                    last_err = err;
                    continue;
                }
                Err(DynaError::NotReplica { site, partition }) => {
                    // The site is master of the write set but lost this
                    // read-set copy (restart from a checkpoint that did not
                    // host it). Reinstall and resubmit.
                    let _ = selector.repair_replica(site, partition);
                    last_err = DynaError::NotReplica { site, partition };
                    continue;
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err)
    }

    fn read(&self, session: &mut ClientSession, proc: &ProcCall) -> Result<TxnOutcome> {
        let t0 = Instant::now();
        let txn_id = next_trace_id();
        let mut last_err = DynaError::Internal("unreachable: no read attempts");
        // Partitions the read touches; under partial replication the
        // selector only considers sites hosting all of them.
        let read_parts = self.read_partitions(proc);
        // A site crashing under the read is recoverable: re-route (the
        // selector skips unreachable sites) and run on a replica. Reads are
        // idempotent, so the resubmission needs no further care.
        for attempt in 0..4u32 {
            if attempt > 0 {
                std::thread::sleep(Duration::from_micros(u64::from(attempt) * 50));
            }
            if self.selector_down.load(Ordering::Acquire) {
                last_err = DynaError::Network("selector unavailable (awaiting promotion)");
                continue;
            }
            let selector = self.selector.read().clone();
            self.network
                .charge_one_way(TrafficCategory::ClientSelector, 32);
            let (site, lookup) = {
                let start = Instant::now();
                let site = selector.route_read_partitions_traced(txn_id, &session.cvv, &read_parts);
                (site, start.elapsed())
            };
            self.network
                .charge_one_way(TrafficCategory::ClientSelector, 16);
            match exec_read_at(
                &self.network,
                site,
                txn_id,
                session,
                proc,
                ReadMode::Snapshot,
            ) {
                Ok((result, timings)) => {
                    return Ok(TxnOutcome {
                        result,
                        breakdown: Breakdown::from_parts(
                            lookup,
                            Duration::ZERO,
                            timings,
                            t0.elapsed(),
                        ),
                    });
                }
                Err(err @ (DynaError::Timeout { .. } | DynaError::Network(_))) => {
                    last_err = err;
                }
                Err(DynaError::NotReplica { site, partition }) => {
                    // The replica map routed us to a site that no longer
                    // holds a touched partition (dropped or lost across a
                    // restart). Repair the copy and retry; the next route
                    // can also fall back to another replica.
                    let _ = selector.repair_replica(site, partition);
                    last_err = DynaError::NotReplica { site, partition };
                }
                Err(other) => return Err(other),
            }
        }
        Err(last_err)
    }

    fn stats(&self) -> SystemStats {
        let sites = self.sites.read();
        let selector = self.selector.read();
        SystemStats {
            committed_updates: sites.iter().map(|s| s.commits.get()).sum(),
            aborts: sites.iter().map(|s| s.aborts.get()).sum(),
            remaster_ops: selector.remaster_ops.get(),
            partitions_moved: selector.partitions_moved.get(),
            masters_per_site: selector.map().masters_per_site(self.config.num_sites),
            updates_routed_per_site: selector.routed_per_site(),
            resident_bytes: sites.iter().map(|s| s.store().resident_bytes()).sum(),
        }
    }
}

impl Drop for DynaMastSystem {
    fn drop(&mut self) {
        self.shutdown();
    }
}
