//! Lock-free site-freshness cache (§IV-B).
//!
//! The selector keeps an estimate of every site's version vector to route
//! reads to sufficiently fresh replicas and to feed the strategy model's
//! delay feature (Eq. 5). These estimates are written on every release,
//! grant, and probe response, and read on every routed transaction — a hot
//! enough path that a `Mutex<Vec<VersionVector>>` serializes routers (see
//! DESIGN.md, "Selector concurrency model").
//!
//! [`FreshnessCache`] instead stores an `m × m` matrix of atomic
//! per-dimension counters. Version vectors are monotone — sites only
//! advance — so `fetch_max` per dimension is a correct merge without any
//! lock, and dominance checks read each dimension with `Acquire` loads.
//!
//! A multi-dimension read is not a single atomic snapshot: concurrent
//! observers may interleave between dimensions, so a loaded vector can mix
//! two observations. Both are (under-)estimates of the true site vv, and
//! their per-dimension max is too — every mixed read is therefore some
//! valid under-estimate, which is all SSSI routing needs: a stale cache can
//! only divert a read to a site that then waits for freshness, never
//! violate the session guarantee.

use std::sync::atomic::{AtomicU64, Ordering};

use dynamast_common::ids::SiteId;
use dynamast_common::VersionVector;

/// Per-site version-vector estimates behind per-dimension atomics.
pub struct FreshnessCache {
    /// Number of sites == number of vector dimensions.
    sites: usize,
    /// Row-major `sites × sites`: entry `s * sites + d` is dimension `d` of
    /// site `s`'s estimated vv.
    entries: Vec<AtomicU64>,
}

impl FreshnessCache {
    /// A cache of `sites` all-zero estimates.
    pub fn new(sites: usize) -> Self {
        FreshnessCache {
            sites,
            entries: (0..sites * sites).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn row(&self, site: SiteId) -> &[AtomicU64] {
        let s = site.as_usize();
        &self.entries[s * self.sites..(s + 1) * self.sites]
    }

    /// Merges an observation of `site`'s vv (element-wise max, lock-free).
    pub fn observe(&self, site: SiteId, vv: &VersionVector) {
        debug_assert_eq!(vv.dims(), self.sites);
        for (entry, &version) in self.row(site).iter().zip(vv.as_slice()) {
            // `fetch_max` keeps each dimension monotone under races.
            entry.fetch_max(version, Ordering::Release);
        }
    }

    /// Whether `site`'s estimate dominates (≥ in every dimension) `cvv`.
    pub fn dominates(&self, site: SiteId, cvv: &VersionVector) -> bool {
        debug_assert_eq!(cvv.dims(), self.sites);
        self.row(site)
            .iter()
            .zip(cvv.as_slice())
            .all(|(entry, &required)| entry.load(Ordering::Acquire) >= required)
    }

    /// Materializes one site's estimated vv.
    pub fn site_vv(&self, site: SiteId) -> VersionVector {
        VersionVector::from_counts(
            self.row(site)
                .iter()
                .map(|e| e.load(Ordering::Acquire))
                .collect(),
        )
    }

    /// Materializes every site's estimated vv (for strategy scoring).
    pub fn all(&self) -> Vec<VersionVector> {
        (0..self.sites)
            .map(|s| self.site_vv(SiteId::new(s)))
            .collect()
    }

    /// Number of sites tracked.
    pub fn sites(&self) -> usize {
        self.sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vv(counts: &[u64]) -> VersionVector {
        VersionVector::from_counts(counts.to_vec())
    }

    #[test]
    fn observe_merges_element_wise_max() {
        let cache = FreshnessCache::new(3);
        cache.observe(SiteId::new(1), &vv(&[5, 0, 2]));
        cache.observe(SiteId::new(1), &vv(&[3, 4, 1]));
        assert_eq!(cache.site_vv(SiteId::new(1)), vv(&[5, 4, 2]));
        // Other sites untouched.
        assert_eq!(cache.site_vv(SiteId::new(0)), vv(&[0, 0, 0]));
    }

    #[test]
    fn dominance_matches_materialized_vector() {
        let cache = FreshnessCache::new(2);
        cache.observe(SiteId::new(0), &vv(&[3, 7]));
        assert!(cache.dominates(SiteId::new(0), &vv(&[3, 7])));
        assert!(cache.dominates(SiteId::new(0), &vv(&[0, 0])));
        assert!(!cache.dominates(SiteId::new(0), &vv(&[4, 0])));
        assert!(!cache.dominates(SiteId::new(1), &vv(&[0, 1])));
    }

    #[test]
    fn concurrent_observers_never_regress() {
        use std::sync::Arc;
        let cache = Arc::new(FreshnessCache::new(4));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        let mut counts = vec![0; 4];
                        counts[(t % 4) as usize] = i;
                        counts[((t + 1) % 4) as usize] = i / 2;
                        cache.observe(SiteId::new(0), &vv(&counts));
                    }
                });
            }
        });
        // Every dimension ends at the max any thread wrote to it.
        let merged = cache.site_vv(SiteId::new(0));
        assert_eq!(merged, vv(&[999, 999, 999, 999]));
    }
}
