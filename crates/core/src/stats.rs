//! Workload access statistics (§V-B).
//!
//! The selector "builds and maintains statistics such as data item access
//! frequency and data item co-access likelihood [...] by adaptively sampling
//! transaction write sets and recording sampled transactions, and each
//! transaction executed within a time window Δt of it — submitted by the
//! same client — in a transaction history queue. [...] DynaMast expires
//! samples from the transaction history queue by decrementing any associated
//! access counts to adapt to changing workloads."
//!
//! [`AccessStats`] implements exactly that: per-partition write counts (and
//! the per-site aggregate the balance feature needs), intra-transaction
//! co-access counts, inter-transaction co-access counts within a
//! configurable Δt window per client, and a bounded history queue whose
//! evicted samples decrement every count they contributed.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use dynamast_common::ids::{ClientId, PartitionId, SiteId};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Co-access partners of one partition with conditional probabilities,
/// produced for the strategy model.
#[derive(Clone, Debug, Default)]
pub struct PartnerProbs {
    /// `(partner, P(partner | partition))` pairs.
    pub partners: Vec<(PartitionId, f64)>,
}

/// Scoring snapshot for one write-set partition.
#[derive(Clone, Debug, Default)]
pub struct PartitionSnapshot {
    /// Write-frequency count of the partition.
    pub load: f64,
    /// Intra-transaction co-access probabilities (Eq. 6's `P(d2|d1)`).
    pub intra: PartnerProbs,
    /// Inter-transaction co-access probabilities (Eq. 7's
    /// `P(d2|d1; T ≤ Δt)`).
    pub inter: PartnerProbs,
}

#[derive(Default)]
struct PartStats {
    count: u64,
    master: Option<SiteId>,
    intra: HashMap<PartitionId, u64>,
    inter: HashMap<PartitionId, u64>,
}

struct Sample {
    partitions: Vec<PartitionId>,
    intra_pairs: Vec<(PartitionId, PartitionId)>,
    inter_pairs: Vec<(PartitionId, PartitionId)>,
}

struct StatsInner {
    rng: SmallRng,
    parts: HashMap<PartitionId, PartStats>,
    site_load: Vec<u64>,
    history: VecDeque<Sample>,
    recent: HashMap<ClientId, VecDeque<(Instant, Vec<PartitionId>)>>,
}

/// Configuration for [`AccessStats`].
#[derive(Clone, Copy, Debug)]
pub struct StatsConfig {
    /// Fraction of write sets sampled.
    pub sample_rate: f64,
    /// History queue capacity; overflow expires the oldest sample.
    pub history_capacity: usize,
    /// Δt window for inter-transaction correlation.
    pub inter_window: Duration,
    /// Maximum distinct co-access partners tracked per partition.
    pub max_partners: usize,
}

/// The selector's statistics tracker.
pub struct AccessStats {
    config: StatsConfig,
    inner: Mutex<StatsInner>,
}

impl AccessStats {
    /// Creates a tracker.
    pub fn new(config: StatsConfig, num_sites: usize, seed: u64) -> Self {
        AccessStats {
            config,
            inner: Mutex::new(StatsInner {
                rng: SmallRng::seed_from_u64(seed),
                parts: HashMap::new(),
                site_load: vec![0; num_sites],
                history: VecDeque::with_capacity(config.history_capacity + 1),
                recent: HashMap::new(),
            }),
        }
    }

    /// Records one routed write set. `masters[i]` is the current master of
    /// `partitions[i]` (the selector's view at routing time).
    pub fn record_write_set(
        &self,
        client: ClientId,
        now: Instant,
        partitions: &[PartitionId],
        masters: &[Option<SiteId>],
    ) {
        debug_assert_eq!(partitions.len(), masters.len());
        let mut inner = self.inner.lock();
        let sampled =
            self.config.sample_rate >= 1.0 || inner.rng.gen_bool(self.config.sample_rate);
        if !sampled {
            return;
        }

        // Access counts and per-site load aggregate.
        for (p, master) in partitions.iter().zip(masters) {
            let stats = inner.parts.entry(*p).or_default();
            stats.count += 1;
            stats.master = *master;
            if let Some(m) = master {
                inner.site_load[m.as_usize()] += 1;
            }
        }

        // Intra-transaction pairs (both directions).
        let mut intra_pairs = Vec::new();
        for &p1 in partitions {
            for &p2 in partitions {
                if p1 == p2 {
                    continue;
                }
                if inner.bump_partner(p1, p2, PartnerKind::Intra, self.config.max_partners) {
                    intra_pairs.push((p1, p2));
                }
            }
        }

        // Inter-transaction pairs: previous write sets of the same client
        // within Δt predict this one.
        let window = self.config.inter_window;
        let previous: Vec<PartitionId> = inner
            .recent
            .get(&client)
            .map(|sets| {
                sets.iter()
                    .filter(|(t, _)| now.duration_since(*t) <= window)
                    .flat_map(|(_, set)| set.iter().copied())
                    .collect()
            })
            .unwrap_or_default();
        let mut inter_pairs = Vec::new();
        for &p_old in &previous {
            for &p_new in partitions {
                if p_old == p_new {
                    continue;
                }
                if inner.bump_partner(p_old, p_new, PartnerKind::Inter, self.config.max_partners) {
                    inter_pairs.push((p_old, p_new));
                }
            }
        }

        // Update the client's recent history, pruning expired sets.
        let recent = inner.recent.entry(client).or_default();
        recent.push_back((now, partitions.to_vec()));
        while let Some((t, _)) = recent.front() {
            if now.duration_since(*t) > window && recent.len() > 1 {
                recent.pop_front();
            } else {
                break;
            }
        }

        // History queue with expiry.
        inner.history.push_back(Sample {
            partitions: partitions.to_vec(),
            intra_pairs,
            inter_pairs,
        });
        if inner.history.len() > self.config.history_capacity {
            if let Some(old) = inner.history.pop_front() {
                inner.expire(&old);
            }
        }
    }

    /// The selector's view of a partition's master must move when the
    /// partition is remastered, so the per-site load aggregate stays
    /// consistent.
    pub fn on_remaster(&self, partition: PartitionId, to: SiteId) {
        let mut inner = self.inner.lock();
        let Some(stats) = inner.parts.get_mut(&partition) else {
            return;
        };
        let count = stats.count;
        let old = stats.master;
        stats.master = Some(to);
        if let Some(m) = old {
            inner.site_load[m.as_usize()] = inner.site_load[m.as_usize()].saturating_sub(count);
        }
        inner.site_load[to.as_usize()] += count;
    }

    /// Scoring snapshot for the write-set partitions plus the per-site load
    /// aggregate.
    pub fn snapshot(&self, partitions: &[PartitionId]) -> (Vec<PartitionSnapshot>, Vec<f64>) {
        let inner = self.inner.lock();
        let snaps = partitions
            .iter()
            .map(|p| match inner.parts.get(p) {
                None => PartitionSnapshot::default(),
                Some(stats) => PartitionSnapshot {
                    load: stats.count as f64,
                    intra: probs(&stats.intra, stats.count),
                    inter: probs(&stats.inter, stats.count),
                },
            })
            .collect();
        let load = inner.site_load.iter().map(|&c| c as f64).collect();
        (snaps, load)
    }

    /// The tracked write count of one partition (tests/diagnostics).
    pub fn partition_count(&self, partition: PartitionId) -> u64 {
        self.inner
            .lock()
            .parts
            .get(&partition)
            .map_or(0, |s| s.count)
    }

    /// Current history-queue length (tests/diagnostics).
    pub fn history_len(&self) -> usize {
        self.inner.lock().history.len()
    }
}

fn probs(counts: &HashMap<PartitionId, u64>, total: u64) -> PartnerProbs {
    if total == 0 {
        return PartnerProbs::default();
    }
    PartnerProbs {
        partners: counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(p, &c)| (*p, c as f64 / total as f64))
            .collect(),
    }
}

enum PartnerKind {
    Intra,
    Inter,
}

impl StatsInner {
    /// Increments a co-access partner count; returns whether it was counted
    /// (partner-table capacity permitting).
    fn bump_partner(
        &mut self,
        from: PartitionId,
        to: PartitionId,
        kind: PartnerKind,
        max_partners: usize,
    ) -> bool {
        let stats = self.parts.entry(from).or_default();
        let table = match kind {
            PartnerKind::Intra => &mut stats.intra,
            PartnerKind::Inter => &mut stats.inter,
        };
        if table.len() >= max_partners && !table.contains_key(&to) {
            return false;
        }
        *table.entry(to).or_insert(0) += 1;
        true
    }

    fn expire(&mut self, sample: &Sample) {
        for p in &sample.partitions {
            if let Some(stats) = self.parts.get_mut(p) {
                stats.count = stats.count.saturating_sub(1);
                if let Some(m) = stats.master {
                    self.site_load[m.as_usize()] = self.site_load[m.as_usize()].saturating_sub(1);
                }
            }
        }
        for (from, to) in sample.intra_pairs.iter() {
            if let Some(stats) = self.parts.get_mut(from) {
                if let Some(c) = stats.intra.get_mut(to) {
                    *c = c.saturating_sub(1);
                    if *c == 0 {
                        stats.intra.remove(to);
                    }
                }
            }
        }
        for (from, to) in sample.inter_pairs.iter() {
            if let Some(stats) = self.parts.get_mut(from) {
                if let Some(c) = stats.inter.get_mut(to) {
                    *c = c.saturating_sub(1);
                    if *c == 0 {
                        stats.inter.remove(to);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> StatsConfig {
        StatsConfig {
            sample_rate: 1.0,
            history_capacity: 100,
            inter_window: Duration::from_millis(100),
            max_partners: 8,
        }
    }

    fn pid(i: usize) -> PartitionId {
        PartitionId::new(i)
    }

    fn client(i: usize) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn write_counts_accumulate_per_partition_and_site() {
        let stats = AccessStats::new(config(), 2, 1);
        let s0 = Some(SiteId::new(0));
        let now = Instant::now();
        stats.record_write_set(client(1), now, &[pid(1), pid(2)], &[s0, s0]);
        stats.record_write_set(client(1), now, &[pid(1)], &[s0]);
        assert_eq!(stats.partition_count(pid(1)), 2);
        let (_, load) = stats.snapshot(&[pid(1)]);
        assert_eq!(load, vec![3.0, 0.0]);
    }

    #[test]
    fn intra_coaccess_probabilities_are_conditional() {
        let stats = AccessStats::new(config(), 2, 1);
        let m = Some(SiteId::new(0));
        let now = Instant::now();
        stats.record_write_set(client(1), now, &[pid(1), pid(2)], &[m, m]);
        stats.record_write_set(client(1), now, &[pid(1)], &[m]);
        let (snaps, _) = stats.snapshot(&[pid(1)]);
        // pid(2) co-accessed in 1 of pid(1)'s 2 accesses.
        let partners = &snaps[0].intra.partners;
        assert_eq!(partners.len(), 1);
        assert_eq!(partners[0], (pid(2), 0.5));
    }

    #[test]
    fn inter_coaccess_links_consecutive_client_txns_within_window() {
        let stats = AccessStats::new(config(), 2, 1);
        let m = Some(SiteId::new(0));
        let t0 = Instant::now();
        stats.record_write_set(client(1), t0, &[pid(1)], &[m]);
        stats.record_write_set(client(1), t0 + Duration::from_millis(10), &[pid(2)], &[m]);
        let (snaps, _) = stats.snapshot(&[pid(1)]);
        assert_eq!(snaps[0].inter.partners, vec![(pid(2), 1.0)]);
        // A different client's transaction does not link.
        stats.record_write_set(client(2), t0 + Duration::from_millis(20), &[pid(3)], &[m]);
        let (snaps, _) = stats.snapshot(&[pid(2)]);
        assert!(snaps[0].inter.partners.is_empty());
    }

    #[test]
    fn inter_coaccess_ignores_txns_outside_window() {
        let stats = AccessStats::new(config(), 2, 1);
        let m = Some(SiteId::new(0));
        let t0 = Instant::now();
        stats.record_write_set(client(1), t0, &[pid(1)], &[m]);
        stats.record_write_set(client(1), t0 + Duration::from_secs(10), &[pid(2)], &[m]);
        let (snaps, _) = stats.snapshot(&[pid(1)]);
        assert!(snaps[0].inter.partners.is_empty());
    }

    #[test]
    fn history_expiry_decrements_counts() {
        let mut cfg = config();
        cfg.history_capacity = 2;
        let stats = AccessStats::new(cfg, 2, 1);
        let m = Some(SiteId::new(0));
        let now = Instant::now();
        for _ in 0..5 {
            stats.record_write_set(client(1), now, &[pid(1), pid(2)], &[m, m]);
        }
        assert_eq!(stats.history_len(), 2);
        // Only two samples retained → counts reflect those two.
        assert_eq!(stats.partition_count(pid(1)), 2);
        let (_, load) = stats.snapshot(&[]);
        assert_eq!(load[0], 4.0);
    }

    #[test]
    fn remaster_moves_load_between_sites() {
        let stats = AccessStats::new(config(), 2, 1);
        let m0 = Some(SiteId::new(0));
        let now = Instant::now();
        stats.record_write_set(client(1), now, &[pid(1)], &[m0]);
        stats.record_write_set(client(1), now, &[pid(1)], &[m0]);
        stats.on_remaster(pid(1), SiteId::new(1));
        let (_, load) = stats.snapshot(&[]);
        assert_eq!(load, vec![0.0, 2.0]);
    }

    #[test]
    fn partner_table_is_bounded() {
        let mut cfg = config();
        cfg.max_partners = 2;
        let stats = AccessStats::new(cfg, 1, 1);
        let m = Some(SiteId::new(0));
        let now = Instant::now();
        stats.record_write_set(
            client(1),
            now,
            &[pid(1), pid(2), pid(3), pid(4)],
            &[m, m, m, m],
        );
        let (snaps, _) = stats.snapshot(&[pid(1)]);
        assert_eq!(snaps[0].intra.partners.len(), 2);
    }

    #[test]
    fn zero_sample_rate_records_nothing() {
        let mut cfg = config();
        cfg.sample_rate = 0.0;
        let stats = AccessStats::new(cfg, 1, 1);
        stats.record_write_set(
            client(1),
            Instant::now(),
            &[pid(1)],
            &[Some(SiteId::new(0))],
        );
        assert_eq!(stats.partition_count(pid(1)), 0);
    }
}
