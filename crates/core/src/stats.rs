//! Workload access statistics (§V-B).
//!
//! The selector "builds and maintains statistics such as data item access
//! frequency and data item co-access likelihood [...] by adaptively sampling
//! transaction write sets and recording sampled transactions, and each
//! transaction executed within a time window Δt of it — submitted by the
//! same client — in a transaction history queue. [...] DynaMast expires
//! samples from the transaction history queue by decrementing any associated
//! access counts to adapt to changing workloads."
//!
//! [`AccessStats`] implements exactly that: per-partition write counts (and
//! the per-site aggregate the balance feature needs), intra-transaction
//! co-access counts, inter-transaction co-access counts within a
//! configurable Δt window per client, and a bounded history queue whose
//! evicted samples decrement every count they contributed.
//!
//! # Concurrency model
//!
//! Every router thread calls [`AccessStats::record_write_set`] on the
//! selector hot path, so the tracker is lock-striped rather than guarded by
//! one mutex (see DESIGN.md, "Selector concurrency model"):
//!
//! * **Partition shards.** Per-partition state (write counts and co-access
//!   partner tables) lives in [`SHARD_COUNT`] shards keyed by a Fibonacci
//!   hash of the partition id. A co-access pair `(from, to)` is stored with
//!   `from`, so recording touches one shard at a time — shard locks never
//!   nest and the lock order is trivially acyclic.
//! * **Per-site load counters** are plain atomics (`fetch_add` on record,
//!   saturating CAS decrement on expiry/remaster).
//! * **Client recency stripes.** The per-client Δt window map is striped by
//!   client id, so concurrent clients rarely share a lock and one stripe
//!   lock covers a single record's read-prune-push.
//! * **Epoch-style history flush.** The hot path appends the sample to its
//!   home shard's pending buffer; history-queue maintenance (FIFO ordering
//!   and expiry decrements) runs in batched flushes — opportunistic
//!   (`try_lock`) once enough samples are pending, forced (blocking) by
//!   every read. Counts are therefore bumped eagerly and decremented
//!   lazily; any read observes exact post-expiry values because it flushes
//!   first. Samples carry a global admission sequence number and flushes
//!   sort by it, so expiry is exactly FIFO for sequential use; under
//!   concurrent recording a not-yet-parked earlier sample can be overtaken,
//!   which only reorders *which* sample's counts drop first — the retained
//!   total is unchanged.
//! * **Sampling RNGs** are per-shard (seeded from the tracker seed and the
//!   shard index), so sampling at rates in `(0, 1)` stays deterministic per
//!   shard but draws no global lock. Rates `0.0` and `1.0` short-circuit
//!   without touching an RNG.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use dynamast_common::ids::{ClientId, PartitionId, SiteId};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Number of partition-state shards. Power of two; 32 shards keep the
/// per-shard collision probability low for typical router thread counts
/// (≤ 16) without bloating the struct.
const SHARD_COUNT: usize = 32;

/// Number of client-recency stripes (power of two).
const CLIENT_STRIPES: usize = 16;

/// Pending samples across all shards that trigger an opportunistic
/// (non-blocking) history flush from the record path.
const FLUSH_PENDING_THRESHOLD: usize = 256;

/// Backlog at which the record path flushes *blocking* instead. Opportunistic
/// flushing alone is unbounded when the flushing thread is starved of CPU
/// (oversubscribed cores): every other recorder's `try_lock` skips while the
/// backlog grows. Backpressure at 64× the opportunistic threshold caps both
/// the memory held in pending buffers and the size of any single drain.
const FLUSH_BACKPRESSURE_CAP: usize = 64 * FLUSH_PENDING_THRESHOLD;

fn shard_of(partition: PartitionId) -> usize {
    // Fibonacci hashing: multiply by 2^64/φ and keep the top bits.
    (partition.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SHARD_COUNT.trailing_zeros()))
        as usize
}

fn stripe_of(client: ClientId) -> usize {
    (client.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - CLIENT_STRIPES.trailing_zeros()))
        as usize
}

/// Decrements an atomic counter without wrapping below zero.
fn saturating_dec(counter: &AtomicU64, amount: u64) {
    let mut current = counter.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_sub(amount);
        match counter.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// Co-access partners of one partition with conditional probabilities,
/// produced for the strategy model.
#[derive(Clone, Debug, Default)]
pub struct PartnerProbs {
    /// `(partner, P(partner | partition))` pairs.
    pub partners: Vec<(PartitionId, f64)>,
}

/// Scoring snapshot for one write-set partition.
#[derive(Clone, Debug, Default)]
pub struct PartitionSnapshot {
    /// Write-frequency count of the partition.
    pub load: f64,
    /// Intra-transaction co-access probabilities (Eq. 6's `P(d2|d1)`).
    pub intra: PartnerProbs,
    /// Inter-transaction co-access probabilities (Eq. 7's
    /// `P(d2|d1; T ≤ Δt)`).
    pub inter: PartnerProbs,
}

#[derive(Default)]
struct PartStats {
    count: u64,
    master: Option<SiteId>,
    intra: HashMap<PartitionId, u64>,
    inter: HashMap<PartitionId, u64>,
}

struct Sample {
    /// Global admission order, assigned at record time so flushes can
    /// restore FIFO across shards.
    seq: u64,
    partitions: Vec<PartitionId>,
    intra_pairs: Vec<(PartitionId, PartitionId)>,
    inter_pairs: Vec<(PartitionId, PartitionId)>,
}

/// One lock-striped shard of partition state plus its pending sample buffer
/// and sampling RNG.
struct Shard {
    rng: SmallRng,
    parts: HashMap<PartitionId, PartStats>,
    pending: Vec<Sample>,
}

#[derive(Clone, Copy)]
enum PartnerKind {
    Intra,
    Inter,
}

/// Configuration for [`AccessStats`].
#[derive(Clone, Copy, Debug)]
pub struct StatsConfig {
    /// Fraction of write sets sampled.
    pub sample_rate: f64,
    /// History queue capacity; overflow expires the oldest sample.
    pub history_capacity: usize,
    /// Δt window for inter-transaction correlation.
    pub inter_window: Duration,
    /// Maximum distinct co-access partners tracked per partition.
    pub max_partners: usize,
}

type RecentSets = VecDeque<(Instant, Vec<PartitionId>)>;

/// The selector's statistics tracker.
pub struct AccessStats {
    config: StatsConfig,
    shards: Vec<Mutex<Shard>>,
    site_load: Vec<AtomicU64>,
    recent: Vec<Mutex<HashMap<ClientId, RecentSets>>>,
    history: Mutex<VecDeque<Sample>>,
    pending_total: AtomicUsize,
    next_seq: AtomicU64,
}

impl AccessStats {
    /// Creates a tracker.
    pub fn new(config: StatsConfig, num_sites: usize, seed: u64) -> Self {
        AccessStats {
            config,
            shards: (0..SHARD_COUNT)
                .map(|i| {
                    Mutex::new(Shard {
                        rng: SmallRng::seed_from_u64(seed.wrapping_add(i as u64)),
                        parts: HashMap::new(),
                        pending: Vec::new(),
                    })
                })
                .collect(),
            site_load: (0..num_sites).map(|_| AtomicU64::new(0)).collect(),
            recent: (0..CLIENT_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            history: Mutex::new(VecDeque::with_capacity(config.history_capacity + 1)),
            pending_total: AtomicUsize::new(0),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Records one routed write set. `masters[i]` is the current master of
    /// `partitions[i]` (the selector's view at routing time).
    pub fn record_write_set(
        &self,
        client: ClientId,
        now: Instant,
        partitions: &[PartitionId],
        masters: &[Option<SiteId>],
    ) {
        debug_assert_eq!(partitions.len(), masters.len());
        let rate = self.config.sample_rate;
        if rate <= 0.0 {
            return;
        }
        let home = shard_of(partitions.first().copied().unwrap_or(PartitionId::new(0)));
        if rate < 1.0 && !self.shards[home].lock().rng.gen_bool(rate) {
            return;
        }

        // The client's previous write sets within Δt predict this one; one
        // stripe lock covers the read, the append, and the prune.
        let window = self.config.inter_window;
        let previous: Vec<PartitionId> = {
            let mut stripe = self.recent[stripe_of(client)].lock();
            let sets = stripe.entry(client).or_default();
            let previous: Vec<PartitionId> = sets
                .iter()
                .filter(|(t, _)| now.duration_since(*t) <= window)
                .flat_map(|(_, set)| set.iter().copied())
                .collect();
            sets.push_back((now, partitions.to_vec()));
            while let Some((t, _)) = sets.front() {
                if now.duration_since(*t) > window && sets.len() > 1 {
                    sets.pop_front();
                } else {
                    break;
                }
            }
            previous
        };

        let max_partners = self.config.max_partners;
        let mut intra_pairs = Vec::new();
        let mut inter_pairs = Vec::new();

        // Count the sample BEFORE parking it: a concurrent flusher subtracts
        // exactly the samples it drains, and every drained sample must
        // already be counted or the counter would underflow and wedge the
        // threshold check at "always flush".
        self.pending_total.fetch_add(1, Ordering::Relaxed);

        // Fast path: every touched partition hashes to the home shard —
        // always true for single-partition write sets, the dominant case on
        // the routing fast path. One lock acquisition covers the counts, the
        // partner bumps, and parking the sample; no grouping allocation.
        let all_home = partitions.iter().all(|p| shard_of(*p) == home)
            && previous.iter().all(|p| shard_of(*p) == home);
        if all_home {
            // Allocate the sample's partition list before taking the lock;
            // the critical section stays just counter bumps and the push.
            let sample_partitions = partitions.to_vec();
            let mut shard = self.shards[home].lock();
            for (p, master) in partitions.iter().zip(masters) {
                let stats = shard.parts.entry(*p).or_default();
                stats.count += 1;
                stats.master = *master;
                if let Some(m) = master {
                    self.site_load[m.as_usize()].fetch_add(1, Ordering::Relaxed);
                }
            }
            for &p1 in partitions {
                for &p2 in partitions {
                    if p1 != p2 && shard.bump_partner(p1, p2, PartnerKind::Intra, max_partners) {
                        intra_pairs.push((p1, p2));
                    }
                }
            }
            for &p_old in &previous {
                for &p_new in partitions {
                    if p_old != p_new
                        && shard.bump_partner(p_old, p_new, PartnerKind::Inter, max_partners)
                    {
                        inter_pairs.push((p_old, p_new));
                    }
                }
            }
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            shard.pending.push(Sample {
                seq,
                partitions: sample_partitions,
                intra_pairs,
                inter_pairs,
            });
        } else {
            // General path: group all per-partition work by shard so each
            // shard is locked at most once per record; pairs are keyed by
            // their `from` side.
            struct ShardOps {
                counts: Vec<(PartitionId, Option<SiteId>)>,
                partners: Vec<(PartitionId, PartitionId, PartnerKind)>,
            }
            fn ops_for(ops: &mut HashMap<usize, ShardOps>, shard: usize) -> &mut ShardOps {
                ops.entry(shard).or_insert_with(|| ShardOps {
                    counts: Vec::new(),
                    partners: Vec::new(),
                })
            }
            let mut ops: HashMap<usize, ShardOps> = HashMap::new();
            for (p, master) in partitions.iter().zip(masters) {
                ops_for(&mut ops, shard_of(*p)).counts.push((*p, *master));
            }
            for &p1 in partitions {
                for &p2 in partitions {
                    if p1 != p2 {
                        ops_for(&mut ops, shard_of(p1))
                            .partners
                            .push((p1, p2, PartnerKind::Intra));
                    }
                }
            }
            for &p_old in &previous {
                for &p_new in partitions {
                    if p_old != p_new {
                        ops_for(&mut ops, shard_of(p_old)).partners.push((
                            p_old,
                            p_new,
                            PartnerKind::Inter,
                        ));
                    }
                }
            }

            for (shard_idx, shard_ops) in ops {
                let mut shard = self.shards[shard_idx].lock();
                for (p, master) in &shard_ops.counts {
                    let stats = shard.parts.entry(*p).or_default();
                    stats.count += 1;
                    stats.master = *master;
                    if let Some(m) = master {
                        self.site_load[m.as_usize()].fetch_add(1, Ordering::Relaxed);
                    }
                }
                for (from, to, kind) in &shard_ops.partners {
                    if shard.bump_partner(*from, *to, *kind, max_partners) {
                        match kind {
                            PartnerKind::Intra => intra_pairs.push((*from, *to)),
                            PartnerKind::Inter => inter_pairs.push((*from, *to)),
                        }
                    }
                }
            }

            // Defer history maintenance: park the sample on the home shard
            // and let a batched flush apply FIFO expiry.
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            self.shards[home].lock().pending.push(Sample {
                seq,
                partitions: partitions.to_vec(),
                intra_pairs,
                inter_pairs,
            });
        }
        let pending = self.pending_total.load(Ordering::Relaxed);
        if pending >= FLUSH_BACKPRESSURE_CAP {
            self.flush();
        } else if pending >= FLUSH_PENDING_THRESHOLD {
            self.try_flush();
        }
    }

    /// The selector's view of a partition's master must move when the
    /// partition is remastered, so the per-site load aggregate stays
    /// consistent.
    pub fn on_remaster(&self, partition: PartitionId, to: SiteId) {
        let (count, old) = {
            let mut shard = self.shards[shard_of(partition)].lock();
            let Some(stats) = shard.parts.get_mut(&partition) else {
                return;
            };
            let old = stats.master;
            stats.master = Some(to);
            (stats.count, old)
        };
        if let Some(m) = old {
            saturating_dec(&self.site_load[m.as_usize()], count);
        }
        self.site_load[to.as_usize()].fetch_add(count, Ordering::Relaxed);
    }

    /// Scoring snapshot for the write-set partitions plus the per-site load
    /// aggregate.
    pub fn snapshot(&self, partitions: &[PartitionId]) -> (Vec<PartitionSnapshot>, Vec<f64>) {
        self.flush();
        let snaps = partitions
            .iter()
            .map(|p| {
                let shard = self.shards[shard_of(*p)].lock();
                match shard.parts.get(p) {
                    None => PartitionSnapshot::default(),
                    Some(stats) => PartitionSnapshot {
                        load: stats.count as f64,
                        intra: probs(&stats.intra, stats.count),
                        inter: probs(&stats.inter, stats.count),
                    },
                }
            })
            .collect();
        let load = self
            .site_load
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as f64)
            .collect();
        (snaps, load)
    }

    /// Cheap unflushed per-site load read for trigger heuristics (the epoch
    /// batcher's imbalance probe). Sampled writes still buffered in the
    /// history window are not included; callers needing exact figures use
    /// [`AccessStats::snapshot`].
    pub fn approx_site_load(&self) -> Vec<f64> {
        self.site_load
            .iter()
            .map(|c| c.load(Ordering::Relaxed) as f64)
            .collect()
    }

    /// The tracked write count of one partition (tests/diagnostics).
    pub fn partition_count(&self, partition: PartitionId) -> u64 {
        self.flush();
        self.shards[shard_of(partition)]
            .lock()
            .parts
            .get(&partition)
            .map_or(0, |s| s.count)
    }

    /// Current history-queue length (tests/diagnostics).
    pub fn history_len(&self) -> usize {
        self.flush();
        self.history.lock().len()
    }

    /// Blocking flush: drains every shard's pending samples into the
    /// history queue and applies expiry. Reads call this so they observe
    /// exact post-expiry counts.
    fn flush(&self) {
        let mut history = self.history.lock();
        self.drain_into(&mut history);
    }

    /// Non-blocking flush for the record path; skips if another thread is
    /// already flushing (that thread will pick up these samples).
    fn try_flush(&self) {
        if let Some(mut history) = self.history.try_lock() {
            self.drain_into(&mut history);
        }
    }

    fn drain_into(&self, history: &mut VecDeque<Sample>) {
        let mut drained = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            drained.append(&mut shard.pending);
        }
        if drained.is_empty() {
            return;
        }
        // Saturating: a racing recorder may have parked a sample between
        // our shard sweeps and its own (already-counted) increment, but the
        // counter must never wrap below zero.
        let n = drained.len();
        let _ = self
            .pending_total
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
        // Restore global admission order across shards so expiry stays
        // FIFO; exact whenever all earlier samples have been parked, which
        // sequential use and forced reads always guarantee.
        drained.sort_unstable_by_key(|s| s.seq);
        let mut expired = Vec::new();
        for sample in drained {
            history.push_back(sample);
            while history.len() > self.config.history_capacity {
                if let Some(old) = history.pop_front() {
                    expired.push(old);
                }
            }
        }
        self.expire_batch(&expired);
    }

    /// Decrements every count the retired samples contributed. Cold path:
    /// runs only inside flushes. Decrements are flattened and grouped by
    /// shard so each shard is locked once per batch rather than once per
    /// sample — routing threads contend with at most one short lock hold
    /// per shard per flush.
    fn expire_batch(&self, expired: &[Sample]) {
        enum Dec {
            Count(PartitionId),
            Intra(PartitionId, PartitionId),
            Inter(PartitionId, PartitionId),
        }
        let mut decs: Vec<(usize, Dec)> = Vec::new();
        for sample in expired {
            for p in &sample.partitions {
                decs.push((shard_of(*p), Dec::Count(*p)));
            }
            for (from, to) in &sample.intra_pairs {
                decs.push((shard_of(*from), Dec::Intra(*from, *to)));
            }
            for (from, to) in &sample.inter_pairs {
                decs.push((shard_of(*from), Dec::Inter(*from, *to)));
            }
        }
        // Decrements commute, so ordering within a shard is irrelevant.
        decs.sort_unstable_by_key(|(shard, _)| *shard);
        let mut i = 0;
        while i < decs.len() {
            let shard_idx = decs[i].0;
            let mut shard = self.shards[shard_idx].lock();
            while i < decs.len() && decs[i].0 == shard_idx {
                match &decs[i].1 {
                    Dec::Count(p) => {
                        if let Some(stats) = shard.parts.get_mut(p) {
                            stats.count = stats.count.saturating_sub(1);
                            if let Some(m) = stats.master {
                                saturating_dec(&self.site_load[m.as_usize()], 1);
                            }
                        }
                    }
                    Dec::Intra(from, to) => {
                        if let Some(stats) = shard.parts.get_mut(from) {
                            decrement_partner(&mut stats.intra, to);
                        }
                    }
                    Dec::Inter(from, to) => {
                        if let Some(stats) = shard.parts.get_mut(from) {
                            decrement_partner(&mut stats.inter, to);
                        }
                    }
                }
                i += 1;
            }
        }
    }
}

fn decrement_partner(table: &mut HashMap<PartitionId, u64>, to: &PartitionId) {
    if let Some(c) = table.get_mut(to) {
        *c = c.saturating_sub(1);
        if *c == 0 {
            table.remove(to);
        }
    }
}

fn probs(counts: &HashMap<PartitionId, u64>, total: u64) -> PartnerProbs {
    if total == 0 {
        return PartnerProbs::default();
    }
    PartnerProbs {
        partners: counts
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(p, &c)| (*p, c as f64 / total as f64))
            .collect(),
    }
}

impl Shard {
    /// Increments a co-access partner count; returns whether it was counted
    /// (partner-table capacity permitting).
    fn bump_partner(
        &mut self,
        from: PartitionId,
        to: PartitionId,
        kind: PartnerKind,
        max_partners: usize,
    ) -> bool {
        let stats = self.parts.entry(from).or_default();
        let table = match kind {
            PartnerKind::Intra => &mut stats.intra,
            PartnerKind::Inter => &mut stats.inter,
        };
        if table.len() >= max_partners && !table.contains_key(&to) {
            return false;
        }
        *table.entry(to).or_insert(0) += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> StatsConfig {
        StatsConfig {
            sample_rate: 1.0,
            history_capacity: 100,
            inter_window: Duration::from_millis(100),
            max_partners: 8,
        }
    }

    fn pid(i: usize) -> PartitionId {
        PartitionId::new(i)
    }

    fn client(i: usize) -> ClientId {
        ClientId::new(i)
    }

    #[test]
    fn write_counts_accumulate_per_partition_and_site() {
        let stats = AccessStats::new(config(), 2, 1);
        let s0 = Some(SiteId::new(0));
        let now = Instant::now();
        stats.record_write_set(client(1), now, &[pid(1), pid(2)], &[s0, s0]);
        stats.record_write_set(client(1), now, &[pid(1)], &[s0]);
        assert_eq!(stats.partition_count(pid(1)), 2);
        let (_, load) = stats.snapshot(&[pid(1)]);
        assert_eq!(load, vec![3.0, 0.0]);
    }

    #[test]
    fn intra_coaccess_probabilities_are_conditional() {
        let stats = AccessStats::new(config(), 2, 1);
        let m = Some(SiteId::new(0));
        let now = Instant::now();
        stats.record_write_set(client(1), now, &[pid(1), pid(2)], &[m, m]);
        stats.record_write_set(client(1), now, &[pid(1)], &[m]);
        let (snaps, _) = stats.snapshot(&[pid(1)]);
        // pid(2) co-accessed in 1 of pid(1)'s 2 accesses.
        let partners = &snaps[0].intra.partners;
        assert_eq!(partners.len(), 1);
        assert_eq!(partners[0], (pid(2), 0.5));
    }

    #[test]
    fn inter_coaccess_links_consecutive_client_txns_within_window() {
        let stats = AccessStats::new(config(), 2, 1);
        let m = Some(SiteId::new(0));
        let t0 = Instant::now();
        stats.record_write_set(client(1), t0, &[pid(1)], &[m]);
        stats.record_write_set(client(1), t0 + Duration::from_millis(10), &[pid(2)], &[m]);
        let (snaps, _) = stats.snapshot(&[pid(1)]);
        assert_eq!(snaps[0].inter.partners, vec![(pid(2), 1.0)]);
        // A different client's transaction does not link.
        stats.record_write_set(client(2), t0 + Duration::from_millis(20), &[pid(3)], &[m]);
        let (snaps, _) = stats.snapshot(&[pid(2)]);
        assert!(snaps[0].inter.partners.is_empty());
    }

    #[test]
    fn inter_coaccess_ignores_txns_outside_window() {
        let stats = AccessStats::new(config(), 2, 1);
        let m = Some(SiteId::new(0));
        let t0 = Instant::now();
        stats.record_write_set(client(1), t0, &[pid(1)], &[m]);
        stats.record_write_set(client(1), t0 + Duration::from_secs(10), &[pid(2)], &[m]);
        let (snaps, _) = stats.snapshot(&[pid(1)]);
        assert!(snaps[0].inter.partners.is_empty());
    }

    #[test]
    fn history_expiry_decrements_counts() {
        let mut cfg = config();
        cfg.history_capacity = 2;
        let stats = AccessStats::new(cfg, 2, 1);
        let m = Some(SiteId::new(0));
        let now = Instant::now();
        for _ in 0..5 {
            stats.record_write_set(client(1), now, &[pid(1), pid(2)], &[m, m]);
        }
        assert_eq!(stats.history_len(), 2);
        // Only two samples retained → counts reflect those two.
        assert_eq!(stats.partition_count(pid(1)), 2);
        let (_, load) = stats.snapshot(&[]);
        assert_eq!(load[0], 4.0);
    }

    #[test]
    fn remaster_moves_load_between_sites() {
        let stats = AccessStats::new(config(), 2, 1);
        let m0 = Some(SiteId::new(0));
        let now = Instant::now();
        stats.record_write_set(client(1), now, &[pid(1)], &[m0]);
        stats.record_write_set(client(1), now, &[pid(1)], &[m0]);
        stats.on_remaster(pid(1), SiteId::new(1));
        let (_, load) = stats.snapshot(&[]);
        assert_eq!(load, vec![0.0, 2.0]);
    }

    #[test]
    fn partner_table_is_bounded() {
        let mut cfg = config();
        cfg.max_partners = 2;
        let stats = AccessStats::new(cfg, 1, 1);
        let m = Some(SiteId::new(0));
        let now = Instant::now();
        stats.record_write_set(
            client(1),
            now,
            &[pid(1), pid(2), pid(3), pid(4)],
            &[m, m, m, m],
        );
        let (snaps, _) = stats.snapshot(&[pid(1)]);
        assert_eq!(snaps[0].intra.partners.len(), 2);
    }

    #[test]
    fn zero_sample_rate_records_nothing() {
        let mut cfg = config();
        cfg.sample_rate = 0.0;
        let stats = AccessStats::new(cfg, 1, 1);
        stats.record_write_set(
            client(1),
            Instant::now(),
            &[pid(1)],
            &[Some(SiteId::new(0))],
        );
        assert_eq!(stats.partition_count(pid(1)), 0);
    }

    /// Satellite #3: hammer `record_write_set` from 8 threads over
    /// overlapping write sets and check the merged counts equal a
    /// sequential replay of the same records. At `sample_rate = 1.0` with
    /// capacity bounds that never bind, every operation commutes, so the
    /// sharded tracker must converge to the single-threaded ground truth.
    #[test]
    fn concurrent_records_merge_to_sequential_ground_truth() {
        use std::sync::Arc;

        const THREADS: usize = 8;
        const RECORDS_PER_THREAD: usize = 200;
        const POOL: usize = 32;

        let cfg = StatsConfig {
            sample_rate: 1.0,
            // Large enough that nothing expires and nothing truncates, so
            // the merged state is order-independent.
            history_capacity: THREADS * RECORDS_PER_THREAD + 1,
            inter_window: Duration::from_secs(60),
            max_partners: POOL,
        };
        let num_sites = 3;
        let t0 = Instant::now();

        // Overlapping write sets: thread t's i-th record touches four
        // partitions spread over a shared pool, each mastered by a fixed
        // site derived from the partition id.
        let record = |t: usize, i: usize| -> (Vec<PartitionId>, Vec<Option<SiteId>>) {
            let parts: Vec<PartitionId> = (0..4)
                .map(|k| pid((t * 7 + i * 13 + k * 5) % POOL))
                .collect();
            let mut parts = parts;
            parts.sort_unstable();
            parts.dedup();
            let masters = parts
                .iter()
                .map(|p| Some(SiteId::new((p.raw() % num_sites as u64) as usize)))
                .collect();
            (parts, masters)
        };

        let concurrent = Arc::new(AccessStats::new(cfg, num_sites, 42));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let stats = Arc::clone(&concurrent);
                scope.spawn(move || {
                    for i in 0..RECORDS_PER_THREAD {
                        let (parts, masters) = record(t, i);
                        // One client per thread keeps the inter-transaction
                        // pair stream deterministic per thread.
                        stats.record_write_set(client(t), t0, &parts, &masters);
                    }
                });
            }
        });

        let sequential = AccessStats::new(cfg, num_sites, 42);
        for t in 0..THREADS {
            for i in 0..RECORDS_PER_THREAD {
                let (parts, masters) = record(t, i);
                sequential.record_write_set(client(t), t0, &parts, &masters);
            }
        }

        let all: Vec<PartitionId> = (0..POOL).map(pid).collect();
        let (got_snaps, got_load) = concurrent.snapshot(&all);
        let (want_snaps, want_load) = sequential.snapshot(&all);
        assert_eq!(got_load, want_load);
        assert_eq!(concurrent.history_len(), sequential.history_len());
        for (p, (got, want)) in all.iter().zip(got_snaps.iter().zip(&want_snaps)) {
            assert_eq!(got.load, want.load, "count diverged for {p:?}");
            let sorted = |probs: &PartnerProbs| {
                let mut v = probs.partners.clone();
                v.sort_by_key(|(p, _)| *p);
                v
            };
            assert_eq!(
                sorted(&got.intra),
                sorted(&want.intra),
                "intra diverged for {p:?}"
            );
            assert_eq!(
                sorted(&got.inter),
                sorted(&want.inter),
                "inter diverged for {p:?}"
            );
        }
    }
}
