//! Distributed site selector (paper Appendix I).
//!
//! "Since remastering is infrequent, a single-master site-selector with
//! multiple replicas is appropriate. [...] When a replica site-selector
//! receives a request, it tries to handle the routing decisions locally
//! before falling back to the master site-selector if remastering is
//! required. [...] as a replica site-selector may have stale master location
//! metadata, the site manager must abort the transaction if it no longer
//! masters a data item. An aborted transaction is always resubmitted to the
//! master site-selector."
//!
//! [`ReplicaSelector`] holds a (possibly stale) partition→master cache. It
//! routes single-site write sets locally; split or unknown write sets — and
//! any `NotMaster` abort — fall back to the master selector, after which the
//! replica's cache is refreshed for the involved partitions.

use std::collections::HashMap;
use std::sync::Arc;

use dynamast_common::ids::{ClientId, Key, PartitionId, SiteId};
use dynamast_common::metrics::Counter;
use dynamast_common::{Result, VersionVector};
use dynamast_storage::Catalog;
use parking_lot::Mutex;

use crate::selector::{RouteDecision, SiteSelector};

/// A replica site selector with stale-tolerant local routing.
pub struct ReplicaSelector {
    master: Arc<SiteSelector>,
    catalog: Catalog,
    num_sites: usize,
    cache: Mutex<HashMap<PartitionId, SiteId>>,
    /// Requests answered from the local cache.
    pub local_routes: Counter,
    /// Requests forwarded to the master selector.
    pub forwarded_routes: Counter,
}

impl ReplicaSelector {
    /// Creates a replica of `master`.
    pub fn new(master: Arc<SiteSelector>, catalog: Catalog, num_sites: usize) -> Self {
        ReplicaSelector {
            master,
            catalog,
            num_sites,
            cache: Mutex::new(HashMap::new()),
            local_routes: Counter::new(),
            forwarded_routes: Counter::new(),
        }
    }

    /// Bulk-refreshes the cache from the master's partition map (a replica
    /// catching up out of band).
    pub fn refresh_all(&self) {
        let mut cache = self.cache.lock();
        for (p, master) in self.master.map().placements() {
            match master {
                Some(s) => {
                    cache.insert(p, s);
                }
                None => {
                    cache.remove(&p);
                }
            }
        }
    }

    /// Routes an update transaction: locally when the cached metadata says
    /// one site masters the whole write set, otherwise via the master
    /// selector.
    pub fn route_update(
        &self,
        client: ClientId,
        cvv: &VersionVector,
        write_set: &[Key],
    ) -> Result<RouteDecision> {
        let mut partitions = Vec::with_capacity(write_set.len());
        for key in write_set {
            partitions.push(self.catalog.partition_of(*key)?);
        }
        partitions.sort_unstable();
        partitions.dedup();

        if let Some(site) = self.lookup_local(&partitions) {
            self.local_routes.inc();
            return Ok(RouteDecision {
                site,
                min_vv: VersionVector::zero(self.num_sites),
                lookup: std::time::Duration::ZERO,
                routing: std::time::Duration::ZERO,
                remastered: false,
            });
        }
        self.forward(client, cvv, write_set, &partitions)
    }

    /// Handles a `NotMaster` abort: the stale routing is resubmitted to the
    /// master selector and the cache refreshed.
    pub fn resubmit(
        &self,
        client: ClientId,
        cvv: &VersionVector,
        write_set: &[Key],
    ) -> Result<RouteDecision> {
        let mut partitions = Vec::with_capacity(write_set.len());
        for key in write_set {
            partitions.push(self.catalog.partition_of(*key)?);
        }
        partitions.sort_unstable();
        partitions.dedup();
        self.forward(client, cvv, write_set, &partitions)
    }

    fn lookup_local(&self, partitions: &[PartitionId]) -> Option<SiteId> {
        let cache = self.cache.lock();
        let mut first = None;
        for p in partitions {
            let site = *cache.get(p)?;
            match first {
                None => first = Some(site),
                Some(s) if s != site => return None,
                Some(_) => {}
            }
        }
        first
    }

    fn forward(
        &self,
        client: ClientId,
        cvv: &VersionVector,
        write_set: &[Key],
        partitions: &[PartitionId],
    ) -> Result<RouteDecision> {
        self.forwarded_routes.inc();
        let decision = self.master.route_update(client, cvv, write_set)?;
        let mut cache = self.cache.lock();
        for p in partitions {
            cache.insert(*p, decision.site);
        }
        Ok(decision)
    }
}

/// A DynaMast deployment fronted by replica site selectors — the full
/// Appendix I configuration as a [`ReplicatedSystem`].
///
/// Each client is bound to one replica selector (by client id). Updates are
/// routed by the replica when its cached metadata shows a single-site write
/// set; otherwise — and whenever a site rejects a stale routing with
/// `NotMaster` — the transaction is resubmitted through the master
/// selector, which performs any remastering.
pub struct DistributedSelectorSystem {
    inner: Arc<crate::dynamast::DynaMastSystem>,
    replicas: Vec<ReplicaSelector>,
}

impl DistributedSelectorSystem {
    /// Fronts `inner` with `replicas` replica selectors.
    pub fn new(inner: Arc<crate::dynamast::DynaMastSystem>, replicas: usize) -> Self {
        assert!(replicas >= 1, "need at least one replica selector");
        let catalog = inner.sites()[0].store().catalog().clone();
        let num_sites = inner.config().num_sites;
        let replicas = (0..replicas)
            .map(|_| {
                let r = ReplicaSelector::new(inner.selector(), catalog.clone(), num_sites);
                r.refresh_all();
                r
            })
            .collect();
        DistributedSelectorSystem { inner, replicas }
    }

    /// The replica selector serving `client`.
    pub fn replica_for(&self, client: dynamast_common::ids::ClientId) -> &ReplicaSelector {
        &self.replicas[(client.raw() % self.replicas.len() as u64) as usize]
    }

    /// The backing deployment.
    pub fn inner(&self) -> &Arc<crate::dynamast::DynaMastSystem> {
        &self.inner
    }

    /// Requests routed locally by replicas vs forwarded to the master.
    pub fn routing_split(&self) -> (u64, u64) {
        let local = self.replicas.iter().map(|r| r.local_routes.get()).sum();
        let forwarded = self.replicas.iter().map(|r| r.forwarded_routes.get()).sum();
        (local, forwarded)
    }
}

impl dynamast_site::system::ReplicatedSystem for DistributedSelectorSystem {
    fn name(&self) -> &'static str {
        "dynamast-distributed-selector"
    }

    fn update(
        &self,
        session: &mut dynamast_site::system::ClientSession,
        proc: &dynamast_site::proc::ProcCall,
    ) -> Result<dynamast_site::system::TxnOutcome> {
        use dynamast_common::DynaError;
        use dynamast_site::system::{exec_update_at, Breakdown, TxnOutcome};
        let t0 = std::time::Instant::now();
        let txn_id = dynamast_common::trace::next_trace_id();
        let replica = self.replica_for(session.id);
        let mut decision = replica.route_update(session.id, &session.cvv, &proc.write_set)?;
        // A stale replica routing is aborted by the site manager's
        // mastership check and resubmitted via the master selector; a race
        // against concurrent remastering can repeat, so bound the retries.
        for _ in 0..16 {
            match exec_update_at(
                self.inner.network(),
                decision.site,
                txn_id,
                session,
                &decision.min_vv,
                proc,
                true,
            ) {
                Ok((result, timings)) => {
                    return Ok(TxnOutcome {
                        result,
                        breakdown: Breakdown::from_parts(
                            decision.lookup,
                            decision.routing,
                            timings,
                            t0.elapsed(),
                        ),
                    })
                }
                Err(DynaError::NotMaster { .. }) => {
                    decision = replica.resubmit(session.id, &session.cvv, &proc.write_set)?;
                }
                Err(other) => return Err(other),
            }
        }
        Err(DynaError::TxnAborted {
            reason: "stale-routing retries exhausted",
        })
    }

    fn read(
        &self,
        session: &mut dynamast_site::system::ClientSession,
        proc: &dynamast_site::proc::ProcCall,
    ) -> Result<dynamast_site::system::TxnOutcome> {
        // Read routing does not change under the distributed selector
        // (Appendix I: "read-only transaction routing does not change").
        self.inner.read(session, proc)
    }

    fn stats(&self) -> dynamast_site::system::SystemStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::SelectorMode;
    use dynamast_common::config::NetworkConfig;
    use dynamast_common::ids::TableId;
    use dynamast_common::SystemConfig;
    use dynamast_network::Network;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table("t", 1, 100);
        cat
    }

    fn key(r: u64) -> Key {
        Key::new(TableId::new(0), r)
    }

    fn master_selector() -> Arc<SiteSelector> {
        let cfg = SystemConfig::new(2).with_instant_network();
        let net = Network::new(NetworkConfig::instant(), 1);
        SiteSelector::new(cfg, catalog(), SelectorMode::Adaptive, net)
    }

    #[test]
    fn replica_with_empty_cache_forwards_to_master() {
        let master = master_selector();
        let replica = ReplicaSelector::new(Arc::clone(&master), catalog(), 2);
        // No sites are running, but the master selector can still place a
        // brand-new partition... it would issue a grant RPC, which fails
        // without sites. So only test the cache-side logic here: lookup
        // misses mean forwarding is attempted.
        assert_eq!(replica.lookup_local(&[PartitionId::new(1)]), None);
        assert_eq!(replica.local_routes.get(), 0);
        let _ = key(0);
    }

    #[test]
    fn refresh_all_copies_master_placements() {
        let master = master_selector();
        master.map().seed([(PartitionId::new(5), SiteId::new(1))]);
        let replica = ReplicaSelector::new(Arc::clone(&master), catalog(), 2);
        replica.refresh_all();
        assert_eq!(
            replica.lookup_local(&[PartitionId::new(5)]),
            Some(SiteId::new(1))
        );
    }

    #[test]
    fn split_write_sets_are_not_routed_locally() {
        let master = master_selector();
        master.map().seed([
            (PartitionId::new(1), SiteId::new(0)),
            (PartitionId::new(2), SiteId::new(1)),
        ]);
        let replica = ReplicaSelector::new(master, catalog(), 2);
        replica.refresh_all();
        assert_eq!(
            replica.lookup_local(&[PartitionId::new(1), PartitionId::new(2)]),
            None
        );
        assert_eq!(
            replica.lookup_local(&[PartitionId::new(1)]),
            Some(SiteId::new(0))
        );
    }
}
