//! DynaMast: the dynamic mastering protocol and adaptive site selector —
//! the paper's primary contribution (§III–§V).
//!
//! * [`partition_map`] — the selector's partition-information table:
//!   per-partition master location guarded by a readers–writer lock
//!   (shared-mode for routing, exclusive-mode during remastering, §V-B).
//! * [`stats`] — workload statistics: per-partition write frequencies,
//!   intra-/inter-transaction co-access counts, and the expiring transaction
//!   history queue that adapts the model to workload change (§V-B).
//! * [`strategy`] — the remastering benefit model: write-load balance
//!   (Eqs. 2–4), refresh-delay estimation (Eq. 5), intra-/inter-transaction
//!   localization (Eqs. 6–7) combined by the weighted linear model (Eq. 8).
//! * [`selector`] — the site selector: write routing with remastering
//!   (Algorithm 1: parallel release/grant RPCs, element-wise-max begin
//!   vector) and freshness-aware randomized read routing (§IV-B).
//! * [`replica_map`] — the partition→replica-set table for partial
//!   replication: which sites hold a copy, maintained by the provisioning
//!   planner and consulted by read routing and remastering.
//! * [`dynamast`] — the assembled [`DynaMastSystem`]: data sites +
//!   replication + selector behind the
//!   [`dynamast_site::system::ReplicatedSystem`] client API.
//! * [`distributed`] — replica site selectors (Appendix I): stale-tolerant
//!   local routing with abort-and-resubmit to the master selector.
//! * [`recovery`] — selector and site recovery from the durable logs (§V-C).

pub mod distributed;
pub mod dynamast;
pub mod freshness;
pub mod partition_map;
pub mod recovery;
pub mod replica_map;
pub mod selector;
pub mod stats;
pub mod strategy;

pub use distributed::{DistributedSelectorSystem, ReplicaSelector};
pub use dynamast::{DynaMastConfig, DynaMastSystem};
pub use freshness::FreshnessCache;
pub use partition_map::PartitionMap;
pub use replica_map::ReplicaMap;
pub use selector::{RouteDecision, SelectorMode, SiteSelector};
pub use stats::AccessStats;
pub use strategy::{score_sites, CoAccess, ScoreInputs};
