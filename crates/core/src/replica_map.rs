//! The selector's partition→replica-set table (partial replication).
//!
//! Where [`crate::partition_map`] answers "who masters this partition?",
//! `ReplicaMap` answers "who holds a copy of it?". Under full replication
//! the answer is trivially "everyone"; under `replication=partial` each
//! partition's replica set is a dynamic subset of sites, never smaller than
//! the configured floor and always containing the current master (grants
//! are preceded by copy installation when the grantee holds none).
//!
//! The map is read on every read-routing decision, so each partition's
//! replica set is a lock-free `AtomicU64` bitmask of site ids (the
//! simulated deployments are well under 64 sites). Mutations — provisioning
//! adds/drops, remaster-driven copy creation, restart reconciliation — are
//! rare and go through the same atomics with compare-and-swap loops.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dynamast_common::ids::{PartitionId, SiteId};
use parking_lot::RwLock;

/// Per-partition replica sets as site bitmasks.
///
/// Partitions absent from the table implicitly hold the *default* replica
/// set ([`ReplicaMap::default_hosts`]): a deterministic floor-sized set
/// derived from the partition id, shared with the data sites' seeding so
/// selector and sites agree on initial hosting without coordination.
pub struct ReplicaMap {
    num_sites: usize,
    floor: usize,
    /// `true` = full replication: every query answers "all sites" and
    /// mutations are ignored.
    full: bool,
    entries: RwLock<HashMap<PartitionId, AtomicU64>>,
}

impl ReplicaMap {
    /// Creates a map for `num_sites` sites. `floor` is the minimum copies
    /// per partition; `full` makes the map degenerate (everyone hosts
    /// everything, the seed behavior).
    pub fn new(num_sites: usize, floor: usize, full: bool) -> Self {
        assert!(num_sites <= 64, "replica bitmask holds at most 64 sites");
        ReplicaMap {
            num_sites,
            floor: floor.clamp(2, num_sites.max(1)).min(num_sites.max(1)),
            full,
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// Whether this map tracks a partial replica set (false = full
    /// replication degenerate mode).
    pub fn is_partial(&self) -> bool {
        !self.full
    }

    /// The configured copy floor.
    pub fn floor(&self) -> usize {
        if self.full {
            self.num_sites
        } else {
            self.floor
        }
    }

    fn all_mask(&self) -> u64 {
        if self.num_sites >= 64 {
            u64::MAX
        } else {
            (1u64 << self.num_sites) - 1
        }
    }

    /// Contiguous partitions share a seeding anchor in blocks of this many.
    /// Range scans span *adjacent* partitions, so anchoring per-partition
    /// (`p % num_sites`) would guarantee no site co-hosts any multi-partition
    /// range and every scan would widen the map through NotReplica repair.
    /// Block anchoring keeps whole ranges co-hosted; consecutive blocks still
    /// overlap (the anchor advances by one site per block), so ranges that
    /// straddle one block boundary are co-hosted at the shared site and load
    /// stays balanced globally.
    pub const ANCHOR_BLOCK: usize = 8;

    /// The deterministic initial replica set of `partition`: the seeding
    /// anchor site of its [`ReplicaMap::ANCHOR_BLOCK`] block plus the next
    /// `floor - 1` sites round-robin. Data sites derive their initial hosted
    /// sets from the same function, so the selector and the sites agree
    /// without any startup coordination.
    pub fn default_hosts(num_sites: usize, floor: usize, partition: PartitionId) -> Vec<SiteId> {
        let floor = floor.clamp(2, num_sites.max(1)).min(num_sites.max(1));
        let anchor = (partition.raw() as usize / Self::ANCHOR_BLOCK) % num_sites.max(1);
        (0..floor)
            .map(|i| SiteId::new((anchor + i) % num_sites.max(1)))
            .collect()
    }

    fn default_mask(&self, partition: PartitionId) -> u64 {
        let mut mask = 0u64;
        for s in Self::default_hosts(self.num_sites, self.floor, partition) {
            mask |= 1u64 << s.as_usize();
        }
        mask
    }

    /// The current replica bitmask of `partition` (bit `i` = site `i`
    /// holds a copy).
    pub fn mask(&self, partition: PartitionId) -> u64 {
        if self.full {
            return self.all_mask();
        }
        if let Some(entry) = self.entries.read().get(&partition) {
            return entry.load(Ordering::Acquire);
        }
        self.default_mask(partition)
    }

    /// Whether `site` holds a copy of `partition`.
    pub fn hosts(&self, partition: PartitionId, site: SiteId) -> bool {
        self.mask(partition) & (1u64 << site.as_usize()) != 0
    }

    /// The sites holding a copy of `partition`, ascending.
    pub fn replicas(&self, partition: PartitionId) -> Vec<SiteId> {
        let mask = self.mask(partition);
        (0..self.num_sites)
            .filter(|i| mask & (1u64 << i) != 0)
            .map(SiteId::new)
            .collect()
    }

    /// Number of copies of `partition`.
    pub fn copy_count(&self, partition: PartitionId) -> usize {
        self.mask(partition).count_ones() as usize
    }

    fn entry_op(&self, partition: PartitionId, f: impl Fn(u64) -> u64) -> u64 {
        {
            let entries = self.entries.read();
            if let Some(entry) = entries.get(&partition) {
                return entry
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |m| Some(f(m)))
                    .expect("fetch_update closure always returns Some");
            }
        }
        let mut entries = self.entries.write();
        let entry = entries
            .entry(partition)
            .or_insert_with(|| AtomicU64::new(self.default_mask(partition)));
        entry
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |m| Some(f(m)))
            .expect("fetch_update closure always returns Some")
    }

    /// Records that `site` now holds a copy of `partition`. Idempotent.
    /// No-op under full replication.
    pub fn add(&self, partition: PartitionId, site: SiteId) {
        if self.full {
            return;
        }
        self.entry_op(partition, |m| m | (1u64 << site.as_usize()));
    }

    /// Removes `site` from `partition`'s replica set, refusing to go below
    /// the floor. Returns whether the bit was actually cleared.
    pub fn remove(&self, partition: PartitionId, site: SiteId) -> bool {
        if self.full {
            return false;
        }
        let bit = 1u64 << site.as_usize();
        let prev = self.entry_op(partition, |m| {
            if m & bit != 0 && (m.count_ones() as usize) > self.floor {
                m & !bit
            } else {
                m
            }
        });
        prev & bit != 0 && (prev.count_ones() as usize) > self.floor
    }

    /// Replaces `partition`'s replica set wholesale (restart reconciliation:
    /// the checkpointed hosted set is the site's post-crash truth).
    pub fn set_mask(&self, partition: PartitionId, mask: u64) {
        if self.full {
            return;
        }
        self.entry_op(partition, |_| mask);
    }

    /// Reconciles one site's hosting claims: sets `site`'s bit on exactly
    /// the partitions in `hosted`, clearing it elsewhere (used after a
    /// restart, when copies installed since the site's last checkpoint are
    /// gone). Only partitions already tracked (or listed) are touched.
    pub fn reconcile_site(&self, site: SiteId, hosted: &[PartitionId]) {
        if self.full {
            return;
        }
        let bit = 1u64 << site.as_usize();
        let hosted_set: std::collections::HashSet<PartitionId> = hosted.iter().copied().collect();
        // Materialize rows for hosted partitions so their bit can be set.
        for p in hosted {
            self.entry_op(*p, |m| m | bit);
        }
        let entries = self.entries.read();
        for (p, entry) in entries.iter() {
            if !hosted_set.contains(p) {
                entry
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |m| {
                        // Never shrink below the floor: a lost copy the map
                        // cannot drop stays attributed until provisioning
                        // repairs it (the chaos path re-adds a real copy).
                        if m & bit != 0 && (m.count_ones() as usize) > self.floor {
                            Some(m & !bit)
                        } else {
                            Some(m)
                        }
                    })
                    .expect("fetch_update closure always returns Some");
            }
        }
    }

    /// Snapshot of every explicitly tracked partition's replica mask
    /// (partitions still on their default set are absent).
    pub fn tracked(&self) -> Vec<(PartitionId, u64)> {
        self.entries
            .read()
            .iter()
            .map(|(p, e)| (*p, e.load(Ordering::Acquire)))
            .collect()
    }

    /// Number of partitions (among `partitions`) whose copy count is at the
    /// floor, strictly between floor and all-sites, and at all-sites —
    /// the per-class replica census exported as metrics.
    pub fn census(&self, partitions: &[PartitionId]) -> (u64, u64, u64) {
        let (mut at_floor, mut partial, mut at_all) = (0u64, 0u64, 0u64);
        for p in partitions {
            let n = self.copy_count(*p);
            if n >= self.num_sites {
                at_all += 1;
            } else if n <= self.floor() {
                at_floor += 1;
            } else {
                partial += 1;
            }
        }
        (at_floor, partial, at_all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> PartitionId {
        PartitionId::new(i)
    }

    #[test]
    fn full_mode_hosts_everything_and_ignores_mutation() {
        let map = ReplicaMap::new(4, 2, true);
        assert!(!map.is_partial());
        assert_eq!(map.copy_count(pid(7)), 4);
        map.remove(pid(7), SiteId::new(1));
        assert!(map.hosts(pid(7), SiteId::new(1)));
        assert_eq!(map.floor(), 4);
    }

    #[test]
    fn default_hosts_are_deterministic_and_floor_sized() {
        let a = ReplicaMap::default_hosts(4, 2, pid(13));
        let b = ReplicaMap::default_hosts(4, 2, pid(13));
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0], SiteId::new(1)); // block 13/8 = 1, then round-robin
        assert_eq!(a[1], SiteId::new(2));
    }

    #[test]
    fn default_hosts_co_host_contiguous_blocks() {
        // Every partition inside one anchor block shares the same set, and
        // consecutive blocks overlap by floor-1 sites, so a range straddling
        // one boundary still has a co-hosting site.
        let block = ReplicaMap::ANCHOR_BLOCK;
        let first = ReplicaMap::default_hosts(4, 2, pid(0));
        for p in 1..block {
            assert_eq!(ReplicaMap::default_hosts(4, 2, pid(p)), first);
        }
        let next = ReplicaMap::default_hosts(4, 2, pid(block));
        let shared: Vec<_> = first.iter().filter(|s| next.contains(s)).collect();
        assert!(!shared.is_empty(), "adjacent blocks must overlap");
    }

    #[test]
    fn untracked_partitions_report_default_hosts() {
        let map = ReplicaMap::new(4, 2, false);
        let hosts = map.replicas(pid(5));
        assert_eq!(hosts, ReplicaMap::default_hosts(4, 2, pid(5)));
        assert_eq!(map.copy_count(pid(5)), 2);
    }

    #[test]
    fn add_and_remove_respect_the_floor() {
        let map = ReplicaMap::new(4, 2, false);
        let p = pid(3);
        let defaults = ReplicaMap::default_hosts(4, 2, p);
        let extra = (0..4)
            .map(SiteId::new)
            .find(|s| !defaults.contains(s))
            .unwrap();
        map.add(p, extra);
        assert_eq!(map.copy_count(p), 3);
        assert!(map.remove(p, extra));
        assert_eq!(map.copy_count(p), 2);
        // At the floor: no further drops.
        let survivor = map.replicas(p)[0];
        assert!(!map.remove(p, survivor));
        assert_eq!(map.copy_count(p), 2);
    }

    #[test]
    fn reconcile_site_resets_hosting_claims() {
        let map = ReplicaMap::new(4, 2, false);
        let (p1, p2) = (pid(0), pid(1));
        map.add(p1, SiteId::new(3));
        map.add(p2, SiteId::new(3));
        map.add(p2, SiteId::new(2)); // 4 copies of p2 now (default {1,2}+3... )
        assert!(map.hosts(p1, SiteId::new(3)));
        // After restart S3 only claims p2.
        map.reconcile_site(SiteId::new(3), &[p2]);
        assert!(!map.hosts(p1, SiteId::new(3)));
        assert!(map.hosts(p2, SiteId::new(3)));
    }

    #[test]
    fn census_classifies_partitions() {
        let map = ReplicaMap::new(4, 2, false);
        map.add(pid(1), SiteId::new(0));
        map.add(pid(1), SiteId::new(3));
        let hosts2 = ReplicaMap::default_hosts(4, 2, pid(2));
        for s in 0..4 {
            let site = SiteId::new(s);
            if !hosts2.contains(&site) {
                map.add(pid(2), site);
            }
        }
        // pid(0): default floor set; pid(1): widened but not all; pid(2): all.
        let (at_floor, partial, at_all) = map.census(&[pid(0), pid(1), pid(2)]);
        assert_eq!((at_floor, partial, at_all), (1, 0, 2));
        let n1 = map.copy_count(pid(1));
        assert!(n1 == 3 || n1 == 4, "widened set has 3-4 copies, got {n1}");
    }
}
