//! The remastering benefit model (paper §IV-A, Eqs. 2–8).
//!
//! For a transaction whose write set needs remastering, the selector scores
//! every site `S` as a destination and picks the argmax of the weighted
//! linear model (Eq. 8):
//!
//! ```text
//! f_benefit(S) =  w_balance   · f_balance(S)
//!              −  w_delay     · f_refresh_delay(S)
//!              +  w_intra_txn · f_intra_txn(S)
//!              +  w_inter_txn · f_inter_txn(S)
//! ```
//!
//! (`f_refresh_delay` enters negatively: a lagging destination is a cost.)
//!
//! One transcription note: the paper's Eq. 2 prints as
//! `exp(Σ (1/m − freq))²`, but the plain sum of `(1/m − freq_i)` is
//! identically zero and the paper states the function is 0 at perfect
//! balance, so we implement the evident intent — the squared L2 distance
//! from the uniform distribution, `Σ_i (1/m − freq_i)²` — which is 0 at
//! perfect balance and grows with imbalance. The `exp` reappears exactly
//! where Eq. 4 puts it: `f_balance = Δbalance · exp(balance_rate)`.

use dynamast_common::ids::{PartitionId, SiteId};
use dynamast_common::trace::CandidateScore;
use dynamast_common::{StrategyWeights, VersionVector};

/// One co-access partner of a write-set partition, with everything
/// `single_sited` needs.
#[derive(Clone, Debug)]
pub struct CoAccess {
    /// The partner partition.
    pub partner: PartitionId,
    /// `P(partner | partition)` (conditional co-access probability).
    pub probability: f64,
    /// The partner's current master (`None` = unplaced).
    pub partner_master: Option<SiteId>,
    /// Whether the partner itself is in the transaction's write set (in
    /// which case remastering moves it along to the candidate site).
    pub in_write_set: bool,
}

/// Scoring inputs for one routing decision.
pub struct ScoreInputs<'a> {
    /// Number of sites `m`.
    pub num_sites: usize,
    /// Model weights.
    pub weights: &'a StrategyWeights,
    /// Write-set partitions with their current masters.
    pub partitions: &'a [(PartitionId, Option<SiteId>)],
    /// Write-frequency count of each write-set partition (parallel to
    /// `partitions`).
    pub partition_load: &'a [f64],
    /// Per-site total write-frequency mass under the current allocation.
    pub site_load: &'a [f64],
    /// Intra-transaction co-access partners per write-set partition.
    pub intra: &'a [Vec<CoAccess>],
    /// Inter-transaction co-access partners per write-set partition.
    pub inter: &'a [Vec<CoAccess>],
    /// Estimated svv per site (the selector's freshness cache).
    pub site_vvs: &'a [VersionVector],
    /// The requesting client's session vector.
    pub cvv: &'a VersionVector,
}

/// Squared L2 distance of the load distribution from uniform (see the
/// module-level transcription note on Eq. 2).
fn balance_dist(load: &[f64]) -> f64 {
    let total: f64 = load.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let uniform = 1.0 / load.len() as f64;
    load.iter()
        .map(|&l| {
            let d = uniform - l / total;
            d * d
        })
        .sum()
}

/// `f_balance(S)` (Eqs. 2–4): improvement in write balance from remastering
/// the write set to `S`, scaled by how imbalanced the system is.
fn f_balance(inputs: &ScoreInputs<'_>, candidate: SiteId) -> f64 {
    let before = balance_dist(inputs.site_load);
    let mut after_load = inputs.site_load.to_vec();
    for ((_, master), &load) in inputs.partitions.iter().zip(inputs.partition_load) {
        if let Some(m) = master {
            after_load[m.as_usize()] -= load;
        }
        after_load[candidate.as_usize()] += load;
    }
    let after = balance_dist(&after_load);
    let delta = before - after;
    let rate = before.max(after);
    delta * rate.exp()
}

/// `f_refresh_delay(S)` (Eq. 5): how many refresh transactions `S` must
/// apply before the transaction can begin — the L1 lag of `S`'s estimated
/// svv behind the max of the client's session vector and the releasing
/// sites' svvs.
fn f_refresh_delay(inputs: &ScoreInputs<'_>, candidate: SiteId) -> f64 {
    let mut target = inputs.cvv.clone();
    for (_, master) in inputs.partitions {
        match master {
            Some(m) if *m != candidate => target.merge_max(&inputs.site_vvs[m.as_usize()]),
            _ => {}
        }
    }
    inputs.site_vvs[candidate.as_usize()].lag_behind(&target) as f64
}

/// The `single_sited` indicator of Eqs. 6–7: +1 if remastering the write set
/// to `candidate` leaves `d1` and its partner co-located, −1 if it splits a
/// currently co-located pair apart, 0 if they are apart both before and
/// after.
fn single_sited(d1_master: Option<SiteId>, partner: &CoAccess, candidate: SiteId) -> f64 {
    let partner_after = if partner.in_write_set {
        Some(candidate)
    } else {
        partner.partner_master
    };
    let together_after = partner_after == Some(candidate);
    let together_before = match (d1_master, partner.partner_master) {
        (Some(a), Some(b)) => a == b,
        _ => false,
    };
    if together_after {
        1.0
    } else if together_before {
        -1.0
    } else {
        0.0
    }
}

/// `f_intra_txn` / `f_inter_txn` (Eqs. 6–7): probability-weighted
/// localization score over co-access partners.
fn f_localization(
    partitions: &[(PartitionId, Option<SiteId>)],
    partners: &[Vec<CoAccess>],
    candidate: SiteId,
) -> f64 {
    let mut score = 0.0;
    for ((_, master), coaccesses) in partitions.iter().zip(partners) {
        for partner in coaccesses {
            score += partner.probability * single_sited(*master, partner, candidate);
        }
    }
    score
}

/// Scores every site as a remastering destination (Eq. 8), keeping the four
/// weighted feature terms separate so the decision can be explained — the
/// flight recorder stores these per-candidate tables in `RemasterDecision`
/// events. `reachable` is initialised `true`; the caller masks out sites it
/// cannot reach.
pub fn score_sites_detailed(inputs: &ScoreInputs<'_>) -> Vec<CandidateScore> {
    debug_assert_eq!(inputs.partitions.len(), inputs.partition_load.len());
    debug_assert_eq!(inputs.partitions.len(), inputs.intra.len());
    debug_assert_eq!(inputs.partitions.len(), inputs.inter.len());
    let w = inputs.weights;
    (0..inputs.num_sites)
        .map(|i| {
            let s = SiteId::new(i);
            let balance = if w.balance != 0.0 {
                w.balance * f_balance(inputs, s)
            } else {
                0.0
            };
            let delay = if w.delay != 0.0 {
                w.delay * f_refresh_delay(inputs, s)
            } else {
                0.0
            };
            let intra = if w.intra_txn != 0.0 {
                w.intra_txn * f_localization(inputs.partitions, inputs.intra, s)
            } else {
                0.0
            };
            let inter = if w.inter_txn != 0.0 {
                w.inter_txn * f_localization(inputs.partitions, inputs.inter, s)
            } else {
                0.0
            };
            CandidateScore {
                site: i as u32,
                balance,
                delay,
                intra,
                inter,
                total: balance - delay + intra + inter,
                reachable: true,
            }
        })
        .collect()
}

/// Scores every site as a remastering destination (Eq. 8). Returns one
/// `f_benefit` value per site.
pub fn score_sites(inputs: &ScoreInputs<'_>) -> Vec<f64> {
    score_sites_detailed(inputs)
        .into_iter()
        .map(|c| c.total)
        .collect()
}

/// Scores a *group* of queued partitions as one remastering unit
/// (epoch-batched group remastering) and confirms its destination.
///
/// The group is handed in through the same [`ScoreInputs`] as a write set:
/// `partitions` holds every queued partition, and partners inside the group
/// use `in_write_set: true` so localization treats them as moving together.
/// The shared Eq. 8 feature inputs — the before/after balance distance, the
/// candidate's svv lag target, the localization sums — are therefore
/// computed once per candidate site for the whole group instead of once per
/// routed transaction, which is what makes the epoch flush cheaper than the
/// per-transaction decisions it replaces.
///
/// `unreachable[i]` masks site `i` out of the argmax; if every site is
/// masked the mask is ignored (matching the selector's inline behaviour:
/// with nowhere reachable, pick on merit and let the RPC layer surface the
/// failure). Returns the confirmed destination and the per-candidate table
/// for the flight recorder.
pub fn confirm_group_destination(
    inputs: &ScoreInputs<'_>,
    unreachable: &[bool],
) -> (SiteId, Vec<CandidateScore>) {
    debug_assert_eq!(unreachable.len(), inputs.num_sites);
    let mut candidates = score_sites_detailed(inputs);
    if unreachable.iter().any(|u| !u) {
        for (candidate, &masked) in candidates.iter_mut().zip(unreachable) {
            if masked {
                candidate.reachable = false;
            }
        }
    }
    let scores: Vec<f64> = candidates
        .iter()
        .map(|c| {
            if c.reachable {
                c.total
            } else {
                f64::NEG_INFINITY
            }
        })
        .collect();
    (best_site(&scores), candidates)
}

/// Argmax with deterministic low-site tie-breaking.
pub fn best_site(scores: &[f64]) -> SiteId {
    let mut best = 0;
    for (i, &s) in scores.iter().enumerate() {
        if s > scores[best] {
            best = i;
        }
    }
    SiteId::new(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> PartitionId {
        PartitionId::new(i)
    }

    fn site(i: usize) -> SiteId {
        SiteId::new(i)
    }

    #[allow(clippy::too_many_arguments)]
    fn base_inputs<'a>(
        weights: &'a StrategyWeights,
        partitions: &'a [(PartitionId, Option<SiteId>)],
        partition_load: &'a [f64],
        site_load: &'a [f64],
        intra: &'a [Vec<CoAccess>],
        inter: &'a [Vec<CoAccess>],
        site_vvs: &'a [VersionVector],
        cvv: &'a VersionVector,
    ) -> ScoreInputs<'a> {
        ScoreInputs {
            num_sites: site_load.len(),
            weights,
            partitions,
            partition_load,
            site_load,
            intra,
            inter,
            site_vvs,
            cvv,
        }
    }

    fn zero_vvs(m: usize) -> Vec<VersionVector> {
        (0..m).map(|_| VersionVector::zero(m)).collect()
    }

    #[test]
    fn balance_dist_zero_at_uniform() {
        assert_eq!(balance_dist(&[5.0, 5.0]), 0.0);
        assert!(balance_dist(&[10.0, 0.0]) > 0.0);
        assert_eq!(balance_dist(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn balance_prefers_least_loaded_site() {
        let weights = StrategyWeights {
            balance: 1.0,
            delay: 0.0,
            intra_txn: 0.0,
            inter_txn: 0.0,
        };
        let partitions = [(pid(1), None)];
        let load = [1.0];
        let site_load = [10.0, 2.0];
        let intra = vec![vec![]];
        let inter = vec![vec![]];
        let vvs = zero_vvs(2);
        let cvv = VersionVector::zero(2);
        let inputs = base_inputs(
            &weights,
            &partitions,
            &load,
            &site_load,
            &intra,
            &inter,
            &vvs,
            &cvv,
        );
        let scores = score_sites(&inputs);
        assert!(
            scores[1] > scores[0],
            "underloaded site must score higher: {scores:?}"
        );
        assert_eq!(best_site(&scores), site(1));
    }

    #[test]
    fn delay_penalizes_lagging_sites() {
        let weights = StrategyWeights {
            balance: 0.0,
            delay: 1.0,
            intra_txn: 0.0,
            inter_txn: 0.0,
        };
        // Partition mastered at site 0; candidates 1 and 2 differ in lag.
        let partitions = [(pid(1), Some(site(0)))];
        let load = [1.0];
        let site_load = [0.0, 0.0, 0.0];
        let intra = vec![vec![]];
        let inter = vec![vec![]];
        let vvs = vec![
            VersionVector::from_counts(vec![10, 0, 0]),
            VersionVector::from_counts(vec![9, 0, 0]), // lags releaser by 1
            VersionVector::from_counts(vec![2, 0, 0]), // lags by 8
        ];
        let cvv = VersionVector::zero(3);
        let inputs = base_inputs(
            &weights,
            &partitions,
            &load,
            &site_load,
            &intra,
            &inter,
            &vvs,
            &cvv,
        );
        let scores = score_sites(&inputs);
        assert!(scores[1] > scores[2], "{scores:?}");
        // The current master has no lag at all.
        assert!(scores[0] > scores[1], "{scores:?}");
    }

    #[test]
    fn single_sited_matches_paper_semantics() {
        let partner_apart = CoAccess {
            partner: pid(2),
            probability: 1.0,
            partner_master: Some(site(1)),
            in_write_set: false,
        };
        // Moving d1 (at site 0) to site 1 joins them: +1.
        assert_eq!(single_sited(Some(site(0)), &partner_apart, site(1)), 1.0);
        // Moving d1 to site 2 leaves them apart (were apart): 0.
        assert_eq!(single_sited(Some(site(0)), &partner_apart, site(2)), 0.0);
        let partner_together = CoAccess {
            partner: pid(2),
            probability: 1.0,
            partner_master: Some(site(0)),
            in_write_set: false,
        };
        // d1 and partner both at site 0; moving d1 to 1 splits them: −1.
        assert_eq!(
            single_sited(Some(site(0)), &partner_together, site(1)),
            -1.0
        );
        // Keeping d1 at site 0 keeps them together: +1.
        assert_eq!(single_sited(Some(site(0)), &partner_together, site(0)), 1.0);
        // Partner in the write set moves along: always together: +1.
        let partner_moving = CoAccess {
            partner: pid(2),
            probability: 1.0,
            partner_master: Some(site(1)),
            in_write_set: true,
        };
        assert_eq!(single_sited(Some(site(0)), &partner_moving, site(2)), 1.0);
    }

    #[test]
    fn intra_localization_pulls_toward_partners() {
        let weights = StrategyWeights {
            balance: 0.0,
            delay: 0.0,
            intra_txn: 1.0,
            inter_txn: 0.0,
        };
        let partitions = [(pid(1), Some(site(0)))];
        let load = [1.0];
        let site_load = [0.0, 0.0];
        // A frequently co-accessed partner lives at site 1.
        let intra = vec![vec![CoAccess {
            partner: pid(2),
            probability: 0.9,
            partner_master: Some(site(1)),
            in_write_set: false,
        }]];
        let inter = vec![vec![]];
        let vvs = zero_vvs(2);
        let cvv = VersionVector::zero(2);
        let inputs = base_inputs(
            &weights,
            &partitions,
            &load,
            &site_load,
            &intra,
            &inter,
            &vvs,
            &cvv,
        );
        let scores = score_sites(&inputs);
        assert!(scores[1] > scores[0], "{scores:?}");
        assert!((scores[1] - 0.9).abs() < 1e-9);
    }

    #[test]
    fn combined_model_respects_weights() {
        // Heavy balance weight overrides localization preference.
        let weights = StrategyWeights {
            balance: 1_000_000.0,
            delay: 0.0,
            intra_txn: 1.0,
            inter_txn: 0.0,
        };
        let partitions = [(pid(1), Some(site(0)))];
        let load = [5.0];
        let site_load = [100.0, 0.0];
        let intra = vec![vec![CoAccess {
            partner: pid(2),
            probability: 1.0,
            partner_master: Some(site(0)),
            in_write_set: false,
        }]];
        let inter = vec![vec![]];
        let vvs = zero_vvs(2);
        let cvv = VersionVector::zero(2);
        let inputs = base_inputs(
            &weights,
            &partitions,
            &load,
            &site_load,
            &intra,
            &inter,
            &vvs,
            &cvv,
        );
        let scores = score_sites(&inputs);
        assert_eq!(
            best_site(&scores),
            site(1),
            "balance must dominate: {scores:?}"
        );
    }

    #[test]
    fn group_destination_shares_features_and_masks_unreachable() {
        let weights = StrategyWeights {
            balance: 1.0,
            delay: 0.0,
            intra_txn: 1.0,
            inter_txn: 0.0,
        };
        // A queued group of two partitions, both at the overloaded site 0,
        // co-accessed with each other (in-group partners move together).
        let partitions = [(pid(1), Some(site(0))), (pid(2), Some(site(0)))];
        let load = [3.0, 3.0];
        let site_load = [20.0, 1.0, 1.0];
        let intra = vec![
            vec![CoAccess {
                partner: pid(2),
                probability: 1.0,
                partner_master: Some(site(0)),
                in_write_set: true,
            }],
            vec![CoAccess {
                partner: pid(1),
                probability: 1.0,
                partner_master: Some(site(0)),
                in_write_set: true,
            }],
        ];
        let inter = vec![vec![], vec![]];
        let vvs = zero_vvs(3);
        let cvv = VersionVector::zero(3);
        let inputs = base_inputs(
            &weights,
            &partitions,
            &load,
            &site_load,
            &intra,
            &inter,
            &vvs,
            &cvv,
        );
        let (dest, cands) = confirm_group_destination(&inputs, &[false, false, false]);
        // Balance pulls the group off site 0, tie-break toward site 1; the
        // per-candidate table matches the shared scoring exactly.
        assert_eq!(dest, site(1));
        let reference = score_sites_detailed(&inputs);
        assert_eq!(cands.len(), reference.len());
        for (c, r) in cands.iter().zip(&reference) {
            assert_eq!(c.total, r.total);
        }
        // Masking site 1 re-routes the group to site 2.
        let (dest, cands) = confirm_group_destination(&inputs, &[false, true, false]);
        assert_eq!(dest, site(2));
        assert!(!cands[1].reachable);
        // All-unreachable ignores the mask instead of picking garbage.
        let (dest, _) = confirm_group_destination(&inputs, &[true, true, true]);
        assert_eq!(dest, site(1));
    }

    #[test]
    fn best_site_breaks_ties_toward_lowest_id() {
        assert_eq!(best_site(&[1.0, 1.0, 0.5]), site(0));
        assert_eq!(best_site(&[0.0, 2.0, 2.0]), site(1));
    }

    #[test]
    fn detailed_scores_decompose_the_total() {
        let weights = StrategyWeights {
            balance: 2.0,
            delay: 1.0,
            intra_txn: 1.5,
            inter_txn: 0.5,
        };
        let partitions = [(pid(1), Some(site(0)))];
        let load = [1.0];
        let site_load = [4.0, 1.0];
        let intra = vec![vec![CoAccess {
            partner: pid(2),
            probability: 0.8,
            partner_master: Some(site(1)),
            in_write_set: false,
        }]];
        let inter = vec![vec![CoAccess {
            partner: pid(3),
            probability: 0.4,
            partner_master: Some(site(0)),
            in_write_set: false,
        }]];
        let vvs = vec![
            VersionVector::from_counts(vec![5, 0]),
            VersionVector::from_counts(vec![1, 0]),
        ];
        let cvv = VersionVector::zero(2);
        let inputs = base_inputs(
            &weights,
            &partitions,
            &load,
            &site_load,
            &intra,
            &inter,
            &vvs,
            &cvv,
        );
        let detailed = score_sites_detailed(&inputs);
        let flat = score_sites(&inputs);
        assert_eq!(detailed.len(), 2);
        for (c, total) in detailed.iter().zip(&flat) {
            assert_eq!(c.total, *total);
            assert!(
                (c.balance - c.delay + c.intra + c.inter - c.total).abs() < 1e-12,
                "features must sum to the total: {c:?}"
            );
            assert!(c.reachable);
        }
        // Site 1 lags the releaser (site 0) by 4, so it pays a delay penalty
        // site 0 does not; the co-access partner at site 1 pulls intra there.
        assert!(detailed[1].delay > detailed[0].delay);
        assert!(detailed[1].intra > detailed[0].intra);
        assert!(detailed[0].inter > detailed[1].inter);
    }
}
