//! The selector's partition-information table (§V-B).
//!
//! "For each partition group, DynaMast stores partition information that
//! contains the current master location and a readers-writer lock. [...] The
//! site selector acquires each accessed partition's lock in shared read mode.
//! If one site masters all partitions, then the site selector routes the
//! transaction there [...]. Otherwise, the site selector upgrades each
//! partition information lock to exclusive write mode, which prevents
//! concurrent remastering of a partition."
//!
//! Locks are always taken in ascending partition-id order, so concurrent
//! routings with overlapping partition sets cannot deadlock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dynamast_common::ids::{PartitionId, SiteId};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Mutable per-partition state guarded by the entry's RW lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionMeta {
    /// Current master, or `None` if the partition has never been placed
    /// (DynaMast starts with no fixed placement, §VI-A1).
    pub master: Option<SiteId>,
}

/// One partition's information record.
///
/// The authoritative master lives under the RW lock; a lock-free mirror
/// (`master_cache`) serves the strategy model's partner lookups, which must
/// not take partition locks (the scoring thread already holds exclusive
/// locks on the write-set entries, and a partner may *be* one of them).
pub struct PartitionEntry {
    meta: RwLock<PartitionMeta>,
    /// `0` = unplaced, otherwise `site + 1`.
    master_cache: AtomicU64,
}

impl PartitionEntry {
    fn new(master: Option<SiteId>) -> Arc<Self> {
        Arc::new(PartitionEntry {
            meta: RwLock::new(PartitionMeta { master }),
            master_cache: AtomicU64::new(encode_master(master)),
        })
    }

    /// Current master without taking the routing lock (statistics, strategy
    /// partner lookups, diagnostics — racy by design).
    pub fn master_relaxed(&self) -> Option<SiteId> {
        decode_master(self.master_cache.load(Ordering::Relaxed))
    }

    /// Updates both the locked meta and the lock-free mirror. The caller
    /// must hold this entry's exclusive lock guard.
    pub fn set_master(&self, guard: &mut RwLockWriteGuard<'_, PartitionMeta>, master: SiteId) {
        guard.master = Some(master);
        self.master_cache
            .store(encode_master(Some(master)), Ordering::Relaxed);
    }
}

fn encode_master(master: Option<SiteId>) -> u64 {
    master.map_or(0, |s| u64::from(s.raw()) + 1)
}

fn decode_master(raw: u64) -> Option<SiteId> {
    (raw != 0).then(|| SiteId::new((raw - 1) as usize))
}

/// The concurrent partition-information table.
pub struct PartitionMap {
    entries: RwLock<HashMap<PartitionId, Arc<PartitionEntry>>>,
}

impl Default for PartitionMap {
    fn default() -> Self {
        Self::new()
    }
}

impl PartitionMap {
    /// Creates an empty map (every partition unplaced).
    pub fn new() -> Self {
        PartitionMap {
            entries: RwLock::new(HashMap::new()),
        }
    }

    /// Seeds initial mastership assignments (the Fig. 5b adaptivity
    /// experiment manually range-assigns mastership before the run; the
    /// single-master configuration seeds everything at the master site).
    pub fn seed(&self, assignments: impl IntoIterator<Item = (PartitionId, SiteId)>) {
        let mut entries = self.entries.write();
        for (p, s) in assignments {
            entries.insert(p, PartitionEntry::new(Some(s)));
        }
    }

    /// Fetches (creating if absent, as unplaced) the entries for a sorted,
    /// deduplicated partition list.
    pub fn entries_for(&self, partitions: &[PartitionId]) -> Vec<Arc<PartitionEntry>> {
        debug_assert!(
            partitions.windows(2).all(|w| w[0] < w[1]),
            "must be sorted+deduped"
        );
        {
            let entries = self.entries.read();
            if let Some(found) = partitions
                .iter()
                .map(|p| entries.get(p).cloned())
                .collect::<Option<Vec<_>>>()
            {
                return found;
            }
        }
        let mut entries = self.entries.write();
        partitions
            .iter()
            .map(|p| {
                Arc::clone(
                    entries
                        .entry(*p)
                        .or_insert_with(|| PartitionEntry::new(None)),
                )
            })
            .collect()
    }

    /// Read-only lookup without creating an entry (strategy partner-master
    /// queries).
    pub fn entries_for_existing(&self, partition: PartitionId) -> Option<Arc<PartitionEntry>> {
        self.entries.read().get(&partition).cloned()
    }

    /// Locks the given entries in shared mode (routing fast path). Entries
    /// must be in ascending partition order (as produced by
    /// [`PartitionMap::entries_for`]).
    pub fn lock_shared<'a>(
        &self,
        entries: &'a [Arc<PartitionEntry>],
    ) -> Vec<RwLockReadGuard<'a, PartitionMeta>> {
        entries.iter().map(|e| e.meta.read()).collect()
    }

    /// Locks the given entries in exclusive mode (remastering path).
    pub fn lock_exclusive<'a>(
        &self,
        entries: &'a [Arc<PartitionEntry>],
    ) -> Vec<RwLockWriteGuard<'a, PartitionMeta>> {
        entries.iter().map(|e| e.meta.write()).collect()
    }

    /// Snapshot of all placements (diagnostics, recovery assertions,
    /// routing-distribution reports).
    pub fn placements(&self) -> Vec<(PartitionId, Option<SiteId>)> {
        self.entries
            .read()
            .iter()
            .map(|(p, e)| (*p, e.master_relaxed()))
            .collect()
    }

    /// Number of partitions mastered per site (Fig. 5a routing analysis).
    pub fn masters_per_site(&self, num_sites: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_sites];
        for (_, master) in self.placements() {
            if let Some(s) = master {
                counts[s.as_usize()] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn pid(i: usize) -> PartitionId {
        PartitionId::new(i)
    }

    #[test]
    fn unseen_partitions_are_unplaced() {
        let map = PartitionMap::new();
        let entries = map.entries_for(&[pid(1), pid(2)]);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].master_relaxed(), None);
    }

    #[test]
    fn entries_are_shared_across_lookups() {
        let map = PartitionMap::new();
        let a = map.entries_for(&[pid(7)]);
        {
            let mut guards = map.lock_exclusive(&a);
            a[0].set_master(&mut guards[0], SiteId::new(2));
        }
        let b = map.entries_for(&[pid(7)]);
        assert_eq!(b[0].master_relaxed(), Some(SiteId::new(2)));
    }

    #[test]
    fn seed_sets_initial_masters() {
        let map = PartitionMap::new();
        map.seed([(pid(1), SiteId::new(0)), (pid(2), SiteId::new(1))]);
        assert_eq!(map.masters_per_site(2), vec![1, 1]);
    }

    #[test]
    fn shared_locks_allow_concurrent_readers() {
        let map = PartitionMap::new();
        let entries = map.entries_for(&[pid(1)]);
        let _g1 = map.lock_shared(&entries);
        let _g2 = map.lock_shared(&entries); // would deadlock if exclusive
    }

    #[test]
    fn exclusive_lock_blocks_shared() {
        let map = Arc::new(PartitionMap::new());
        let entries = map.entries_for(&[pid(1)]);
        let guards = map.lock_exclusive(&entries);
        let map2 = Arc::clone(&map);
        let reader = thread::spawn(move || {
            let entries = map2.entries_for(&[pid(1)]);
            let _g = map2.lock_shared(&entries);
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!reader.is_finished(), "shared must wait for exclusive");
        drop(guards);
        reader.join().unwrap();
    }

    #[test]
    fn placements_reports_all_entries() {
        let map = PartitionMap::new();
        map.seed([(pid(3), SiteId::new(0))]);
        map.entries_for(&[pid(4)]);
        let mut placements = map.placements();
        placements.sort_by_key(|(p, _)| *p);
        assert_eq!(
            placements,
            vec![(pid(3), Some(SiteId::new(0))), (pid(4), None)]
        );
    }
}
