//! The site selector (§III-B, §IV, §V-B).
//!
//! Write routing follows §V-B exactly: look up the master of each write-set
//! partition under shared locks; if one site masters everything, route there;
//! otherwise upgrade to exclusive locks, pick a destination with the strategy
//! model, and remaster via parallel release/grant RPCs (Algorithm 1 — each
//! partition's grant is issued immediately after its release completes, and
//! partitions proceed in parallel). The element-wise max of the grant
//! responses becomes the transaction's minimum begin version.
//!
//! Read routing (§IV-B) picks a random site whose estimated svv satisfies
//! the client's session vector, spreading load while minimizing blocking.
//! The svv estimates come from release/grant responses plus a lightweight
//! periodic probe (`GetVv`), standing in for whatever heartbeat the paper's
//! implementation used. The estimates live in a lock-free
//! [`FreshnessCache`](crate::freshness::FreshnessCache) and the read-routing
//! RNG is thread-local, so routing threads share no locks on this path.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use dynamast_common::codec::encode_to_vec;
use dynamast_common::ids::{ClientId, Key, PartitionId, SiteId};
use dynamast_common::metrics::{Counter, LatencyHistogram};
use dynamast_common::trace::{
    next_trace_id, CandidateScore, FlightRecorder, TraceKind, TracePayload, TraceSite,
};
use dynamast_common::{DynaError, Result, SystemConfig, VersionVector};
use dynamast_network::{CrashPoint, CrashSwitch, EndpointId, Network, TrafficCategory};
use dynamast_site::messages::{expect_ok, SiteRequest, SiteResponse};
use dynamast_storage::Catalog;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::freshness::FreshnessCache;
use crate::partition_map::PartitionMap;
use crate::replica_map::ReplicaMap;
use crate::stats::{AccessStats, StatsConfig};
use crate::strategy::{confirm_group_destination, CoAccess, ScoreInputs};

/// Imbalance probe (epoch batching only): a sole-master fast-path group is
/// considered for a deferred move when its master's tracked load exceeds
/// `REBALANCE_FACTOR ×` the mean site load, once at least
/// `REBALANCE_MIN_TOTAL` writes have been attributed overall. Both reads are
/// relaxed-atomic approximations — the flush re-scores under exclusive locks
/// before anything actually moves.
const REBALANCE_FACTOR: f64 = 1.5;
const REBALANCE_MIN_TOTAL: f64 = 64.0;

/// Replica-provisioning planner thresholds (partial replication only): a
/// partition hotter than `PROVISION_HOT_FACTOR ×` the mean partition load
/// gains one copy per pass (widening toward all sites); one colder than
/// `PROVISION_COLD_FACTOR ×` the mean sheds its most expensive copy
/// (shrinking toward the floor). At most `PROVISION_MAX_OPS` installs/drops
/// per pass bound the background data-shipping burst, and nothing moves until
/// `PROVISION_MIN_TOTAL` accesses have been attributed overall.
const PROVISION_HOT_FACTOR: f64 = 2.0;
const PROVISION_COLD_FACTOR: f64 = 0.5;
const PROVISION_MIN_TOTAL: f64 = 64.0;
const PROVISION_MAX_OPS: usize = 4;

/// Eq. 8 has-copy feature weight: a candidate already holding every write-set
/// partition is credited this fraction of the score spread, because granting
/// there needs no copy install (data shipping) first.
const HAS_COPY_BONUS: f64 = 0.1;

/// How the selector places masters.
pub enum SelectorMode {
    /// The paper's adaptive strategies (Eqs. 2–8).
    Adaptive,
    /// Fixed placement function; never moves mastership. Used to express
    /// the single-master baseline (everything pinned to one site) inside
    /// the DynaMast framework, exactly as the paper's evaluation does.
    Pinned(Arc<dyn Fn(PartitionId) -> SiteId + Send + Sync>),
}

impl Clone for SelectorMode {
    fn clone(&self) -> Self {
        match self {
            SelectorMode::Adaptive => SelectorMode::Adaptive,
            SelectorMode::Pinned(pin) => SelectorMode::Pinned(Arc::clone(pin)),
        }
    }
}

/// Failover-related construction parameters for a [`SiteSelector`].
///
/// The defaults describe a first-generation selector with nothing to inherit;
/// a promoting standby (§V-C) passes the successor generation, the epoch
/// floor recovered from the durable logs, and the conservative session floor
/// rebuilt from fenced site svvs.
#[derive(Clone, Default)]
pub struct SelectorInit {
    /// Fencing token stamped on every remaster RPC this selector sends.
    pub generation: u64,
    /// Remaster epochs start above this value (a promoted selector must not
    /// reuse epochs its predecessor already burned — the sites' idempotency
    /// caches key on them).
    pub epoch_floor: u64,
    /// Conservative client-session reconstruction: element-wise max of the
    /// svvs collected while fencing. Merged into every routing decision's
    /// `min_vv` and into read-routing freshness checks, so a client whose
    /// pre-failover session state is unknown still reads its own writes.
    pub session_floor: Option<VersionVector>,
    /// Deterministic kill switch for crash-point injection tests.
    pub crash_switch: Option<Arc<CrashSwitch>>,
    /// Replica map inherited from a predecessor selector (§V-C promotion).
    /// The map is selector metadata about durable site state — copies
    /// survive a selector crash — so a promoting standby carries it over
    /// instead of rebuilding from the lazy defaults.
    pub replica_map: Option<Arc<ReplicaMap>>,
}

/// Outcome of routing one update transaction.
#[derive(Clone, Debug)]
pub struct RouteDecision {
    /// Site that will execute the transaction.
    pub site: SiteId,
    /// Minimum begin version (element-wise max of grant responses; zero if
    /// no remastering happened).
    pub min_vv: VersionVector,
    /// Time spent locking and looking up master locations (Fig. 7 "lookup").
    pub lookup: Duration,
    /// Time spent deciding and remastering (Fig. 7 "routing").
    pub routing: Duration,
    /// Whether any partition moved.
    pub remastered: bool,
}

/// One queued ownership move: where the partition should go and how many
/// transactions have been routed to its *current* master while it waited.
struct PendingMove {
    /// Destination decided at enqueue time (re-scored as a group at flush).
    /// May equal the current master — such entries are sticky "scored,
    /// stay put" markers that stop the imbalance probe from re-scoring the
    /// same group on every route; the flush discards them.
    dest: SiteId,
    /// Fast-path routes that executed at the old master since enqueue.
    deferrals: u32,
}

/// The epoch-batched pending-move queue (guarded by one mutex; touched only
/// when `remaster_batching` is enabled, and never while partition-map locks
/// are held — flushing acquires map locks *after* draining this).
#[derive(Default)]
struct EpochQueue {
    moves: HashMap<PartitionId, PendingMove>,
    /// When the first move of the open epoch was queued (time trigger).
    started: Option<Instant>,
}

/// The site selector.
pub struct SiteSelector {
    config: SystemConfig,
    mode: SelectorMode,
    catalog: Catalog,
    map: PartitionMap,
    stats: AccessStats,
    network: Arc<Network>,
    freshness: FreshnessCache,
    epoch: AtomicU64,
    /// This selector's fencing generation (see [`SelectorInit::generation`]).
    generation: u64,
    /// Post-failover session floor (see [`SelectorInit::session_floor`]).
    session_floor: Option<VersionVector>,
    /// Armed crash-point switch, if any (tests only).
    crash_switch: Option<Arc<CrashSwitch>>,
    /// Seed for the per-thread read-routing RNGs.
    rng_seed: u64,
    /// Flight recorder shared by the deployment (cached from the network at
    /// construction so the routing hot path never touches the fabric lock).
    recorder: Option<Arc<FlightRecorder>>,
    /// Transactions that required remastering (at least one release).
    pub remaster_ops: Arc<Counter>,
    /// Individual partitions whose mastership moved between sites.
    pub partitions_moved: Arc<Counter>,
    /// First-touch placements (no release involved; the paper's DynaMast
    /// starts unplaced, so early transactions *place* rather than remaster).
    pub placements: Arc<Counter>,
    /// Pending epoch-batched moves (empty unless `remaster_batching`).
    pending: Mutex<EpochQueue>,
    /// Single-flight guard: one epoch flush at a time, late callers skip.
    flush_in_progress: AtomicBool,
    /// Release/grant-class RPCs sent (inline, batched, and back-grants) —
    /// the denominator of the batching round-trip-reduction claim.
    pub remaster_rpcs: Arc<Counter>,
    /// Round trips avoided by coalescing queued moves into batch RPCs:
    /// `2 × moves − batch RPCs` accumulated per flush.
    pub remaster_rpcs_saved: Arc<Counter>,
    /// Partitions carried per batch RPC (bucketed via the latency histogram
    /// machinery; one "microsecond" = one partition).
    pub remaster_batch_size: Arc<LatencyHistogram>,
    /// Which sites hold a copy of each partition (a degenerate all-sites map
    /// under full replication).
    replica_map: Arc<ReplicaMap>,
    /// Serializes copy installs and drops across routing/planner threads —
    /// a site rejects a second concurrent install of the same partition, so
    /// contenders wait here instead of failing.
    provision_lock: Mutex<()>,
    /// Replica copies installed (planner widening, create-then-grant, and
    /// NotReplica repair).
    pub replica_adds: Arc<Counter>,
    /// Replica copies dropped by the provisioning planner.
    pub replica_drops: Arc<Counter>,
    /// Update transactions routed, per site.
    routed: Vec<Counter>,
}

impl SiteSelector {
    /// Creates a first-generation selector.
    pub fn new(
        config: SystemConfig,
        catalog: Catalog,
        mode: SelectorMode,
        network: Arc<Network>,
    ) -> Arc<Self> {
        Self::with_init(config, catalog, mode, network, SelectorInit::default())
    }

    /// Creates a selector with explicit failover parameters (used by
    /// standby promotion and crash-injection tests).
    pub fn with_init(
        config: SystemConfig,
        catalog: Catalog,
        mode: SelectorMode,
        network: Arc<Network>,
        init: SelectorInit,
    ) -> Arc<Self> {
        let m = config.num_sites;
        let stats = AccessStats::new(
            StatsConfig {
                sample_rate: config.sample_rate,
                history_capacity: config.history_capacity,
                inter_window: config.inter_txn_window,
                max_partners: config.max_coaccess_partners,
            },
            m,
            config.seed ^ 0x5E1E_C70A,
        );
        let recorder = network.recorder();
        let replica_map = init.replica_map.clone().unwrap_or_else(|| {
            Arc::new(ReplicaMap::new(
                m,
                config.replication.effective_floor(m),
                !config.replication.is_partial(),
            ))
        });
        Arc::new(SiteSelector {
            mode,
            catalog,
            map: PartitionMap::new(),
            stats,
            network,
            freshness: FreshnessCache::new(m),
            epoch: AtomicU64::new(init.epoch_floor),
            generation: init.generation,
            session_floor: init.session_floor,
            crash_switch: init.crash_switch,
            rng_seed: config.seed ^ 0x0EAD_0125,
            recorder,
            remaster_ops: Arc::new(Counter::new()),
            partitions_moved: Arc::new(Counter::new()),
            placements: Arc::new(Counter::new()),
            pending: Mutex::new(EpochQueue::default()),
            flush_in_progress: AtomicBool::new(false),
            remaster_rpcs: Arc::new(Counter::new()),
            remaster_rpcs_saved: Arc::new(Counter::new()),
            remaster_batch_size: Arc::new(LatencyHistogram::new()),
            replica_map,
            provision_lock: Mutex::new(()),
            replica_adds: Arc::new(Counter::new()),
            replica_drops: Arc::new(Counter::new()),
            routed: (0..m).map(|_| Counter::new()).collect(),
            config,
        })
    }

    /// The partition map (seeding, diagnostics, recovery).
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// The replica map: which sites hold a copy of each partition.
    pub fn replica_map(&self) -> &Arc<ReplicaMap> {
        &self.replica_map
    }

    /// This selector's fencing generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The placement mode (cloned so a standby can inherit it).
    pub fn mode(&self) -> SelectorMode {
        self.mode.clone()
    }

    /// Fails with [`DynaError::Network`] when the armed crash switch says
    /// the selector dies at `at` — and on every call once fired, freezing
    /// the crashed selector's protocol activity mid-remaster.
    fn crash_check(&self, at: CrashPoint) -> Result<()> {
        if self
            .crash_switch
            .as_ref()
            .is_some_and(|s| s.should_crash(at))
        {
            return Err(DynaError::Network("selector crashed"));
        }
        Ok(())
    }

    /// `true` once this selector's crash switch has fired.
    pub fn crashed(&self) -> bool {
        self.crash_switch.as_ref().is_some_and(|s| s.fired())
    }

    /// Merges the post-failover session floor into a routing decision's
    /// minimum begin version.
    fn with_session_floor(&self, mut vv: VersionVector) -> VersionVector {
        if let Some(floor) = &self.session_floor {
            vv.merge_max(floor);
        }
        vv
    }

    /// Records one selector-side flight-recorder event, if a recorder is
    /// attached to this deployment.
    #[inline]
    fn trace(&self, txn_id: u64, kind: TraceKind, payload: TracePayload) {
        if let Some(rec) = &self.recorder {
            rec.record(txn_id, TraceSite::Selector, kind, payload);
        }
    }

    /// Records a release/grant protocol step.
    fn trace_remaster(
        &self,
        txn_id: u64,
        kind: TraceKind,
        partition: PartitionId,
        from: SiteId,
        to: SiteId,
        epoch: u64,
    ) {
        self.trace(
            txn_id,
            kind,
            TracePayload::Remaster {
                partition: partition.raw(),
                from: from.raw(),
                to: to.raw(),
                epoch,
            },
        );
    }

    /// The statistics tracker.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Update transactions routed per site.
    pub fn routed_per_site(&self) -> Vec<u64> {
        self.routed.iter().map(Counter::get).collect()
    }

    /// Merges a freshness observation into the svv cache (lock-free).
    pub fn observe_site_vv(&self, site: SiteId, vv: &VersionVector) {
        self.freshness.observe(site, vv);
    }

    /// Starts a background thread probing every site's svv at `interval`.
    pub fn start_vv_probe(self: &Arc<Self>, interval: Duration) -> ProbeHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let selector = Arc::clone(self);
        let stop2 = Arc::clone(&stop);
        let thread = thread::Builder::new()
            .name("selector-vv-probe".into())
            .spawn(move || {
                // Probe waits are bounded: a crashed or partitioned site
                // must not wedge the probe loop (and with it the freshness
                // cache for every *other* site).
                let patience = selector.network.config().retry.attempt_timeout;
                while !stop2.load(Ordering::Relaxed) {
                    for i in 0..selector.config.num_sites {
                        let req = Bytes::from(encode_to_vec(&SiteRequest::GetVv));
                        let reply = selector
                            .network
                            .rpc_async(
                                EndpointId::Site(i as u32),
                                TrafficCategory::ClientSelector,
                                req,
                            )
                            .and_then(|pending| pending.wait_timeout(patience));
                        if let Ok(reply) = reply {
                            if let Ok(SiteResponse::Vv { svv }) = expect_ok(&reply) {
                                selector.observe_site_vv(SiteId::new(i), &svv);
                            }
                        }
                    }
                    // The probe doubles as the epoch clock: an idle workload
                    // must not strand a queued move past `epoch_interval`.
                    if selector.config.remaster_batching {
                        let _ = selector.flush_epoch_if_due();
                    }
                    // Replica provisioning rides the same cadence: between
                    // probe rounds the planner widens hot partitions and
                    // shrinks cold ones back toward the floor.
                    if selector.replica_map.is_partial() {
                        selector.provision_now();
                    }
                    thread::sleep(interval);
                }
            })
            .expect("spawn vv probe");
        ProbeHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// Routes an update transaction, remastering if necessary (Algorithm 1).
    /// Allocates a fresh trace id; callers that correlate routing with
    /// execution use [`SiteSelector::route_update_traced`].
    pub fn route_update(
        &self,
        client: ClientId,
        cvv: &VersionVector,
        write_set: &[Key],
    ) -> Result<RouteDecision> {
        self.route_update_traced(next_trace_id(), client, cvv, write_set)
    }

    /// Routes an update transaction under an externally allocated trace id,
    /// so the flight-recorder events it emits (route, remaster decision,
    /// release/grant steps) join the same causal timeline as the data site's
    /// begin/execute/commit events.
    pub fn route_update_traced(
        &self,
        txn_id: u64,
        client: ClientId,
        cvv: &VersionVector,
        write_set: &[Key],
    ) -> Result<RouteDecision> {
        // A crashed selector does nothing more — not even fast-path routing.
        if self.crashed() {
            return Err(DynaError::Network("selector crashed"));
        }
        let t0 = Instant::now();
        let mut partitions = Vec::with_capacity(write_set.len());
        for key in write_set {
            partitions.push(self.catalog.partition_of(*key)?);
        }
        partitions.sort_unstable();
        partitions.dedup();
        if partitions.is_empty() {
            return Err(DynaError::Internal("update with empty write set"));
        }
        let entries = self.map.entries_for(&partitions);

        // Fast path: shared locks; one master for everything → route there.
        {
            let guards = self.map.lock_shared(&entries);
            let masters: Vec<Option<SiteId>> = guards.iter().map(|g| g.master).collect();
            if let Some(site) = sole_master(&masters) {
                drop(guards);
                let lookup = t0.elapsed();
                self.stats
                    .record_write_set(client, Instant::now(), &partitions, &masters);
                // Epoch batching: the group stays where it is for now; the
                // tick may queue a move for the epoch boundary, and only a
                // blown wait budget forces the flush (and a re-route) here.
                let site = if self.config.remaster_batching {
                    self.epoch_tick(txn_id, cvv, &partitions, site)?
                } else {
                    site
                };
                self.routed[site.as_usize()].inc();
                self.trace(
                    txn_id,
                    TraceKind::Route,
                    TracePayload::Route {
                        dest: site.raw(),
                        partitions: partitions.len() as u32,
                        fast_path: true,
                        remastered: false,
                    },
                );
                return Ok(RouteDecision {
                    site,
                    min_vv: self.with_session_floor(VersionVector::zero(self.config.num_sites)),
                    lookup,
                    routing: Duration::ZERO,
                    remastered: false,
                });
            }
        }

        // Slow path: exclusive locks (prevents concurrent remastering of any
        // of these partitions), re-check, then decide and remaster.
        let mut guards = self.map.lock_exclusive(&entries);
        let masters: Vec<Option<SiteId>> = guards.iter().map(|g| g.master).collect();
        let lookup = t0.elapsed();
        let t_route = Instant::now();
        if let Some(site) = sole_master(&masters) {
            drop(guards);
            self.stats
                .record_write_set(client, Instant::now(), &partitions, &masters);
            self.routed[site.as_usize()].inc();
            self.trace(
                txn_id,
                TraceKind::Route,
                TracePayload::Route {
                    dest: site.raw(),
                    partitions: partitions.len() as u32,
                    fast_path: false,
                    remastered: false,
                },
            );
            return Ok(RouteDecision {
                site,
                min_vv: self.with_session_floor(VersionVector::zero(self.config.num_sites)),
                lookup,
                routing: t_route.elapsed(),
                remastered: false,
            });
        }

        // Record the access before scoring so frequencies include this
        // transaction, then choose the destination.
        self.stats
            .record_write_set(client, Instant::now(), &partitions, &masters);
        let dest = match &self.mode {
            SelectorMode::Pinned(pin) => {
                let dest = pin(partitions[0]);
                if partitions.iter().any(|p| pin(*p) != dest) {
                    return Err(DynaError::Internal(
                        "pinned selector cannot split a write set",
                    ));
                }
                dest
            }
            SelectorMode::Adaptive => self.decide_destination(txn_id, &partitions, &masters, cvv),
        };

        // Create-then-grant (partial replication): a grant can only land on
        // a site that holds a copy, so ship any missing copies to `dest`
        // before the release/grant protocol below. Runs inside the exclusive
        // map window the remaster RPCs already occupy, so no concurrent
        // route re-decides these partitions mid-install.
        if self.replica_map.is_partial() {
            for (i, master) in masters.iter().enumerate() {
                if *master != Some(dest) {
                    self.ensure_replica(dest, partitions[i])?;
                }
            }
        }

        // Remaster every partition not already mastered at `dest`
        // (Algorithm 1): parallel releases; each grant fires as soon as its
        // release returns.
        let mut out_vv = VersionVector::zero(self.config.num_sites);
        let mut moved = 0u64;
        let mut placed = 0u64;
        // Create-then-grant moves whose releaser's copy should retire once
        // mastership lands (frozen replica sets: the copy budget is pinned,
        // so a copy *follows* the master instead of widening the set).
        let mut follow: Vec<(PartitionId, SiteId)> = Vec::new();
        let mut pending_releases = Vec::new();
        // (write-set index, epoch, grant request, in-flight reply, releaser).
        let mut pending_grants: Vec<(usize, u64, SiteRequest, Result<_>, Option<SiteId>)> =
            Vec::new();
        for (i, master) in masters.iter().enumerate() {
            match master {
                Some(m) if *m == dest => {}
                Some(m) => {
                    self.crash_check(CrashPoint::BeforeReleaseSend)?;
                    let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
                    let req = SiteRequest::Release {
                        partition: partitions[i],
                        epoch,
                        generation: self.generation,
                    };
                    self.remaster_rpcs.inc();
                    let pending = self.network.rpc_async(
                        EndpointId::Site(m.raw()),
                        TrafficCategory::Remaster,
                        Bytes::from(encode_to_vec(&req)),
                    );
                    self.trace_remaster(
                        txn_id,
                        TraceKind::ReleaseSend,
                        partitions[i],
                        *m,
                        dest,
                        epoch,
                    );
                    if self.config.sequential_remastering {
                        // Ablation: complete this partition's release AND
                        // grant before touching the next partition.
                        let rel_vv = match expect_ok(&self.settle(*m, &req, pending)?)? {
                            SiteResponse::Released { rel_vv } => rel_vv,
                            _ => return Err(DynaError::Internal("unexpected release response")),
                        };
                        self.trace_remaster(
                            txn_id,
                            TraceKind::ReleaseAck,
                            partitions[i],
                            *m,
                            dest,
                            epoch,
                        );
                        self.crash_check(CrashPoint::AfterReleaseAck)?;
                        self.observe_site_vv(*m, &rel_vv);
                        self.crash_check(CrashPoint::BeforeGrantSend)?;
                        let grant = SiteRequest::Grant {
                            partition: partitions[i],
                            epoch,
                            rel_vv,
                            generation: self.generation,
                        };
                        self.remaster_rpcs.inc();
                        let sent = self.network.rpc_async(
                            EndpointId::Site(dest.raw()),
                            TrafficCategory::Remaster,
                            Bytes::from(encode_to_vec(&grant)),
                        );
                        self.trace_remaster(
                            txn_id,
                            TraceKind::GrantSend,
                            partitions[i],
                            *m,
                            dest,
                            epoch,
                        );
                        self.crash_check(CrashPoint::AfterGrantSend)?;
                        let reply = match self.settle(dest, &grant, sent) {
                            Ok(reply) => reply,
                            Err(e) => {
                                self.back_grant(Some(*m), &grant);
                                return Err(e);
                            }
                        };
                        let grant_vv = match expect_ok(&reply)? {
                            SiteResponse::Granted { grant_vv } => grant_vv,
                            _ => return Err(DynaError::Internal("unexpected grant response")),
                        };
                        self.trace_remaster(
                            txn_id,
                            TraceKind::GrantAck,
                            partitions[i],
                            *m,
                            dest,
                            epoch,
                        );
                        out_vv.merge_max(&grant_vv);
                        entries[i].set_master(&mut guards[i], dest);
                        self.stats.on_remaster(partitions[i], dest);
                        self.drop_pending(partitions[i]);
                        follow.push((partitions[i], *m));
                        moved += 1;
                        continue;
                    }
                    pending_releases.push((i, *m, epoch, req, pending));
                }
                None => {
                    // First placement: no release necessary; grant directly.
                    self.crash_check(CrashPoint::BeforeGrantSend)?;
                    let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
                    let grant = SiteRequest::Grant {
                        partition: partitions[i],
                        epoch,
                        rel_vv: VersionVector::zero(self.config.num_sites),
                        generation: self.generation,
                    };
                    self.remaster_rpcs.inc();
                    let pending = self.network.rpc_async(
                        EndpointId::Site(dest.raw()),
                        TrafficCategory::Remaster,
                        Bytes::from(encode_to_vec(&grant)),
                    );
                    // First placements have no releaser; `from == to` marks
                    // a placement grant on the trace.
                    self.trace_remaster(
                        txn_id,
                        TraceKind::GrantSend,
                        partitions[i],
                        dest,
                        dest,
                        epoch,
                    );
                    self.crash_check(CrashPoint::AfterGrantSend)?;
                    placed += 1;
                    pending_grants.push((i, epoch, grant, pending, None));
                }
            }
        }
        for (i, releaser, epoch, req, pending) in pending_releases {
            let rel_vv = match expect_ok(&self.settle(releaser, &req, pending)?)? {
                SiteResponse::Released { rel_vv } => rel_vv,
                _ => return Err(DynaError::Internal("unexpected release response")),
            };
            self.trace_remaster(
                txn_id,
                TraceKind::ReleaseAck,
                partitions[i],
                releaser,
                dest,
                epoch,
            );
            self.crash_check(CrashPoint::AfterReleaseAck)?;
            self.observe_site_vv(releaser, &rel_vv);
            self.crash_check(CrashPoint::BeforeGrantSend)?;
            let grant = SiteRequest::Grant {
                partition: partitions[i],
                epoch,
                rel_vv,
                generation: self.generation,
            };
            self.remaster_rpcs.inc();
            let pending = self.network.rpc_async(
                EndpointId::Site(dest.raw()),
                TrafficCategory::Remaster,
                Bytes::from(encode_to_vec(&grant)),
            );
            self.trace_remaster(
                txn_id,
                TraceKind::GrantSend,
                partitions[i],
                releaser,
                dest,
                epoch,
            );
            self.crash_check(CrashPoint::AfterGrantSend)?;
            pending_grants.push((i, epoch, grant, pending, Some(releaser)));
        }
        // Settle every in-flight grant even once one has failed: each may
        // still have taken effect at `dest`, and an unsettled failure must
        // be backed out (below) so its partition is not orphaned.
        let mut first_err: Option<DynaError> = None;
        for (i, epoch, grant, pending, releaser) in pending_grants {
            let settled =
                self.settle(dest, &grant, pending)
                    .and_then(|reply| match expect_ok(&reply)? {
                        SiteResponse::Granted { grant_vv } => Ok(grant_vv),
                        _ => Err(DynaError::Internal("unexpected grant response")),
                    });
            match settled {
                Ok(grant_vv) => {
                    self.trace_remaster(
                        txn_id,
                        TraceKind::GrantAck,
                        partitions[i],
                        releaser.unwrap_or(dest),
                        dest,
                        epoch,
                    );
                    out_vv.merge_max(&grant_vv);
                    entries[i].set_master(&mut guards[i], dest);
                    self.stats.on_remaster(partitions[i], dest);
                    self.drop_pending(partitions[i]);
                    if let Some(releaser) = releaser {
                        follow.push((partitions[i], releaser));
                    }
                    moved += 1;
                }
                Err(e) => {
                    // `dest` is unreachable. Re-grant the released partition
                    // back to its releaser (idempotent; best-effort — if it
                    // also fails, the next routing attempt's release replays
                    // the recorded rel_vv and re-grants elsewhere). The map
                    // keeps naming the releaser, matching recovery's
                    // rebuild policy for a release without a matching grant.
                    self.back_grant(releaser, &grant);
                    first_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // First-touch placements are not remasterings: nothing released.
        moved = moved.saturating_sub(placed);
        self.placements.add(placed);
        self.observe_site_vv(dest, &out_vv);
        drop(guards);
        self.retire_followed(&follow);

        if moved > 0 {
            self.remaster_ops.inc();
            self.partitions_moved.add(moved);
        }
        self.routed[dest.as_usize()].inc();
        self.crash_check(CrashPoint::BeforeClientReply)?;
        self.trace(
            txn_id,
            TraceKind::Route,
            TracePayload::Route {
                dest: dest.raw(),
                partitions: partitions.len() as u32,
                fast_path: false,
                remastered: moved > 0,
            },
        );
        Ok(RouteDecision {
            site: dest,
            min_vv: self.with_session_floor(out_vv),
            lookup,
            routing: t_route.elapsed(),
            remastered: moved > 0,
        })
    }

    /// Settles a remaster RPC: rides the already-sent async request first;
    /// a lost request or reply falls back to full retransmission under the
    /// network's retry policy. Safe because release and grant are
    /// idempotent per `(partition, epoch)` at the data sites.
    fn settle(
        &self,
        to: SiteId,
        req: &SiteRequest,
        pending: Result<dynamast_network::PendingReply>,
    ) -> Result<Bytes> {
        let retry = self.network.config().retry;
        match pending.and_then(|p| p.wait_timeout(retry.attempt_timeout)) {
            Ok(reply) => Ok(reply),
            Err(DynaError::Timeout { .. } | DynaError::Network(_)) => self.network.rpc_with_retry(
                &retry,
                None,
                EndpointId::Site(to.raw()),
                TrafficCategory::Remaster,
                Bytes::from(encode_to_vec(req)),
            ),
            Err(e) => Err(e),
        }
    }

    /// Best-effort re-grant of a released partition back to its releaser
    /// after the intended grantee proved unreachable.
    fn back_grant(&self, releaser: Option<SiteId>, grant: &SiteRequest) {
        let Some(back_to) = releaser else { return };
        self.remaster_rpcs.inc();
        let _ = self.network.rpc_with_retry(
            &self.network.config().retry,
            None,
            EndpointId::Site(back_to.raw()),
            TrafficCategory::Remaster,
            Bytes::from(encode_to_vec(grant)),
        );
    }

    // ---- Adaptive replica provisioning (partial replication) ----

    /// Guarantees `dest` holds a copy of `partition`, shipping one from an
    /// existing replica if the map says it is missing. No-op under full
    /// replication. This is the create-then-grant building block: Eq. 8 may
    /// choose a destination with no copy, in which case the copy is created
    /// first and the grant proceeds as usual.
    pub fn ensure_replica(&self, dest: SiteId, partition: PartitionId) -> Result<()> {
        if !self.replica_map.is_partial() || self.replica_map.hosts(partition, dest) {
            return Ok(());
        }
        self.install_replica(dest, partition)
    }

    /// Unconditionally (re-)ships a copy of `partition` to `dest`, even when
    /// the map already claims one exists. The NotReplica repair path: the
    /// site is authoritative about what it hosts, so a rejection from a site
    /// the map believes is a replica (e.g. after an unclean restart whose
    /// checkpoint predated the copy) is healed by installing again —
    /// idempotent at the site if the copy does exist.
    pub fn repair_replica(&self, dest: SiteId, partition: PartitionId) -> Result<()> {
        if !self.replica_map.is_partial() {
            return Ok(());
        }
        self.install_replica(dest, partition)
    }

    /// LEAP-style copy install: snapshot RPC against a serving replica, then
    /// an `AddReplica` RPC shipping the snapshot plus its cut svv to `dest`,
    /// which catches the partition up from its own logs and refresh buffer
    /// before marking it hosted. Serialized under the provisioning lock.
    ///
    /// When no reachable site actually serves the partition — every mapped
    /// replica answers NotReplica, which happens for partitions born after
    /// seeding (nobody ever loaded rows) — falls back to an empty snapshot at
    /// svv zero: the destination then replays the partition's entire history
    /// from its retained logs, which is complete because records are only
    /// truncated once every site (including `dest`) has consumed them.
    fn install_replica(&self, dest: SiteId, partition: PartitionId) -> Result<()> {
        let _serial = self.provision_lock.lock();
        let retry = self.network.config().retry;
        let snap_req = Bytes::from(encode_to_vec(&SiteRequest::ReplicaSnapshot { partition }));
        let mut snapshot: Option<(Vec<_>, VersionVector)> = None;
        let mut unreachable_source = false;
        for src in self.replica_map.replicas(partition) {
            if src == dest || !self.network.site_reachable(src.raw()) {
                unreachable_source |= src != dest;
                continue;
            }
            let reply = self.network.rpc_with_retry(
                &retry,
                None,
                EndpointId::Site(src.raw()),
                TrafficCategory::DataShip,
                snap_req.clone(),
            );
            match reply.and_then(|r| match expect_ok(&r)? {
                SiteResponse::ReplicaSnapshotted { records, src_svv } => Ok((records, src_svv)),
                _ => Err(DynaError::Internal("unexpected replica snapshot response")),
            }) {
                Ok(cut) => {
                    snapshot = Some(cut);
                    break;
                }
                Err(DynaError::NotReplica { .. }) => continue,
                Err(_) => unreachable_source = true,
            }
        }
        let (records, src_svv) = match snapshot {
            Some(cut) => cut,
            // A copy may exist only on an unreachable site: do NOT fall back
            // to log replay (its rows could predate log truncation floors).
            None if unreachable_source => {
                return Err(DynaError::Network("no reachable replica to copy from"))
            }
            None => (Vec::new(), VersionVector::zero(self.config.num_sites)),
        };
        let add = SiteRequest::AddReplica {
            partition,
            records,
            src_svv,
            generation: self.generation,
        };
        let reply = self.network.rpc_with_retry(
            &retry,
            None,
            EndpointId::Site(dest.raw()),
            TrafficCategory::DataShip,
            Bytes::from(encode_to_vec(&add)),
        )?;
        match expect_ok(&reply)? {
            SiteResponse::ReplicaAdded { svv } => {
                self.observe_site_vv(dest, &svv);
                self.replica_map.add(partition, dest);
                self.replica_adds.inc();
                Ok(())
            }
            _ => Err(DynaError::Internal("unexpected add-replica response")),
        }
    }

    /// Drops `site`'s copy of `partition` (planner shrink). The map bit is
    /// cleared first — no new reads route there while the RPC is in flight —
    /// then the fenced `DropReplica` executes; a refusal (the site was just
    /// granted mastership, or is unreachable with its copy intact) restores
    /// the bit. Returns whether the copy was actually dropped.
    fn retire_replica(&self, site: SiteId, partition: PartitionId) -> bool {
        let _serial = self.provision_lock.lock();
        if self
            .map
            .entries_for_existing(partition)
            .and_then(|e| e.master_relaxed())
            == Some(site)
        {
            return false;
        }
        if !self.replica_map.remove(partition, site) {
            return false; // already at the replication floor
        }
        let req = SiteRequest::DropReplica {
            partition,
            generation: self.generation,
        };
        let reply = self.network.rpc_with_retry(
            &self.network.config().retry,
            None,
            EndpointId::Site(site.raw()),
            TrafficCategory::DataShip,
            Bytes::from(encode_to_vec(&req)),
        );
        match reply.and_then(|r| match expect_ok(&r)? {
            SiteResponse::ReplicaDropped { .. } => Ok(()),
            _ => Err(DynaError::Internal("unexpected drop-replica response")),
        }) {
            Ok(()) => {
                self.replica_drops.inc();
                true
            }
            Err(_) => {
                self.replica_map.add(partition, site);
                false
            }
        }
    }

    /// With frozen replica sets, a create-then-grant *moves* the copy rather
    /// than widening the set: once mastership has landed at the grantee, the
    /// releaser's copy is retired so the copy budget stays pinned at the
    /// floor deployment the operator asked for. Under adaptive provisioning
    /// this is a no-op — the planner owns shrink decisions and widening after
    /// a grant is exactly the Eq. 8 has-copy signal working as intended.
    /// `retire_replica` refuses masters and floor breaches, so a partition
    /// whose grantee already hosted a copy (count unchanged) is left alone.
    fn retire_followed(&self, follow: &[(PartitionId, SiteId)]) {
        if follow.is_empty() || !self.replica_map.is_partial() || self.config.replica_provisioning {
            return;
        }
        let floor = self.replica_map.floor();
        for &(partition, old_master) in follow {
            // Converge the touched partition all the way back to its floor
            // set, not just by the one copy this grant added: a prior grant
            // whose retire was refused (or whose install was orphaned by a
            // failed grant) left surplus copies that would otherwise linger
            // forever in frozen mode. Old master first, then any other
            // non-master surplus; stop when a pass sheds nothing.
            let mut victims = vec![old_master];
            victims.extend(
                self.replica_map
                    .replicas(partition)
                    .into_iter()
                    .filter(|&s| s != old_master),
            );
            for victim in victims {
                if self.replica_map.replicas(partition).len() <= floor {
                    break;
                }
                self.retire_replica(victim, partition);
            }
        }
    }

    /// One pass of the adaptive replica-provisioning planner: re-uses the
    /// access tracker's per-partition load features (the same features Eq. 8
    /// consumes) to widen hot partitions toward all sites and shrink cold
    /// ones back toward the floor. Runs on the svv-probe cadence; public so
    /// tests and benches can force a pass deterministically. Returns the
    /// number of copy installs/drops performed.
    pub fn provision_now(&self) -> usize {
        if !self.replica_map.is_partial() || !self.config.replica_provisioning {
            return 0;
        }
        let m = self.config.num_sites;
        let mut partitions: Vec<PartitionId> =
            self.map.placements().into_iter().map(|(p, _)| p).collect();
        partitions.extend(self.replica_map.tracked().into_iter().map(|(p, _)| p));
        partitions.sort_unstable();
        partitions.dedup();
        if partitions.is_empty() {
            return 0;
        }
        let (snaps, site_load) = self.stats.snapshot(&partitions);
        let total: f64 = snaps.iter().map(|s| s.load).sum();
        if total < PROVISION_MIN_TOTAL {
            return 0;
        }
        let mean = total / partitions.len() as f64;
        let mut ops = 0usize;
        for (i, &p) in partitions.iter().enumerate() {
            if ops >= PROVISION_MAX_OPS {
                break;
            }
            let load = snaps[i].load;
            let replicas = self.replica_map.replicas(p);
            if load > PROVISION_HOT_FACTOR * mean && replicas.len() < m {
                // Widen: one copy per pass, at the least-loaded reachable
                // site that lacks one.
                let dest = (0..m)
                    .filter(|&s| {
                        !replicas.contains(&SiteId::new(s)) && self.network.site_reachable(s as u32)
                    })
                    .min_by(|&a, &b| site_load[a].total_cmp(&site_load[b]));
                if let Some(d) = dest {
                    if self.ensure_replica(SiteId::new(d), p).is_ok() {
                        ops += 1;
                    }
                }
            } else if load < PROVISION_COLD_FACTOR * mean
                && replicas.len() > self.replica_map.floor()
            {
                // Shrink: drop the copy on the most loaded site (the master
                // and the floor are refused inside `retire_replica`, so the
                // sort order just expresses preference).
                let mut victims = replicas;
                victims.sort_by(|a, b| site_load[b.as_usize()].total_cmp(&site_load[a.as_usize()]));
                if victims.into_iter().any(|v| self.retire_replica(v, p)) {
                    ops += 1;
                }
            }
        }
        ops
    }

    // ---- Epoch-batched group remastering ----

    /// Number of moves currently queued for the next epoch boundary
    /// (tests and diagnostics; counts sticky "stay put" markers too).
    pub fn pending_moves(&self) -> usize {
        self.pending.lock().moves.len()
    }

    /// Forgets a queued move after an inline remaster superseded it.
    fn drop_pending(&self, partition: PartitionId) {
        if self.config.remaster_batching {
            self.pending.lock().moves.remove(&partition);
        }
    }

    /// Per-route bookkeeping on the sole-master fast path when epoch
    /// batching is on. Never stalls the transaction: the group keeps
    /// executing at `master` (the no-stall guarantee), and only a blown
    /// wait budget forces the epoch to flush early — in which case the
    /// group's post-flush master is returned for re-routing.
    fn epoch_tick(
        &self,
        txn_id: u64,
        cvv: &VersionVector,
        partitions: &[PartitionId],
        master: SiteId,
    ) -> Result<SiteId> {
        let budget = self.config.remaster_wait_budget;
        let (force_flush, unqueued) = {
            let mut q = self.pending.lock();
            let mut force = false;
            let mut unqueued: Vec<PartitionId> = Vec::new();
            for p in partitions {
                match q.moves.get_mut(p) {
                    Some(pm) => {
                        pm.deferrals += 1;
                        if pm.deferrals > budget {
                            if pm.dest != master {
                                force = true;
                            } else {
                                // A "stay put" verdict expires after a
                                // budget's worth of routes: the load picture
                                // that justified it may have shifted.
                                q.moves.remove(p);
                            }
                        }
                    }
                    None => unqueued.push(*p),
                }
            }
            (force, unqueued)
        };
        // Imbalance probe: a cheap relaxed read of the per-site load
        // attribution; full Eq. 8 scoring runs only when this master looks
        // overloaded. Partitions are scored individually — moving a whole
        // co-hot set wholesale never improves balance, spreading it does —
        // and every verdict is cached in the queue (a "stay put" included)
        // so each partition is scored once per epoch, not once per route.
        if !force_flush && !unqueued.is_empty() {
            let load = self.stats.approx_site_load();
            let total: f64 = load.iter().sum();
            let mean = total / load.len().max(1) as f64;
            if total >= REBALANCE_MIN_TOTAL && load[master.as_usize()] > REBALANCE_FACTOR * mean {
                for p in &unqueued {
                    let (dest, cands) = self.score_candidates(&[*p], &[Some(master)], cvv);
                    if dest != master {
                        // Decision explainability for deferred moves: epoch 0
                        // marks "queued, epoch not yet assigned"; the flush
                        // emits the final epoch-stamped decision.
                        self.trace(
                            txn_id,
                            TraceKind::RemasterDecision,
                            TracePayload::Decision {
                                chosen: dest.raw(),
                                partitions: 1,
                                epoch: 0,
                                candidates: Arc::new(cands),
                            },
                        );
                    }
                    let mut q = self.pending.lock();
                    if q.started.is_none() {
                        q.started = Some(Instant::now());
                    }
                    q.moves
                        .entry(*p)
                        .or_insert(PendingMove { dest, deferrals: 0 });
                }
            }
        }
        let boundary = {
            let q = self.pending.lock();
            q.moves.len() >= self.config.epoch_max_moves.max(1)
                || (self.config.epoch_interval > Duration::ZERO
                    && q.started
                        .is_some_and(|t| t.elapsed() >= self.config.epoch_interval))
        };
        if force_flush || boundary {
            self.flush_epoch_traced(txn_id)?;
            if force_flush {
                // The waiting group just moved (or a concurrent flush beat
                // us to it) — route wherever the map says it lives now.
                let entries = self.map.entries_for(partitions);
                let guards = self.map.lock_shared(&entries);
                let masters: Vec<Option<SiteId>> = guards.iter().map(|g| g.master).collect();
                return Ok(sole_master(&masters).unwrap_or(master));
            }
        }
        Ok(master)
    }

    /// Flushes the open epoch now: drains the pending queue, re-scores each
    /// destination group under exclusive map locks, and executes the moves
    /// as coalesced per-site-pair `BatchRelease`/`BatchGrant` RPCs. Public
    /// so benches and tests can force epoch boundaries; routing calls it
    /// when the epoch's move count, age, or a wait budget trips it.
    pub fn flush_epoch(&self) -> Result<()> {
        self.flush_epoch_traced(next_trace_id())
    }

    /// Time-trigger check used by the background svv probe: flushes once
    /// the open epoch is older than `epoch_interval`. No-op otherwise.
    pub fn flush_epoch_if_due(&self) -> Result<()> {
        if self.config.epoch_interval == Duration::ZERO {
            return Ok(());
        }
        let due = self
            .pending
            .lock()
            .started
            .is_some_and(|t| t.elapsed() >= self.config.epoch_interval);
        if due {
            self.flush_epoch()
        } else {
            Ok(())
        }
    }

    fn flush_epoch_traced(&self, txn_id: u64) -> Result<()> {
        if !self.config.remaster_batching {
            return Ok(());
        }
        if self.flush_in_progress.swap(true, Ordering::AcqRel) {
            return Ok(()); // another thread's flush is already draining
        }
        struct Unflag<'a>(&'a AtomicBool);
        impl Drop for Unflag<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        let _unflag = Unflag(&self.flush_in_progress);
        let mut drained: Vec<PartitionId> = {
            let mut q = self.pending.lock();
            q.started = None;
            q.moves.drain().map(|(p, _)| p).collect()
        };
        if drained.is_empty() {
            return Ok(());
        }
        // Ascending partition order: the map's deadlock-avoidance locking
        // discipline, and a deterministic plan for a deterministic queue.
        drained.sort_unstable();
        drained.dedup();
        self.flush_moves(txn_id, &drained)
    }

    /// Plans one epoch flush — greedy per-partition Eq. 8 assignment over a
    /// single shared stats snapshot — and executes it as coalesced batch
    /// RPCs, one `BatchRelease` + `BatchGrant` per (source, destination)
    /// site pair. Planning runs under *shared* map locks only, and each
    /// pair's exclusive window covers just its own two round trips: the
    /// router is never stalled for the whole flush, only for the sub-batch
    /// whose partitions it actually touches.
    fn flush_moves(&self, txn_id: u64, partitions: &[PartitionId]) -> Result<()> {
        let m = self.config.num_sites;
        let masters: Vec<Option<SiteId>> = {
            let entries = self.map.entries_for(partitions);
            let guards = self.map.lock_shared(&entries);
            guards.iter().map(|g| g.master).collect()
        };
        let plan = self.plan_flush(txn_id, partitions, &masters);
        let mut by_pair: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        for (i, mm) in masters.iter().enumerate() {
            if let (Some(src), Some(dst)) = (mm, plan[i]) {
                if *src != dst {
                    by_pair.entry((src.raw(), dst.raw())).or_default().push(i);
                }
            }
        }
        if by_pair.is_empty() {
            return Ok(());
        }
        let retry = self.network.config().retry;
        let mut attempted = 0u64;
        let mut batch_rpcs = 0u64;
        let mut moved = 0u64;
        let mut follow: Vec<(PartitionId, SiteId)> = Vec::new();
        for ((src_raw, dst_raw), idxs) in &by_pair {
            let src = SiteId::new(*src_raw as usize);
            let dst = SiteId::new(*dst_raw as usize);
            // A crash here tears the batch: earlier pairs are already moved
            // with this one untouched — exactly the torn state the standby's
            // release-without-grant repair must mend.
            self.crash_check(CrashPoint::MidBatchRelease)?;
            // Exclusive locks for this pair only. `idxs` ascends and pairs
            // never share a partition, so the map's ascending-order locking
            // discipline holds within and across pairs.
            let pair_parts: Vec<PartitionId> = idxs.iter().map(|&i| partitions[i]).collect();
            let entries = self.map.entries_for(&pair_parts);
            let mut guards = self.map.lock_exclusive(&entries);
            // Re-verify under the exclusive lock: an inline co-location may
            // have superseded the plan while no lock was held. Under partial
            // replication the destination must also hold a copy before its
            // grant — moves whose install fails stay put for a later epoch.
            let live: Vec<usize> = (0..idxs.len())
                .filter(|&k| guards[k].master == Some(src))
                .filter(|&k| self.ensure_replica(dst, pair_parts[k]).is_ok())
                .collect();
            if live.is_empty() {
                continue;
            }
            let mut epochs = vec![0u64; idxs.len()];
            let moves: Vec<(PartitionId, u64)> = live
                .iter()
                .map(|&k| {
                    let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
                    epochs[k] = epoch;
                    self.trace_remaster(
                        txn_id,
                        TraceKind::ReleaseSend,
                        pair_parts[k],
                        src,
                        dst,
                        epoch,
                    );
                    (pair_parts[k], epoch)
                })
                .collect();
            attempted += moves.len() as u64;
            let req = SiteRequest::BatchRelease {
                moves,
                generation: self.generation,
            };
            self.remaster_rpcs.inc();
            batch_rpcs += 1;
            self.remaster_batch_size
                .record(Duration::from_micros(live.len() as u64));
            let reply = self.network.rpc_with_retry(
                &retry,
                None,
                EndpointId::Site(src.raw()),
                TrafficCategory::Remaster,
                Bytes::from(encode_to_vec(&req)),
            );
            let results = match reply.and_then(|r| match expect_ok(&r)? {
                SiteResponse::BatchReleased { results } => Ok(results),
                _ => Err(DynaError::Internal("unexpected batch release response")),
            }) {
                Ok(results) => results,
                // Unreachable or fenced: nothing released at this source;
                // its partitions stay put for a later epoch.
                Err(_) => continue,
            };
            let mut rel_vvs: Vec<Option<VersionVector>> = vec![None; idxs.len()];
            let mut src_vv = VersionVector::zero(m);
            for (&k, rel) in live.iter().zip(results) {
                if let Some(rel_vv) = rel {
                    self.trace_remaster(
                        txn_id,
                        TraceKind::ReleaseAck,
                        pair_parts[k],
                        src,
                        dst,
                        epochs[k],
                    );
                    src_vv.merge_max(&rel_vv);
                    rel_vvs[k] = Some(rel_vv);
                }
            }
            self.observe_site_vv(src, &src_vv);
            let granted: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&k| rel_vvs[k].is_some())
                .collect();
            if granted.is_empty() {
                continue;
            }
            let single_grant = |k: usize| SiteRequest::Grant {
                partition: pair_parts[k],
                epoch: epochs[k],
                rel_vv: rel_vvs[k].clone().expect("granted only when released"),
                generation: self.generation,
            };
            // A crash here leaves this pair's partitions released with no
            // grant sent — the other torn-batch shape recovery must mend.
            self.crash_check(CrashPoint::MidBatchGrant)?;
            let grants: Vec<(PartitionId, u64, VersionVector)> = granted
                .iter()
                .map(|&k| {
                    self.trace_remaster(
                        txn_id,
                        TraceKind::GrantSend,
                        pair_parts[k],
                        src,
                        dst,
                        epochs[k],
                    );
                    (
                        pair_parts[k],
                        epochs[k],
                        rel_vvs[k].clone().expect("granted only when released"),
                    )
                })
                .collect();
            let req = SiteRequest::BatchGrant {
                grants,
                generation: self.generation,
            };
            self.remaster_rpcs.inc();
            batch_rpcs += 1;
            self.remaster_batch_size
                .record(Duration::from_micros(granted.len() as u64));
            let reply = self.network.rpc_with_retry(
                &retry,
                None,
                EndpointId::Site(dst.raw()),
                TrafficCategory::Remaster,
                Bytes::from(encode_to_vec(&req)),
            );
            let results = match reply.and_then(|r| match expect_ok(&r)? {
                SiteResponse::BatchGranted { results } => Ok(results),
                _ => Err(DynaError::Internal("unexpected batch grant response")),
            }) {
                Ok(results) => results,
                Err(_) => {
                    // Destination unreachable: back out this pair's
                    // releases so no partition is left masterless (the
                    // inline path's policy).
                    for &k in &granted {
                        self.back_grant(Some(src), &single_grant(k));
                    }
                    continue;
                }
            };
            let mut merged = VersionVector::zero(m);
            for (&k, outcome) in granted.iter().zip(results) {
                match outcome {
                    Some(grant_vv) => {
                        self.trace_remaster(
                            txn_id,
                            TraceKind::GrantAck,
                            pair_parts[k],
                            src,
                            dst,
                            epochs[k],
                        );
                        merged.merge_max(&grant_vv);
                        entries[k].set_master(&mut guards[k], dst);
                        self.stats.on_remaster(pair_parts[k], dst);
                        follow.push((pair_parts[k], src));
                        moved += 1;
                    }
                    None => self.back_grant(Some(src), &single_grant(k)),
                }
            }
            self.observe_site_vv(dst, &merged);
        }
        self.retire_followed(&follow);
        if moved > 0 {
            self.remaster_ops.inc();
            self.partitions_moved.add(moved);
        }
        // The batching claim made concrete: the inline path would have paid
        // one release plus one grant round trip per attempted move.
        let inline_cost = 2 * attempted;
        if inline_cost > batch_rpcs {
            self.remaster_rpcs_saved.add(inline_cost - batch_rpcs);
        }
        Ok(())
    }

    /// The flush planner: greedy per-partition Eq. 8 assignment, heaviest
    /// partition first, over ONE shared stats snapshot and freshness read —
    /// the per-candidate feature inputs are computed once for the whole
    /// queued set rather than once per routed transaction. A working copy
    /// of the site-load vector absorbs each assignment before the next
    /// partition is scored, so a flash-crowd hot set *spreads* across
    /// underloaded sites instead of ping-ponging wholesale; already-assigned
    /// partners count at their new homes for the localization terms.
    fn plan_flush(
        &self,
        txn_id: u64,
        partitions: &[PartitionId],
        masters: &[Option<SiteId>],
    ) -> Vec<Option<SiteId>> {
        let m = self.config.num_sites;
        let (snaps, mut working_load) = self.stats.snapshot(partitions);
        let site_vvs = self.freshness.all();
        let unreachable: Vec<bool> = (0..m)
            .map(|i| !self.network.site_reachable(i as u32))
            .collect();
        let cvv = VersionVector::zero(m);
        let mut order: Vec<usize> = (0..partitions.len())
            .filter(|&i| masters[i].is_some())
            .collect();
        order.sort_by(|&a, &b| {
            snaps[b]
                .load
                .total_cmp(&snaps[a].load)
                .then(partitions[a].cmp(&partitions[b]))
        });
        let mut plan: Vec<Option<SiteId>> = vec![None; partitions.len()];
        let mut assigned: HashMap<PartitionId, SiteId> = HashMap::new();
        for &i in &order {
            let placed = [(partitions[i], masters[i])];
            let load = [snaps[i].load];
            let to_coaccess = |partners: &[(PartitionId, f64)]| -> Vec<CoAccess> {
                partners
                    .iter()
                    .map(|(partner, probability)| CoAccess {
                        partner: *partner,
                        probability: *probability,
                        partner_master: assigned.get(partner).copied().or_else(|| {
                            self.map
                                .entries_for_existing(*partner)
                                .and_then(|e| e.master_relaxed())
                        }),
                        in_write_set: false,
                    })
                    .collect()
            };
            let intra = vec![to_coaccess(&snaps[i].intra.partners)];
            let inter = vec![to_coaccess(&snaps[i].inter.partners)];
            let (dest, cands) = confirm_group_destination(
                &ScoreInputs {
                    num_sites: m,
                    weights: &self.config.weights,
                    partitions: &placed,
                    partition_load: &load,
                    site_load: &working_load,
                    intra: &intra,
                    inter: &inter,
                    site_vvs: &site_vvs,
                    cvv: &cvv,
                },
                &unreachable,
            );
            let src = masters[i].expect("order holds only mastered partitions");
            working_load[src.as_usize()] -= snaps[i].load;
            working_load[dest.as_usize()] += snaps[i].load;
            assigned.insert(partitions[i], dest);
            plan[i] = Some(dest);
            if dest != src {
                // The epoch-stamped final decision for this move (its
                // release allocates the next remaster epoch).
                self.trace(
                    txn_id,
                    TraceKind::RemasterDecision,
                    TracePayload::Decision {
                        chosen: dest.raw(),
                        partitions: 1,
                        epoch: self.epoch.load(Ordering::Relaxed) + 1,
                        candidates: Arc::new(cands),
                    },
                );
            }
        }
        plan
    }

    /// Strategy evaluation (Eq. 8) over all candidate sites, recording a
    /// [`TraceKind::RemasterDecision`] event with every candidate's feature
    /// scores.
    fn decide_destination(
        &self,
        txn_id: u64,
        partitions: &[PartitionId],
        masters: &[Option<SiteId>],
        cvv: &VersionVector,
    ) -> SiteId {
        let (dest, cands) = self.score_candidates(partitions, masters, cvv);
        // Decision explainability: the full per-candidate feature breakdown
        // (Eq. 8's four terms) behind this choice, on the flight recorder.
        self.trace(
            txn_id,
            TraceKind::RemasterDecision,
            TracePayload::Decision {
                chosen: dest.raw(),
                partitions: partitions.len() as u32,
                epoch: self.epoch.load(Ordering::Relaxed) + 1,
                candidates: Arc::new(cands),
            },
        );
        dest
    }

    /// Shared Eq. 8 evaluation for both inline decisions and epoch-flush
    /// group re-scoring: builds the feature inputs once for the partition
    /// set and delegates to the strategy's group scorer with the current
    /// reachability mask.
    fn score_candidates(
        &self,
        partitions: &[PartitionId],
        masters: &[Option<SiteId>],
        cvv: &VersionVector,
    ) -> (SiteId, Vec<CandidateScore>) {
        let (snaps, site_load) = self.stats.snapshot(partitions);
        let placed: Vec<(PartitionId, Option<SiteId>)> = partitions
            .iter()
            .zip(masters)
            .map(|(p, m)| (*p, *m))
            .collect();
        let partition_load: Vec<f64> = snaps.iter().map(|s| s.load).collect();
        let to_coaccess = |partners: &[(PartitionId, f64)]| -> Vec<CoAccess> {
            partners
                .iter()
                .map(|(partner, probability)| {
                    let in_write_set = partitions.binary_search(partner).is_ok();
                    let partner_master = if in_write_set {
                        None // filled by `in_write_set` handling in scoring
                    } else {
                        self.map
                            .entries_for_existing(*partner)
                            .and_then(|e| e.master_relaxed())
                    };
                    CoAccess {
                        partner: *partner,
                        probability: *probability,
                        partner_master,
                        in_write_set,
                    }
                })
                .collect()
        };
        let intra: Vec<Vec<CoAccess>> = snaps
            .iter()
            .map(|s| to_coaccess(&s.intra.partners))
            .collect();
        let inter: Vec<Vec<CoAccess>> = snaps
            .iter()
            .map(|s| to_coaccess(&s.inter.partners))
            .collect();
        let site_vvs = self.freshness.all();
        // Never remaster TOWARD an unreachable site: a grant to a crashed
        // endpoint would strand the partition until the site recovers. (If
        // every site is unreachable the unmasked argmax stands; the RPCs
        // fail and the client backs off either way — the group scorer
        // ignores an all-masked mask for exactly this reason.)
        let unreachable: Vec<bool> = (0..self.config.num_sites)
            .map(|i| !self.network.site_reachable(i as u32))
            .collect();
        let (mut dest, mut cands) = confirm_group_destination(
            &ScoreInputs {
                num_sites: self.config.num_sites,
                weights: &self.config.weights,
                partitions: &placed,
                partition_load: &partition_load,
                site_load: &site_load,
                intra: &intra,
                inter: &inter,
                site_vvs: &site_vvs,
                cvv,
            },
            &unreachable,
        );
        // Eq. 8 extension under partial replication: credit candidates that
        // already hold every write-set partition — granting there skips the
        // copy install — then re-take the argmax over the adjusted totals.
        // Folded into `total` post-hoc because `CandidateScore`'s per-term
        // fields are the paper's four and are wire-encoded on the recorder.
        if self.replica_map.is_partial() {
            let spread = cands
                .iter()
                .map(|c| c.total.abs())
                .fold(0.0f64, f64::max)
                .max(1.0);
            for c in cands.iter_mut() {
                let s = SiteId::new(c.site as usize);
                if partitions.iter().all(|p| self.replica_map.hosts(*p, s)) {
                    c.total += HAS_COPY_BONUS * spread;
                }
            }
            let any_reachable = cands.iter().any(|c| c.reachable);
            let mut best = f64::NEG_INFINITY;
            for c in &cands {
                if any_reachable && !c.reachable {
                    continue;
                }
                if c.total > best {
                    best = c.total;
                    dest = SiteId::new(c.site as usize);
                }
            }
        }
        (dest, cands)
    }

    /// Routes a read-only transaction (§IV-B): a random *reachable* site
    /// satisfying the client's freshness requirement; if the cache says none
    /// does, any random reachable site (the site-side freshness wait still
    /// guarantees SSSI); if every site looks down, any random site — its
    /// RPC fails fast and the client backs off.
    ///
    /// Allocates a fresh trace id; callers that correlate routing with
    /// execution use [`SiteSelector::route_read_traced`].
    pub fn route_read(&self, cvv: &VersionVector) -> SiteId {
        self.route_read_traced(next_trace_id(), cvv)
    }

    /// Read routing under an externally allocated trace id (see
    /// [`SiteSelector::route_update_traced`]). Considers every site a
    /// candidate — correct under full replication; partial-replication
    /// callers that know the read set use
    /// [`SiteSelector::route_read_partitions_traced`].
    pub fn route_read_traced(&self, txn_id: u64, cvv: &VersionVector) -> SiteId {
        self.route_read_partitions_traced(txn_id, cvv, &[])
    }

    /// Bit-set of sites hosting every partition in `partitions` (all sites
    /// under full replication or for an empty set). An empty intersection
    /// falls back to the site(s) hosting the *most* of the read set — the
    /// site-side NotReplica rejection is the authoritative guard, and its
    /// repair path installs the missing copies, so best-cover routing keeps
    /// those installs to the minimum (and at a deterministic site, so a
    /// repeated range scan converges instead of sprinkling copies around).
    fn read_mask(&self, partitions: &[PartitionId]) -> u64 {
        let all = if self.config.num_sites >= 64 {
            u64::MAX
        } else {
            (1u64 << self.config.num_sites) - 1
        };
        if !self.replica_map.is_partial() || partitions.is_empty() {
            return all;
        }
        let mask = partitions
            .iter()
            .fold(all, |acc, p| acc & self.replica_map.mask(*p));
        if mask != 0 {
            return mask;
        }
        let masks: Vec<u64> = partitions
            .iter()
            .map(|p| self.replica_map.mask(*p))
            .collect();
        let mut best = 0usize;
        let mut best_mask = 0u64;
        for i in 0..self.config.num_sites {
            let bit = 1u64 << i;
            let cover = masks.iter().filter(|m| *m & bit != 0).count();
            match cover.cmp(&best) {
                std::cmp::Ordering::Greater => {
                    best = cover;
                    best_mask = bit;
                }
                std::cmp::Ordering::Equal => best_mask |= bit,
                std::cmp::Ordering::Less => {}
            }
        }
        if best_mask == 0 {
            all
        } else {
            best_mask
        }
    }

    /// Read routing restricted to sites hosting the read set's partitions
    /// (partial replication). Candidate tiers: hosting ∧ reachable ∧ fresh,
    /// then hosting ∧ reachable, then hosting — mirroring the reachable/
    /// fresh fallback of the full-replication path.
    pub fn route_read_partitions_traced(
        &self,
        txn_id: u64,
        cvv: &VersionVector,
        partitions: &[PartitionId],
    ) -> SiteId {
        // Post-failover, raise the client's requirement to the session
        // floor: a client whose pre-crash session state the promoted
        // selector never saw must still be routed to a sufficiently fresh
        // replica. (Allocates only while a floor is installed.)
        let floored;
        let cvv = match &self.session_floor {
            Some(floor) => {
                floored = cvv.max_with(floor);
                &floored
            }
            None => cvv,
        };
        // Allocation-free two-pass pick: count the candidates, then find
        // the chosen one. Freshness estimates are monotone but
        // *reachability is not* (a site can crash between the passes), so
        // the second pass falls back to the last candidate it saw if the
        // chosen index no longer resolves.
        let num_sites = self.config.num_sites;
        let mask = self.read_mask(partitions);
        let pass = |tier: u8, i: usize| -> bool {
            if mask & (1u64 << i) == 0 {
                return false;
            }
            match tier {
                0 => {
                    self.network.site_reachable(i as u32)
                        && self.freshness.dominates(SiteId::new(i), cvv)
                }
                1 => self.network.site_reachable(i as u32),
                _ => true,
            }
        };
        let mut tier = 2u8;
        let mut count = 0;
        for t in 0..3u8 {
            count = (0..num_sites).filter(|&i| pass(t, i)).count();
            if count > 0 {
                tier = t;
                break;
            }
        }
        let pick = with_thread_rng(self.rng_seed, |rng| {
            if count == 0 {
                return rng.gen_range(0..num_sites);
            }
            let nth = rng.gen_range(0..count);
            let mut seen = 0;
            let mut last = None;
            for i in 0..num_sites {
                if pass(tier, i) {
                    if seen == nth {
                        return i;
                    }
                    seen += 1;
                    last = Some(i);
                }
            }
            last.unwrap_or_else(|| rng.gen_range(0..num_sites))
        });
        self.trace(
            txn_id,
            TraceKind::Route,
            TracePayload::Route {
                dest: pick as u32,
                partitions: 0,
                fast_path: true,
                remastered: false,
            },
        );
        SiteId::new(pick)
    }
}

/// Runs `f` with this thread's routing RNG, creating it on first use (or
/// when a selector with a different seed routes on this thread). Each
/// thread's stream is seeded from the selector seed and a process-wide
/// thread salt: deterministic for a single routing thread, uncorrelated
/// across threads, and never contended.
fn with_thread_rng<T>(seed: u64, f: impl FnOnce(&mut SmallRng) -> T) -> T {
    use std::cell::RefCell;
    thread_local! {
        static ROUTE_RNG: RefCell<Option<(u64, SmallRng)>> = const { RefCell::new(None) };
    }
    static THREAD_SALT: AtomicU64 = AtomicU64::new(0);
    ROUTE_RNG.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.as_ref().is_none_or(|(s, _)| *s != seed) {
            let salt = THREAD_SALT.fetch_add(1, Ordering::Relaxed);
            *slot = Some((
                seed,
                SmallRng::seed_from_u64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ));
        }
        let (_, rng) = slot.as_mut().expect("rng initialized above");
        f(rng)
    })
}

fn sole_master(masters: &[Option<SiteId>]) -> Option<SiteId> {
    let first = masters.first().copied().flatten()?;
    masters.iter().all(|m| *m == Some(first)).then_some(first)
}

/// Handle for the background svv probe; stops and joins on drop.
pub struct ProbeHandle {
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Drop for ProbeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
