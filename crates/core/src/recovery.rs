//! Selector and site recovery glue (paper §V-C).
//!
//! The heavy lifting — replaying the durable logs and reconstructing
//! mastership from grant/release records — lives in
//! `dynamast_replication::recovery`. This module overlays those primitives
//! with DynaMast-specific policy: a recovering site selector merges the
//! initial placement with the remastering history, and a recovering data
//! site derives which partitions it mastered at the time of the crash.

use std::collections::{HashMap, HashSet};

use dynamast_common::ids::{PartitionId, SiteId};
use dynamast_common::{DynaError, Result};
use dynamast_replication::checkpoint::Checkpoint;
use dynamast_replication::record::LogRecord;
use dynamast_replication::recovery::{
    rebuild_mastership, replay_all, replay_from_hosted, ReplayedState,
};
use dynamast_replication::LogSet;
use dynamast_storage::{Catalog, Store};

/// Recovers the selector's full partition→master map: the initial placement
/// overlaid with every remastering recorded in the logs.
pub fn recover_selector_map(
    logs: &LogSet,
    initial_placements: &[(PartitionId, SiteId)],
) -> Result<HashMap<PartitionId, SiteId>> {
    let mut map: HashMap<PartitionId, SiteId> = initial_placements.iter().copied().collect();
    for (p, s) in rebuild_mastership(logs)? {
        map.insert(p, s);
    }
    Ok(map)
}

/// Like [`recover_selector_map`], but reconciled against the sites'
/// ownership tables — either fenced live tables (the promotion path, §V-C)
/// or the checkpoint-reconstructed claims of a disk-only restart
/// ([`recover_site_checkpointed`]).
///
/// The durable logs lag the tables by construction: a site updates its
/// ownership table *before* appending the Release/Grant record, so a crash
/// in that window leaves a live site claiming a partition the logs do not
/// (yet) award it. A single live claimant therefore wins over the log-derived
/// owner — the site's positive claim is the later fact. Two live sites
/// claiming the same partition is dual mastership, which fencing makes
/// impossible; seeing it means the tables are corrupt, and reconciliation
/// fails loudly rather than guessing.
pub fn recover_selector_map_reconciled(
    logs: &LogSet,
    initial_placements: &[(PartitionId, SiteId)],
    live_tables: &[(SiteId, Vec<PartitionId>)],
) -> Result<HashMap<PartitionId, SiteId>> {
    let mut map = recover_selector_map(logs, initial_placements)?;
    let mut claimants: HashMap<PartitionId, SiteId> = HashMap::new();
    // Sort by site id so iteration order (and any error raised) is
    // deterministic regardless of fencing reply order.
    let mut tables: Vec<&(SiteId, Vec<PartitionId>)> = live_tables.iter().collect();
    tables.sort_by_key(|(site, _)| *site);
    for (site, mastered) in tables {
        for p in mastered {
            if let Some(other) = claimants.insert(*p, *site) {
                if other != *site {
                    return Err(DynaError::Internal(
                        "two live sites claim mastership of one partition",
                    ));
                }
            }
            map.insert(*p, *site);
        }
    }
    Ok(map)
}

/// The highest remastering epoch among the records the durable logs still
/// retain (0 when no remaster ever happened). A promoted selector allocates
/// epochs strictly above this so it never collides with its predecessor's in
/// the sites' per-`(partition, epoch)` idempotency caches.
///
/// After checkpoint-gated segment truncation only the retained suffix is
/// visible, so an epoch whose record was truncated can in principle be
/// reissued. The floor that permitted truncation means every site
/// checkpointed past that record — and a *restarted* site's ledger is empty —
/// but a site that stayed live across the truncation keeps the old epoch in
/// its volatile ledger; see DESIGN.md §13 for this (narrow) caveat.
pub fn max_remaster_epoch(logs: &LogSet) -> Result<u64> {
    let mut max = 0u64;
    for origin_idx in 0..logs.num_sites() {
        let log = logs.log(SiteId::new(origin_idx));
        let (records, _) = log.read_from(log.base())?;
        for record in records {
            if let LogRecord::Release { epoch, .. } | LogRecord::Grant { epoch, .. } = record {
                max = max.max(epoch);
            }
        }
    }
    Ok(max)
}

/// Recovers one site's storage state plus the partitions it mastered at
/// crash time.
pub struct RecoveredSite {
    /// Replayed storage, svv, and resume offsets.
    pub state: ReplayedState,
    /// Partitions the site mastered when it crashed.
    pub mastered: Vec<PartitionId>,
}

/// Rebuilds a crashed site from the logs (§V-C: "any data site recovers
/// independently by [...] replaying redo logs from the positions indicated
/// by the site version vector").
pub fn recover_site(
    site: SiteId,
    logs: &LogSet,
    catalog: Catalog,
    mvcc_versions: usize,
    initial_placements: &[(PartitionId, SiteId)],
) -> Result<RecoveredSite> {
    let state = replay_all(logs, catalog, mvcc_versions)?;
    let mastered = recover_selector_map(logs, initial_placements)?
        .into_iter()
        .filter(|(_, s)| *s == site)
        .map(|(p, _)| p)
        .collect();
    Ok(RecoveredSite { state, mastered })
}

/// One site's state after checkpoint-seeded replay.
pub struct CheckpointedSite {
    /// Storage, svv, and resume offsets: the checkpoint image overlaid with
    /// the replayed retained-log suffix.
    pub state: ReplayedState,
    /// The site's ownership-table claims, reconstructed as the checkpoint's
    /// mastered set rolled forward through the own-log grant/release suffix.
    /// Feed these to [`recover_selector_map_reconciled`] to resolve the
    /// cluster-wide placement map.
    pub claims: Vec<PartitionId>,
    /// Counter of the checkpoint this recovery loaded (0 = none existed;
    /// the next checkpoint the site writes must use a larger counter).
    pub last_checkpoint: u64,
    /// Highest remaster epoch the site had observed: the checkpoint's
    /// persisted watermark maxed with the Release/Grant epochs in the
    /// replayed own-log suffix. Feeds the selector's `epoch_floor` so a
    /// recovery whose logs were truncated past the last remaster record
    /// cannot re-issue already-used epochs.
    pub epoch: u64,
    /// Partitions the site hosted a copy of at the checkpoint cut (`None` =
    /// full replication). Copies installed *after* the cut are gone — their
    /// rows were never checkpointed — so this is the site's post-restart
    /// hosting truth; the selector reconciles its replica map against it.
    pub hosted: Option<Vec<PartitionId>>,
}

/// Rebuilds one site from its latest durable checkpoint plus the retained
/// log suffix (the tentpole of checkpointed recovery): the store is seeded
/// from the checkpoint image, replay resumes from the checkpointed offsets,
/// and the mastered set is the checkpoint's claims rolled forward through
/// the site's own retained grant/release records (set insert/remove, so
/// double-application across the checkpoint boundary is harmless).
///
/// With no checkpoint (`ckpt == None`) this degrades to [`recover_site`]'s
/// replay-from-zero — safe because a site that never checkpointed never
/// advanced its truncation floors, so every log retains its full history.
/// Note the bulk-load image is *not* part of the logs: a deployment must
/// checkpoint at least once after the initial population, or rows that were
/// loaded but never rewritten are absent after a disk-only restart.
pub fn recover_site_checkpointed(
    site: SiteId,
    logs: &LogSet,
    ckpt: Option<Checkpoint>,
    catalog: Catalog,
    mvcc_versions: usize,
) -> Result<CheckpointedSite> {
    let (state, suffix_start, mut claims, last_checkpoint, mut epoch, hosted) = match ckpt {
        Some(ckpt) => {
            let store = Store::new(catalog, mvcc_versions);
            let hosted_set: Option<HashSet<PartitionId>> = ckpt
                .hosted
                .as_ref()
                .map(|h| h.iter().copied().collect::<HashSet<_>>());
            for entry in &ckpt.image {
                // Under partial replication the merged image may carry stale
                // entries of partitions dropped between the incremental and
                // its base; the hosted set is the cut's truth, so filter.
                if let Some(hosted) = &hosted_set {
                    if !hosted.contains(&store.catalog().partition_of(entry.key)?) {
                        continue;
                    }
                }
                store.install(entry.key, entry.stamp, entry.row.clone())?;
            }
            let claims: HashSet<PartitionId> = ckpt.mastered.iter().copied().collect();
            let suffix_start = ckpt.offsets[site.as_usize()];
            let state =
                replay_from_hosted(logs, store, ckpt.svv, ckpt.offsets, hosted_set.as_ref())?;
            (
                state,
                suffix_start,
                claims,
                ckpt.counter,
                ckpt.epoch,
                ckpt.hosted,
            )
        }
        None => {
            let state = replay_all(logs, catalog, mvcc_versions)?;
            (state, 0, HashSet::new(), 0, 0, None)
        }
    };
    // Roll the own-log suffix over the checkpointed claims. The ownership
    // table applied these records in log order before each was appended, so
    // replaying them as set operations reconstructs the table exactly (up
    // to the usual one-record table-updated-but-unlogged crash window).
    let (records, _) = logs.log(site).read_from(suffix_start)?;
    for record in records {
        match record {
            LogRecord::Grant {
                partition,
                epoch: e,
                ..
            } => {
                claims.insert(partition);
                epoch = epoch.max(e);
            }
            LogRecord::Release {
                partition,
                epoch: e,
                ..
            } => {
                claims.remove(&partition);
                epoch = epoch.max(e);
            }
            LogRecord::Commit { .. } | LogRecord::Noop { .. } => {}
        }
    }
    let mut claims: Vec<PartitionId> = claims.into_iter().collect();
    claims.sort();
    Ok(CheckpointedSite {
        state,
        claims,
        last_checkpoint,
        epoch,
        hosted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_replication::record::LogRecord;

    #[test]
    fn selector_map_overlays_history_on_initial_placement() {
        let logs = LogSet::new(2);
        let p1 = PartitionId::new(1);
        let p2 = PartitionId::new(2);
        logs.log(SiteId::new(1)).append(&LogRecord::Grant {
            origin: SiteId::new(1),
            sequence: 1,
            partition: p2,
            epoch: 1,
        });
        let map =
            recover_selector_map(&logs, &[(p1, SiteId::new(0)), (p2, SiteId::new(0))]).unwrap();
        assert_eq!(map[&p1], SiteId::new(0)); // untouched: initial placement
        assert_eq!(map[&p2], SiteId::new(1)); // remastered per the log
    }

    #[test]
    fn reconciliation_prefers_the_live_sites_positive_claim() {
        // Log says S1 mastered p (grant epoch 1); but S2's live table claims
        // p — the grant-before-log-append crash window. The site wins.
        let logs = LogSet::new(3);
        let p = PartitionId::new(4);
        logs.log(SiteId::new(1)).append(&LogRecord::Grant {
            origin: SiteId::new(1),
            sequence: 1,
            partition: p,
            epoch: 1,
        });
        let live = vec![(SiteId::new(1), vec![]), (SiteId::new(2), vec![p])];
        let map = recover_selector_map_reconciled(&logs, &[(p, SiteId::new(0))], &live).unwrap();
        assert_eq!(map[&p], SiteId::new(2));
    }

    #[test]
    fn reconciliation_rejects_dual_live_claims() {
        let logs = LogSet::new(3);
        let p = PartitionId::new(4);
        let live = vec![(SiteId::new(0), vec![p]), (SiteId::new(1), vec![p])];
        let err = recover_selector_map_reconciled(&logs, &[], &live).unwrap_err();
        assert_eq!(
            err,
            dynamast_common::DynaError::Internal(
                "two live sites claim mastership of one partition"
            )
        );
    }

    #[test]
    fn max_remaster_epoch_spans_all_logs() {
        let logs = LogSet::new(2);
        assert_eq!(max_remaster_epoch(&logs).unwrap(), 0);
        logs.log(SiteId::new(0)).append(&LogRecord::Release {
            origin: SiteId::new(0),
            sequence: 1,
            partition: PartitionId::new(1),
            epoch: 7,
        });
        logs.log(SiteId::new(1)).append(&LogRecord::Grant {
            origin: SiteId::new(1),
            sequence: 1,
            partition: PartitionId::new(1),
            epoch: 9,
        });
        assert_eq!(max_remaster_epoch(&logs).unwrap(), 9);
    }

    #[test]
    fn checkpointed_recovery_replays_suffix_and_rolls_claims() {
        use dynamast_common::ids::{Key, TableId};
        use dynamast_common::{Row, Value, VersionVector};
        use dynamast_replication::checkpoint::ImageEntry;
        use dynamast_replication::record::WriteEntry;
        use dynamast_storage::VersionStamp;

        let logs = LogSet::new(2);
        let s0 = SiteId::new(0);
        let p1 = PartitionId::new(1);
        let p2 = PartitionId::new(2);
        let key = Key::new(TableId::new(0), 7);
        let row = |v: u64| Row::new(vec![Value::U64(v)]);
        let log = logs.log(s0);
        log.append(&LogRecord::Grant {
            origin: s0,
            sequence: 1,
            partition: p1,
            epoch: 1,
        });
        log.append(&LogRecord::Commit {
            origin: s0,
            tvv: VersionVector::from_counts(vec![2, 0]),
            writes: vec![WriteEntry::new(key, row(1))],
        });
        // Everything past here is the post-checkpoint suffix.
        log.append(&LogRecord::Commit {
            origin: s0,
            tvv: VersionVector::from_counts(vec![3, 0]),
            writes: vec![WriteEntry::new(key, row(2))],
        });
        log.append(&LogRecord::Release {
            origin: s0,
            sequence: 4,
            partition: p1,
            epoch: 2,
        });
        log.append(&LogRecord::Grant {
            origin: s0,
            sequence: 5,
            partition: p2,
            epoch: 3,
        });

        let mut catalog = Catalog::new();
        catalog.add_table("t", 1, 100);
        let ckpt = Checkpoint {
            counter: 9,
            site: s0,
            svv: VersionVector::from_counts(vec![2, 0]),
            offsets: vec![2, 0],
            mastered: vec![p1],
            epoch: 3,
            base_counter: 0,
            hosted: None,
            image: vec![ImageEntry {
                key,
                stamp: VersionStamp::new(s0, 2),
                row: row(1),
            }],
        };
        let recovered =
            recover_site_checkpointed(s0, &logs, Some(ckpt), catalog.clone(), 4).unwrap();
        assert_eq!(recovered.last_checkpoint, 9);
        assert_eq!(recovered.state.svv, VersionVector::from_counts(vec![5, 0]));
        assert_eq!(recovered.state.offsets, vec![5, 0]);
        // The suffix's newer write supersedes the checkpoint image.
        assert_eq!(
            recovered
                .state
                .store
                .read(key, &recovered.state.svv)
                .unwrap(),
            Some(row(2))
        );
        // Claims: {p1} from the checkpoint, released in the suffix; p2
        // granted in the suffix.
        assert_eq!(recovered.claims, vec![p2]);
        assert_eq!(recovered.hosted, None);

        // No checkpoint: replay from zero converges on the same state.
        let fresh = recover_site_checkpointed(s0, &logs, None, catalog, 4).unwrap();
        assert_eq!(fresh.last_checkpoint, 0);
        assert_eq!(fresh.state.svv, VersionVector::from_counts(vec![5, 0]));
        assert_eq!(fresh.claims, vec![p2]);
    }

    /// Partial-replication restart: the checkpoint's hosted set filters both
    /// the image restore (stale dropped-partition entries in a merged
    /// incremental) and the suffix replay (foreign writes skipped, svv still
    /// advanced), and is surfaced for selector-side reconciliation.
    #[test]
    fn checkpointed_recovery_respects_the_hosted_set() {
        use dynamast_common::ids::{Key, TableId};
        use dynamast_common::{Row, Value, VersionVector};
        use dynamast_replication::checkpoint::ImageEntry;
        use dynamast_replication::record::WriteEntry;
        use dynamast_storage::VersionStamp;

        let logs = LogSet::new(2);
        let s0 = SiteId::new(0);
        let p0 = PartitionId::new(0);
        // partition_size = 100: record 7 → partition 0, record 150 → 1.
        let hosted_key = Key::new(TableId::new(0), 7);
        let foreign_key = Key::new(TableId::new(0), 150);
        let row = |v: u64| Row::new(vec![Value::U64(v)]);
        // Post-checkpoint suffix touches both partitions.
        logs.log(s0).append(&LogRecord::Commit {
            origin: s0,
            tvv: VersionVector::from_counts(vec![1, 0]),
            writes: vec![
                WriteEntry::new(hosted_key, row(2)),
                WriteEntry::new(foreign_key, row(9)),
            ],
        });

        let mut catalog = Catalog::new();
        catalog.add_table("t", 1, 100);
        let ckpt = Checkpoint {
            counter: 3,
            site: s0,
            svv: VersionVector::from_counts(vec![0, 0]),
            offsets: vec![0, 0],
            mastered: vec![p0],
            epoch: 0,
            base_counter: 0,
            hosted: Some(vec![p0]),
            image: vec![
                ImageEntry {
                    key: hosted_key,
                    stamp: VersionStamp::new(s0, 0),
                    row: row(1),
                },
                // Stale entry of a partition dropped before the cut.
                ImageEntry {
                    key: foreign_key,
                    stamp: VersionStamp::new(s0, 0),
                    row: row(8),
                },
            ],
        };
        let recovered = recover_site_checkpointed(s0, &logs, Some(ckpt), catalog, 4).unwrap();
        assert_eq!(recovered.hosted, Some(vec![p0]));
        assert_eq!(recovered.state.svv, VersionVector::from_counts(vec![1, 0]));
        let snap = recovered.state.svv.clone();
        assert_eq!(
            recovered.state.store.read(hosted_key, &snap).unwrap(),
            Some(row(2))
        );
        assert_eq!(
            recovered.state.store.read(foreign_key, &snap).unwrap(),
            None
        );
    }

    #[test]
    fn recover_site_lists_only_its_partitions() {
        let logs = LogSet::new(2);
        let p = PartitionId::new(9);
        logs.log(SiteId::new(0)).append(&LogRecord::Grant {
            origin: SiteId::new(0),
            sequence: 1,
            partition: p,
            epoch: 1,
        });
        let mut catalog = Catalog::new();
        catalog.add_table("t", 1, 100);
        let recovered = recover_site(SiteId::new(0), &logs, catalog.clone(), 4, &[]).unwrap();
        assert_eq!(recovered.mastered, vec![p]);
        let other = recover_site(SiteId::new(1), &logs, catalog, 4, &[]).unwrap();
        assert!(other.mastered.is_empty());
    }
}
