//! Selector and site recovery glue (paper §V-C).
//!
//! The heavy lifting — replaying the durable logs and reconstructing
//! mastership from grant/release records — lives in
//! `dynamast_replication::recovery`. This module overlays those primitives
//! with DynaMast-specific policy: a recovering site selector merges the
//! initial placement with the remastering history, and a recovering data
//! site derives which partitions it mastered at the time of the crash.

use std::collections::HashMap;

use dynamast_common::ids::{PartitionId, SiteId};
use dynamast_common::Result;
use dynamast_replication::recovery::{rebuild_mastership, replay_all, ReplayedState};
use dynamast_replication::LogSet;
use dynamast_storage::Catalog;

/// Recovers the selector's full partition→master map: the initial placement
/// overlaid with every remastering recorded in the logs.
pub fn recover_selector_map(
    logs: &LogSet,
    initial_placements: &[(PartitionId, SiteId)],
) -> Result<HashMap<PartitionId, SiteId>> {
    let mut map: HashMap<PartitionId, SiteId> = initial_placements.iter().copied().collect();
    for (p, s) in rebuild_mastership(logs)? {
        map.insert(p, s);
    }
    Ok(map)
}

/// Recovers one site's storage state plus the partitions it mastered at
/// crash time.
pub struct RecoveredSite {
    /// Replayed storage, svv, and resume offsets.
    pub state: ReplayedState,
    /// Partitions the site mastered when it crashed.
    pub mastered: Vec<PartitionId>,
}

/// Rebuilds a crashed site from the logs (§V-C: "any data site recovers
/// independently by [...] replaying redo logs from the positions indicated
/// by the site version vector").
pub fn recover_site(
    site: SiteId,
    logs: &LogSet,
    catalog: Catalog,
    mvcc_versions: usize,
    initial_placements: &[(PartitionId, SiteId)],
) -> Result<RecoveredSite> {
    let state = replay_all(logs, catalog, mvcc_versions)?;
    let mastered = recover_selector_map(logs, initial_placements)?
        .into_iter()
        .filter(|(_, s)| *s == site)
        .map(|(p, _)| p)
        .collect();
    Ok(RecoveredSite { state, mastered })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_replication::record::LogRecord;

    #[test]
    fn selector_map_overlays_history_on_initial_placement() {
        let logs = LogSet::new(2);
        let p1 = PartitionId::new(1);
        let p2 = PartitionId::new(2);
        logs.log(SiteId::new(1)).append(&LogRecord::Grant {
            origin: SiteId::new(1),
            sequence: 1,
            partition: p2,
            epoch: 1,
        });
        let map =
            recover_selector_map(&logs, &[(p1, SiteId::new(0)), (p2, SiteId::new(0))]).unwrap();
        assert_eq!(map[&p1], SiteId::new(0)); // untouched: initial placement
        assert_eq!(map[&p2], SiteId::new(1)); // remastered per the log
    }

    #[test]
    fn recover_site_lists_only_its_partitions() {
        let logs = LogSet::new(2);
        let p = PartitionId::new(9);
        logs.log(SiteId::new(0)).append(&LogRecord::Grant {
            origin: SiteId::new(0),
            sequence: 1,
            partition: p,
            epoch: 1,
        });
        let mut catalog = Catalog::new();
        catalog.add_table("t", 1, 100);
        let recovered = recover_site(SiteId::new(0), &logs, catalog.clone(), 4, &[]).unwrap();
        assert_eq!(recovered.mastered, vec![p]);
        let other = recover_site(SiteId::new(1), &logs, catalog, 4, &[]).unwrap();
        assert!(other.mastered.is_empty());
    }
}
