//! Selector and site recovery glue (paper §V-C).
//!
//! The heavy lifting — replaying the durable logs and reconstructing
//! mastership from grant/release records — lives in
//! `dynamast_replication::recovery`. This module overlays those primitives
//! with DynaMast-specific policy: a recovering site selector merges the
//! initial placement with the remastering history, and a recovering data
//! site derives which partitions it mastered at the time of the crash.

use std::collections::HashMap;

use dynamast_common::ids::{PartitionId, SiteId};
use dynamast_common::{DynaError, Result};
use dynamast_replication::record::LogRecord;
use dynamast_replication::recovery::{rebuild_mastership, replay_all, ReplayedState};
use dynamast_replication::LogSet;
use dynamast_storage::Catalog;

/// Recovers the selector's full partition→master map: the initial placement
/// overlaid with every remastering recorded in the logs.
pub fn recover_selector_map(
    logs: &LogSet,
    initial_placements: &[(PartitionId, SiteId)],
) -> Result<HashMap<PartitionId, SiteId>> {
    let mut map: HashMap<PartitionId, SiteId> = initial_placements.iter().copied().collect();
    for (p, s) in rebuild_mastership(logs)? {
        map.insert(p, s);
    }
    Ok(map)
}

/// Like [`recover_selector_map`], but reconciled against the live sites'
/// ownership tables (the promotion path, §V-C).
///
/// The durable logs lag the tables by construction: a site updates its
/// ownership table *before* appending the Release/Grant record, so a crash
/// in that window leaves a live site claiming a partition the logs do not
/// (yet) award it. A single live claimant therefore wins over the log-derived
/// owner — the site's positive claim is the later fact. Two live sites
/// claiming the same partition is dual mastership, which fencing makes
/// impossible; seeing it means the tables are corrupt, and reconciliation
/// fails loudly rather than guessing.
pub fn recover_selector_map_reconciled(
    logs: &LogSet,
    initial_placements: &[(PartitionId, SiteId)],
    live_tables: &[(SiteId, Vec<PartitionId>)],
) -> Result<HashMap<PartitionId, SiteId>> {
    let mut map = recover_selector_map(logs, initial_placements)?;
    let mut claimants: HashMap<PartitionId, SiteId> = HashMap::new();
    // Sort by site id so iteration order (and any error raised) is
    // deterministic regardless of fencing reply order.
    let mut tables: Vec<&(SiteId, Vec<PartitionId>)> = live_tables.iter().collect();
    tables.sort_by_key(|(site, _)| *site);
    for (site, mastered) in tables {
        for p in mastered {
            if let Some(other) = claimants.insert(*p, *site) {
                if other != *site {
                    return Err(DynaError::Internal(
                        "two live sites claim mastership of one partition",
                    ));
                }
            }
            map.insert(*p, *site);
        }
    }
    Ok(map)
}

/// The highest remastering epoch recorded in any durable log (0 when no
/// remaster ever happened). A promoted selector allocates epochs strictly
/// above this so it never collides with its predecessor's in the sites'
/// per-`(partition, epoch)` idempotency caches.
pub fn max_remaster_epoch(logs: &LogSet) -> Result<u64> {
    let mut max = 0u64;
    for origin_idx in 0..logs.num_sites() {
        let (records, _) = logs.log(SiteId::new(origin_idx)).read_from(0)?;
        for record in records {
            if let LogRecord::Release { epoch, .. } | LogRecord::Grant { epoch, .. } = record {
                max = max.max(epoch);
            }
        }
    }
    Ok(max)
}

/// Recovers one site's storage state plus the partitions it mastered at
/// crash time.
pub struct RecoveredSite {
    /// Replayed storage, svv, and resume offsets.
    pub state: ReplayedState,
    /// Partitions the site mastered when it crashed.
    pub mastered: Vec<PartitionId>,
}

/// Rebuilds a crashed site from the logs (§V-C: "any data site recovers
/// independently by [...] replaying redo logs from the positions indicated
/// by the site version vector").
pub fn recover_site(
    site: SiteId,
    logs: &LogSet,
    catalog: Catalog,
    mvcc_versions: usize,
    initial_placements: &[(PartitionId, SiteId)],
) -> Result<RecoveredSite> {
    let state = replay_all(logs, catalog, mvcc_versions)?;
    let mastered = recover_selector_map(logs, initial_placements)?
        .into_iter()
        .filter(|(_, s)| *s == site)
        .map(|(p, _)| p)
        .collect();
    Ok(RecoveredSite { state, mastered })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_replication::record::LogRecord;

    #[test]
    fn selector_map_overlays_history_on_initial_placement() {
        let logs = LogSet::new(2);
        let p1 = PartitionId::new(1);
        let p2 = PartitionId::new(2);
        logs.log(SiteId::new(1)).append(&LogRecord::Grant {
            origin: SiteId::new(1),
            sequence: 1,
            partition: p2,
            epoch: 1,
        });
        let map =
            recover_selector_map(&logs, &[(p1, SiteId::new(0)), (p2, SiteId::new(0))]).unwrap();
        assert_eq!(map[&p1], SiteId::new(0)); // untouched: initial placement
        assert_eq!(map[&p2], SiteId::new(1)); // remastered per the log
    }

    #[test]
    fn reconciliation_prefers_the_live_sites_positive_claim() {
        // Log says S1 mastered p (grant epoch 1); but S2's live table claims
        // p — the grant-before-log-append crash window. The site wins.
        let logs = LogSet::new(3);
        let p = PartitionId::new(4);
        logs.log(SiteId::new(1)).append(&LogRecord::Grant {
            origin: SiteId::new(1),
            sequence: 1,
            partition: p,
            epoch: 1,
        });
        let live = vec![(SiteId::new(1), vec![]), (SiteId::new(2), vec![p])];
        let map = recover_selector_map_reconciled(&logs, &[(p, SiteId::new(0))], &live).unwrap();
        assert_eq!(map[&p], SiteId::new(2));
    }

    #[test]
    fn reconciliation_rejects_dual_live_claims() {
        let logs = LogSet::new(3);
        let p = PartitionId::new(4);
        let live = vec![(SiteId::new(0), vec![p]), (SiteId::new(1), vec![p])];
        let err = recover_selector_map_reconciled(&logs, &[], &live).unwrap_err();
        assert_eq!(
            err,
            dynamast_common::DynaError::Internal(
                "two live sites claim mastership of one partition"
            )
        );
    }

    #[test]
    fn max_remaster_epoch_spans_all_logs() {
        let logs = LogSet::new(2);
        assert_eq!(max_remaster_epoch(&logs).unwrap(), 0);
        logs.log(SiteId::new(0)).append(&LogRecord::Release {
            origin: SiteId::new(0),
            sequence: 1,
            partition: PartitionId::new(1),
            epoch: 7,
        });
        logs.log(SiteId::new(1)).append(&LogRecord::Grant {
            origin: SiteId::new(1),
            sequence: 1,
            partition: PartitionId::new(1),
            epoch: 9,
        });
        assert_eq!(max_remaster_epoch(&logs).unwrap(), 9);
    }

    #[test]
    fn recover_site_lists_only_its_partitions() {
        let logs = LogSet::new(2);
        let p = PartitionId::new(9);
        logs.log(SiteId::new(0)).append(&LogRecord::Grant {
            origin: SiteId::new(0),
            sequence: 1,
            partition: p,
            epoch: 1,
        });
        let mut catalog = Catalog::new();
        catalog.add_table("t", 1, 100);
        let recovered = recover_site(SiteId::new(0), &logs, catalog.clone(), 4, &[]).unwrap();
        assert_eq!(recovered.mastered, vec![p]);
        let other = recover_site(SiteId::new(1), &logs, catalog, 4, &[]).unwrap();
        assert!(other.mastered.is_empty());
    }
}
