//! Property test (offline `proptest` shim): selector-map recovery over *any*
//! prefix of a remaster history — including prefixes cut mid-remaster,
//! between a sub-step's table update and its log append — yields a map in
//! which every partition has exactly one master and no live ownership table
//! is contradicted.
//!
//! The model mirrors the data sites' real write ordering: a site updates its
//! ownership table *before* appending the durable record, so each remaster
//! `p: a → b` is four sub-steps:
//!
//! 1. `a`'s table drops `p`
//! 2. `a`'s log appends `Release { p, epoch }`
//! 3. `b`'s table adds `p`
//! 4. `b`'s log appends `Grant { p, epoch }`
//!
//! A selector crash can truncate the history after any sub-step; promotion
//! recovers from exactly what remains (`recover_selector_map_reconciled`).

use std::collections::{BTreeSet, HashMap};

use dynamast_common::ids::{PartitionId, SiteId};
use dynamast_core::recovery::recover_selector_map_reconciled;
use dynamast_replication::record::LogRecord;
use dynamast_replication::LogSet;
use proptest::prelude::*;

const NUM_SITES: usize = 3;
const NUM_PARTITIONS: usize = 6;

/// Replays `ops` up to the truncation point into (logs, live tables),
/// mirroring the sites' table-before-log write order.
struct Model {
    logs: LogSet,
    tables: Vec<BTreeSet<PartitionId>>,
    sequences: Vec<u64>,
    owners: HashMap<PartitionId, SiteId>,
}

impl Model {
    fn new(initial: &[(PartitionId, SiteId)]) -> Self {
        let mut tables = vec![BTreeSet::new(); NUM_SITES];
        for (p, s) in initial {
            tables[s.as_usize()].insert(*p);
        }
        Model {
            logs: LogSet::new(NUM_SITES),
            tables,
            sequences: vec![0; NUM_SITES],
            owners: initial.iter().copied().collect(),
        }
    }

    fn append(&mut self, site: SiteId, record: impl FnOnce(SiteId, u64) -> LogRecord) {
        self.sequences[site.as_usize()] += 1;
        let sequence = self.sequences[site.as_usize()];
        self.logs.log(site).append(&record(site, sequence));
    }

    /// Applies one remaster's sub-steps `0..steps` (steps ≤ 4).
    fn remaster(
        &mut self,
        partition: PartitionId,
        from: SiteId,
        to: SiteId,
        epoch: u64,
        steps: u8,
    ) {
        if steps >= 1 {
            self.tables[from.as_usize()].remove(&partition);
        }
        if steps >= 2 {
            self.append(from, |origin, sequence| LogRecord::Release {
                origin,
                sequence,
                partition,
                epoch,
            });
        }
        if steps >= 3 {
            self.tables[to.as_usize()].insert(partition);
        }
        if steps >= 4 {
            self.append(to, |origin, sequence| LogRecord::Grant {
                origin,
                sequence,
                partition,
                epoch,
            });
            self.owners.insert(partition, to);
        }
    }

    fn live_tables(&self) -> Vec<(SiteId, Vec<PartitionId>)> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, set)| (SiteId::new(i), set.iter().copied().collect()))
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn any_truncated_prefix_recovers_to_single_mastership(
        moves in prop::collection::vec((0usize..NUM_PARTITIONS, 1usize..NUM_SITES), 0..24),
        cut_raw in 0usize..10_000,
    ) {
        // Every partition starts placed (round-robin), as after a seed or a
        // completed recovery.
        let initial: Vec<(PartitionId, SiteId)> = (0..NUM_PARTITIONS)
            .map(|p| (PartitionId::new(p), SiteId::new(p % NUM_SITES)))
            .collect();
        let mut model = Model::new(&initial);

        // The cut lands after an arbitrary sub-step of an arbitrary move:
        // full moves before it, one possibly-truncated move at it, nothing
        // after.
        let total_steps = moves.len() * 4;
        let cut = cut_raw % (total_steps + 1);
        for (i, (p, hop)) in moves.iter().enumerate() {
            let done = cut.saturating_sub(i * 4).min(4) as u8;
            if done == 0 {
                break;
            }
            let partition = PartitionId::new(*p);
            let from = model.owners[&partition];
            // `hop` ∈ 1..NUM_SITES, so the target is always a *different*
            // site (a self-remaster is a no-op the selector never issues).
            let to = SiteId::new((from.as_usize() + hop) % NUM_SITES);
            let epoch = (i + 1) as u64;
            model.remaster(partition, from, to, epoch, done);
        }

        let live = model.live_tables();
        let map = recover_selector_map_reconciled(&model.logs, &initial, &live);
        prop_assert!(map.is_ok(), "reconciliation failed: {:?}", map.err());
        let map = map.unwrap();

        // Every partition has exactly one master.
        for p in 0..NUM_PARTITIONS {
            let partition = PartitionId::new(p);
            prop_assert!(
                map.contains_key(&partition),
                "partition {partition:?} lost its master after truncated recovery"
            );
        }
        prop_assert_eq!(map.len(), NUM_PARTITIONS);

        // No live-table contradiction: a site that claims a partition is
        // the recovered master of it…
        for (site, mastered) in &live {
            for p in mastered {
                prop_assert_eq!(
                    map[p], *site,
                    "recovered map contradicts the live table of {:?}", site
                );
            }
        }
        // …and each partition has at most one live claimant to begin with.
        let mut claimed = BTreeSet::new();
        for (_, mastered) in &live {
            for p in mastered {
                prop_assert!(claimed.insert(*p), "dual live claim on {:?}", p);
            }
        }
    }
}
