//! Property-based tests for the site selector's strategy model and
//! statistics tracker.

use std::time::{Duration, Instant};

use dynamast_common::ids::{ClientId, PartitionId, SiteId};
use dynamast_common::{StrategyWeights, VersionVector};
use dynamast_core::stats::{AccessStats, StatsConfig};
use dynamast_core::strategy::{best_site, score_sites, CoAccess, ScoreInputs};
use proptest::prelude::*;

fn weights_strategy() -> impl Strategy<Value = StrategyWeights> {
    (0.0..10_000.0f64, 0.0..2.0f64, 0.0..5.0f64, 0.0..5.0f64).prop_map(
        |(balance, delay, intra, inter)| StrategyWeights {
            balance,
            delay,
            intra_txn: intra,
            inter_txn: inter,
        },
    )
}

proptest! {
    /// Scoring is total: every candidate gets a finite score, and the argmax
    /// is a valid site.
    #[test]
    fn scores_are_finite_and_argmax_valid(
        weights in weights_strategy(),
        site_load in prop::collection::vec(0.0..1000.0f64, 4),
        partition_load in prop::collection::vec(0.0..50.0f64, 1..4),
        masters in prop::collection::vec(prop::option::of(0usize..4), 1..4),
    ) {
        let n = partition_load.len().min(masters.len());
        let partitions: Vec<(PartitionId, Option<SiteId>)> = (0..n)
            .map(|i| (PartitionId::new(i), masters[i].map(SiteId::new)))
            .collect();
        let partition_load = partition_load[..n].to_vec();
        let empty: Vec<Vec<CoAccess>> = vec![Vec::new(); n];
        let site_vvs: Vec<VersionVector> = (0..4).map(|_| VersionVector::zero(4)).collect();
        let cvv = VersionVector::zero(4);
        let scores = score_sites(&ScoreInputs {
            num_sites: 4,
            weights: &weights,
            partitions: &partitions,
            partition_load: &partition_load,
            site_load: &site_load,
            intra: &empty,
            inter: &empty,
            site_vvs: &site_vvs,
            cvv: &cvv,
        });
        prop_assert_eq!(scores.len(), 4);
        for s in &scores {
            prop_assert!(s.is_finite(), "non-finite score: {scores:?}");
        }
        prop_assert!(best_site(&scores).as_usize() < 4);
    }

    /// With only the balance feature active, the least-loaded site always
    /// wins for an unplaced partition.
    #[test]
    fn balance_only_picks_least_loaded(
        mut site_load in prop::collection::vec(1.0..1000.0f64, 4),
        load in 1.0..20.0f64,
    ) {
        // Make the minimum unique so the argmax is deterministic.
        let min_idx = site_load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        site_load[min_idx] *= 0.5;
        let weights = StrategyWeights {
            balance: 1.0,
            delay: 0.0,
            intra_txn: 0.0,
            inter_txn: 0.0,
        };
        let partitions = [(PartitionId::new(0), None)];
        let partition_load = [load];
        let empty: Vec<Vec<CoAccess>> = vec![Vec::new()];
        let site_vvs: Vec<VersionVector> = (0..4).map(|_| VersionVector::zero(4)).collect();
        let cvv = VersionVector::zero(4);
        let scores = score_sites(&ScoreInputs {
            num_sites: 4,
            weights: &weights,
            partitions: &partitions,
            partition_load: &partition_load,
            site_load: &site_load,
            intra: &empty,
            inter: &empty,
            site_vvs: &site_vvs,
            cvv: &cvv,
        });
        prop_assert_eq!(best_site(&scores).as_usize(), min_idx, "{:?} {:?}", scores, site_load);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The statistics tracker's counts never go negative and the history
    /// queue never exceeds its capacity, regardless of access pattern.
    #[test]
    fn stats_counts_stay_consistent(
        accesses in prop::collection::vec(
            (0u64..8, prop::collection::vec(0usize..12, 1..4)),
            1..200,
        ),
        capacity in 1usize..50,
    ) {
        let stats = AccessStats::new(
            StatsConfig {
                sample_rate: 1.0,
                history_capacity: capacity,
                inter_window: Duration::from_millis(50),
                max_partners: 4,
            },
            2,
            42,
        );
        let now = Instant::now();
        for (client, parts) in &accesses {
            let mut partitions: Vec<PartitionId> =
                parts.iter().map(|p| PartitionId::new(*p)).collect();
            partitions.sort_unstable();
            partitions.dedup();
            let masters = vec![Some(SiteId::new(0)); partitions.len()];
            stats.record_write_set(ClientId::new(*client as usize), now, &partitions, &masters);
        }
        prop_assert!(stats.history_len() <= capacity);
        // Total retained mass equals the sum over retained samples.
        let (_, site_load) = stats.snapshot(&[]);
        let retained: f64 = site_load.iter().sum();
        prop_assert!(retained >= 0.0);
        let max_possible: usize = accesses
            .iter()
            .rev()
            .take(capacity)
            .map(|(_, p)| {
                let mut q = p.clone();
                q.sort_unstable();
                q.dedup();
                q.len()
            })
            .sum();
        prop_assert!(retained as usize <= max_possible, "{retained} > {max_possible}");
    }
}
