//! Placement-learning behaviour of the adaptive strategies (§IV): the
//! selector spreads unrelated load across sites (balance), co-locates
//! correlated partitions (intra-txn factor), and rarely remasters once the
//! workload's structure is learned.

use std::sync::Arc;

use bytes::Bytes;
use dynamast_common::ids::{ClientId, Key, TableId};
use dynamast_common::{Result, SystemConfig};
use dynamast_core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast_site::proc::{ProcCall, ProcExecutor, TxnCtx};
use dynamast_site::system::{ClientSession, ReplicatedSystem};
use dynamast_storage::Catalog;

const KV: TableId = TableId::new(0);

struct Nop;

impl ProcExecutor for Nop {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        for key in &call.write_set {
            ctx.write(
                *key,
                dynamast_common::Row::new(vec![dynamast_common::Value::U64(1)]),
            )?;
        }
        Ok(Bytes::new())
    }
}

fn write(keys: &[u64]) -> ProcCall {
    ProcCall {
        proc_id: 1,
        args: Bytes::new(),
        write_set: keys.iter().map(|k| Key::new(KV, *k)).collect(),
        read_keys: vec![],
        read_ranges: vec![],
    }
}

fn build(num_sites: usize) -> Arc<DynaMastSystem> {
    let mut catalog = Catalog::new();
    catalog.add_table("kv", 1, 100);
    let config = SystemConfig::new(num_sites)
        .with_instant_network()
        .with_instant_service();
    DynaMastSystem::build(DynaMastConfig::adaptive(config, catalog), Arc::new(Nop))
}

/// Balance: many single-partition write streams spread over all sites.
#[test]
fn unrelated_partitions_spread_across_sites() {
    let system = build(4);
    let mut session = ClientSession::new(ClientId::new(1), 4);
    // 40 independent partitions, each written several times.
    for round in 0..5 {
        for p in 0..40u64 {
            system
                .update(&mut session, &write(&[p * 100 + round]))
                .unwrap();
        }
    }
    let masters = system.selector().map().masters_per_site(4);
    assert_eq!(masters.iter().sum::<u64>(), 40);
    for (i, count) in masters.iter().enumerate() {
        assert!(
            (5..=15).contains(count),
            "site {i} masters {count} of 40 partitions: {masters:?}"
        );
    }
}

/// Co-location: partitions always written together converge to one master
/// and stop needing remastering.
#[test]
fn correlated_partitions_colocate_and_stop_remastering() {
    let system = build(3);
    let mut session = ClientSession::new(ClientId::new(1), 3);
    // Three correlated groups, interleaved.
    let groups: [[u64; 3]; 3] = [[0, 100, 200], [1000, 1100, 1200], [2000, 2100, 2200]];
    for _ in 0..30 {
        for group in &groups {
            system.update(&mut session, &write(group)).unwrap();
        }
    }
    // Each group's partitions share a master.
    for group in &groups {
        let masters: Vec<_> = group
            .iter()
            .map(|k| {
                let p = system.sites()[0]
                    .store()
                    .catalog()
                    .partition_of(Key::new(KV, *k))
                    .unwrap();
                system
                    .selector()
                    .map()
                    .entries_for_existing(p)
                    .unwrap()
                    .master_relaxed()
                    .unwrap()
            })
            .collect();
        assert!(
            masters.windows(2).all(|w| w[0] == w[1]),
            "group {group:?} split across {masters:?}"
        );
    }
    // After convergence, further group transactions hit the fast path.
    let before = system.selector().remaster_ops.get();
    for _ in 0..10 {
        for group in &groups {
            system.update(&mut session, &write(group)).unwrap();
        }
    }
    assert_eq!(
        system.selector().remaster_ops.get(),
        before,
        "steady-state transactions must not remaster"
    );
}

/// The history queue adapts: after a workload shift, the new correlations
/// win even though they contradict the old ones.
#[test]
fn workload_shift_relearns_placements() {
    let system = build(2);
    let mut session = ClientSession::new(ClientId::new(1), 2);
    // Phase one: {A, B} co-accessed.
    let (a, b, c) = (0u64, 500u64, 900u64);
    for _ in 0..20 {
        system.update(&mut session, &write(&[a, b])).unwrap();
        system.update(&mut session, &write(&[c])).unwrap();
    }
    // Phase two: the workload shifts to {A, C}.
    for _ in 0..40 {
        system.update(&mut session, &write(&[a, c])).unwrap();
    }
    let partition_of = |k: u64| {
        system.sites()[0]
            .store()
            .catalog()
            .partition_of(Key::new(KV, k))
            .unwrap()
    };
    let master_of = |k: u64| {
        system
            .selector()
            .map()
            .entries_for_existing(partition_of(k))
            .unwrap()
            .master_relaxed()
            .unwrap()
    };
    assert_eq!(master_of(a), master_of(c), "new correlation must co-locate");
}

/// Pinned mode (single-master expressed in the framework) never remasters
/// and routes everything to the pinned site.
#[test]
fn pinned_selector_routes_everything_to_one_site() {
    let mut catalog = Catalog::new();
    catalog.add_table("kv", 1, 100);
    let config = SystemConfig::new(3)
        .with_instant_network()
        .with_instant_service();
    let system = dynamast_baselines::single_master::single_master(config, catalog, Arc::new(Nop));
    let mut session = ClientSession::new(ClientId::new(1), 3);
    for i in 0..20u64 {
        system.update(&mut session, &write(&[i * 100])).unwrap();
    }
    let stats = system.stats();
    assert_eq!(stats.remaster_ops, 0);
    assert_eq!(stats.updates_routed_per_site[0], 20);
    assert_eq!(stats.updates_routed_per_site[1], 0);
}
