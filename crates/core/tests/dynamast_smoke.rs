//! End-to-end smoke tests of the assembled DynaMast system: routing,
//! remastering, refresh propagation, session guarantees.

use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes};
use dynamast_common::codec;
use dynamast_common::ids::{ClientId, Key, SiteId, TableId};
use dynamast_common::{Result, Row, SystemConfig, Value};
use dynamast_core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast_site::proc::{ProcCall, ProcExecutor, TxnCtx};
use dynamast_site::system::{ClientSession, ReplicatedSystem};
use dynamast_storage::Catalog;

const TABLE: TableId = TableId::new(0);
const PROC_ADD: u32 = 1;
const PROC_SUM: u32 = 2;

/// Test executor: PROC_ADD adds a delta to every key in the write set;
/// PROC_SUM sums the values of the read keys.
struct TestExec;

impl ProcExecutor for TestExec {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let mut slice = call.args.clone();
        match call.proc_id {
            PROC_ADD => {
                let delta = codec::get_u64(&mut slice)?;
                let n = codec::get_u32(&mut slice)? as usize;
                for _ in 0..n {
                    let record = codec::get_u64(&mut slice)?;
                    let key = Key::new(TABLE, record);
                    let current = match ctx.read(key)? {
                        Some(row) => row.cell(0).as_u64()?,
                        None => 0,
                    };
                    ctx.write(key, Row::new(vec![Value::U64(current + delta)]))?;
                }
                Ok(Bytes::new())
            }
            PROC_SUM => {
                let n = codec::get_u32(&mut slice)? as usize;
                let mut sum = 0u64;
                for _ in 0..n {
                    let record = codec::get_u64(&mut slice)?;
                    if let Some(row) = ctx.read(Key::new(TABLE, record))? {
                        sum += row.cell(0).as_u64()?;
                    }
                }
                let mut out = Vec::new();
                out.put_u64(sum);
                Ok(Bytes::from(out))
            }
            _ => Err(dynamast_common::DynaError::Internal("unknown proc")),
        }
    }
}

fn add_proc(records: &[u64], delta: u64) -> ProcCall {
    let mut args = Vec::new();
    args.put_u64(delta);
    args.put_u32(records.len() as u32);
    for r in records {
        args.put_u64(*r);
    }
    ProcCall {
        proc_id: PROC_ADD,
        args: Bytes::from(args),
        write_set: records.iter().map(|r| Key::new(TABLE, *r)).collect(),
        read_keys: vec![],
        read_ranges: vec![],
    }
}

fn sum_proc(records: &[u64]) -> ProcCall {
    let mut args = Vec::new();
    args.put_u32(records.len() as u32);
    for r in records {
        args.put_u64(*r);
    }
    ProcCall {
        proc_id: PROC_SUM,
        args: Bytes::from(args),
        write_set: vec![],
        read_keys: records.iter().map(|r| Key::new(TABLE, *r)).collect(),
        read_ranges: vec![],
    }
}

fn build_system(num_sites: usize) -> Arc<DynaMastSystem> {
    let mut catalog = Catalog::new();
    catalog.add_table("kv", 1, 100);
    let config = SystemConfig::new(num_sites).with_instant_network();
    DynaMastSystem::build(
        DynaMastConfig::adaptive(config, catalog),
        Arc::new(TestExec),
    )
}

fn decode_sum(result: &Bytes) -> u64 {
    let mut slice = result.clone();
    slice.get_u64()
}

#[test]
fn update_then_read_same_session_sees_writes() {
    let system = build_system(3);
    let mut session = ClientSession::new(ClientId::new(1), 3);
    system
        .update(&mut session, &add_proc(&[1, 2, 3], 10))
        .unwrap();
    // SSSI: the same session must observe its own writes at any replica.
    for _ in 0..10 {
        let outcome = system.read(&mut session, &sum_proc(&[1, 2, 3])).unwrap();
        assert_eq!(decode_sum(&outcome.result), 30);
    }
}

#[test]
fn cross_partition_write_sets_trigger_remastering() {
    let system = build_system(2);
    let mut a = ClientSession::new(ClientId::new(1), 2);
    let mut b = ClientSession::new(ClientId::new(2), 2);
    // Two distant partitions (0 and 5000) first touched separately, then
    // updated together — the second step forces co-location.
    system.update(&mut a, &add_proc(&[5], 1)).unwrap();
    system.update(&mut b, &add_proc(&[5000], 1)).unwrap();
    system.update(&mut a, &add_proc(&[5, 5000], 1)).unwrap();
    let stats = system.stats();
    assert_eq!(stats.committed_updates, 3);
    // The joint write set either found both partitions co-located already or
    // remastered; afterwards both partitions share one master.
    let placements = system.selector().map().placements();
    let masters: Vec<_> = placements.iter().filter_map(|(_, m)| *m).collect();
    assert_eq!(masters.len(), 2);
    assert_eq!(masters[0], masters[1]);
    // Key 5: +1 twice; key 5000: +1 twice.
    let outcome = system.read(&mut a, &sum_proc(&[5, 5000])).unwrap();
    assert_eq!(decode_sum(&outcome.result), 4);
}

#[test]
fn counters_survive_many_concurrent_clients() {
    let system = build_system(4);
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let system = Arc::clone(&system);
            std::thread::spawn(move || {
                let mut session = ClientSession::new(ClientId::new(t), 4);
                // All clients increment the same keys: write-write conflicts
                // must serialize, never abort, never lose updates.
                for _ in 0..25 {
                    system
                        .update(&mut session, &add_proc(&[7, 205], 1))
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut session = ClientSession::new(ClientId::new(99), 4);
    // A fresh session has no freshness floor; route a write through the
    // same keys first so the subsequent read observes all prior commits.
    system
        .update(&mut session, &add_proc(&[7, 205], 0))
        .unwrap();
    let outcome = system.read(&mut session, &sum_proc(&[7, 205])).unwrap();
    assert_eq!(decode_sum(&outcome.result), 400);
    assert_eq!(system.stats().committed_updates, 201);
}

#[test]
fn replicas_converge_after_updates() {
    let system = build_system(3);
    let mut session = ClientSession::new(ClientId::new(1), 3);
    for i in 0..30u64 {
        system
            .update(&mut session, &add_proc(&[i * 100], 5))
            .unwrap();
    }
    // Wait for propagation: every site must reach the session's cvv.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    for site in system.sites() {
        loop {
            if site.clock().current().dominates(&session.cvv) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "propagation stalled");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // Every replica stores every record.
        assert_eq!(site.store().record_count(), 30);
    }
}

#[test]
fn read_only_transactions_spread_across_sites() {
    let system = build_system(4);
    let mut session = ClientSession::new(ClientId::new(1), 4);
    system.update(&mut session, &add_proc(&[1], 1)).unwrap();
    // Allow the vv probe to refresh the freshness cache, then issue many
    // reads; with 4 fresh replicas a random router must hit more than one.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mut distinct = std::collections::HashSet::new();
    for _ in 0..40 {
        let site = system.selector().route_read(&session.cvv);
        distinct.insert(site);
    }
    assert!(distinct.len() > 1, "reads routed to only {distinct:?}");
    let _ = SiteId::new(0);
}
