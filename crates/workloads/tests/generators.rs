//! Cross-workload generator properties: determinism, declared-set
//! discipline, and distribution sanity.

use dynamast_common::ids::ClientId;
use dynamast_workloads::{
    SmallBankConfig, SmallBankWorkload, TpccConfig, TpccWorkload, Workload, YcsbConfig,
    YcsbWorkload,
};

fn ycsb() -> YcsbWorkload {
    YcsbWorkload::new(YcsbConfig {
        num_keys: 20_000,
        ..YcsbConfig::default()
    })
}

fn smallbank() -> SmallBankWorkload {
    SmallBankWorkload::new(SmallBankConfig {
        num_customers: 2_000,
        ..SmallBankConfig::default()
    })
}

fn tpcc() -> TpccWorkload {
    TpccWorkload::new(TpccConfig {
        warehouses: 4,
        customers_per_district: 30,
        num_items: 200,
        ..TpccConfig::default()
    })
}

/// Same seed → byte-identical transaction streams (required for the
/// deterministic cross-system comparison tests).
#[test]
fn generators_are_deterministic_per_seed() {
    // TPC-C draws order ids from shared per-workload counters, so two
    // generators from the SAME workload instance diverge; determinism holds
    // across separate workload instances with equal seeds.
    let t1 = tpcc();
    let t2 = tpcc();
    let mut a = t1.client(ClientId::new(3), 99);
    let mut b = t2.client(ClientId::new(3), 99);
    for _ in 0..50 {
        assert_eq!(a.next_txn().call, b.next_txn().call);
    }
    for workload in [&ycsb() as &dyn Workload, &smallbank() as &dyn Workload] {
        let mut a = workload.client(ClientId::new(3), 99);
        let mut b = workload.client(ClientId::new(3), 99);
        for _ in 0..100 {
            assert_eq!(a.next_txn().call, b.next_txn().call);
        }
    }
}

/// Different clients or seeds diverge (no accidental correlation).
#[test]
fn generators_differ_across_clients() {
    let w = ycsb();
    let mut a = w.client(ClientId::new(1), 7);
    let mut b = w.client(ClientId::new(2), 7);
    let mut identical = 0;
    for _ in 0..50 {
        if a.next_txn().call == b.next_txn().call {
            identical += 1;
        }
    }
    assert!(identical < 10, "{identical} of 50 txns identical");
}

/// Every generated transaction's declared sets are non-degenerate and match
/// its kind.
#[test]
fn declared_sets_match_kind() {
    for workload in [
        &ycsb() as &dyn Workload,
        &smallbank() as &dyn Workload,
        &tpcc() as &dyn Workload,
    ] {
        let mut generator = workload.client(ClientId::new(0), 5);
        for _ in 0..300 {
            let txn = generator.next_txn();
            match txn.kind {
                dynamast_workloads::TxnKind::Update => {
                    assert!(!txn.call.write_set.is_empty(), "{} empty writes", txn.label);
                }
                dynamast_workloads::TxnKind::ReadOnly => {
                    assert!(
                        txn.call.write_set.is_empty(),
                        "{} writes in read",
                        txn.label
                    );
                    assert!(
                        !txn.call.read_keys.is_empty() || !txn.call.read_ranges.is_empty(),
                        "{} reads nothing",
                        txn.label
                    );
                }
            }
        }
    }
}

/// All generated keys fall inside the populated key space.
#[test]
fn generated_keys_are_populated() {
    use std::collections::HashSet;
    for workload in [&ycsb() as &dyn Workload, &smallbank() as &dyn Workload] {
        let mut populated = HashSet::new();
        workload
            .populate(&mut |key, _| {
                populated.insert(key);
                Ok(())
            })
            .unwrap();
        let mut generator = workload.client(ClientId::new(1), 11);
        for _ in 0..200 {
            let txn = generator.next_txn();
            for key in txn.call.write_set.iter().chain(&txn.call.read_keys) {
                assert!(populated.contains(key), "unpopulated key {key:?}");
            }
        }
    }
}

/// The static owner function is total over every partition a generator can
/// touch, and stable.
#[test]
fn static_owner_is_total_and_stable() {
    for workload in [
        &ycsb() as &dyn Workload,
        &smallbank() as &dyn Workload,
        &tpcc() as &dyn Workload,
    ] {
        let catalog = workload.catalog();
        let owner_a = workload.static_owner(4);
        let owner_b = workload.static_owner(4);
        let mut generator = workload.client(ClientId::new(2), 13);
        for _ in 0..200 {
            let txn = generator.next_txn();
            for key in txn.call.write_set.iter().chain(&txn.call.read_keys) {
                let p = catalog.partition_of(*key).unwrap();
                let site = owner_a(p);
                assert!(site.as_usize() < 4);
                assert_eq!(site, owner_b(p), "owner fn not stable for {p:?}");
            }
        }
    }
}

/// TPC-C's generated write sets respect warehouse locality except for the
/// configured remote fractions.
#[test]
fn tpcc_remote_fraction_bounds_cross_warehouse_writes() {
    let w = TpccWorkload::new(TpccConfig {
        warehouses: 4,
        customers_per_district: 30,
        num_items: 200,
        neworder_remote_fraction: 0.0,
        payment_remote_fraction: 0.0,
        ..TpccConfig::default()
    });
    let catalog = w.catalog();
    let owner = w.static_owner(4);
    let mut generator = w.client(ClientId::new(1), 17);
    for _ in 0..300 {
        let txn = generator.next_txn();
        if txn.kind != dynamast_workloads::TxnKind::Update {
            continue;
        }
        // With zero remote fractions, every update's write set maps to one
        // site under by-warehouse partitioning.
        let sites: std::collections::HashSet<_> = txn
            .call
            .write_set
            .iter()
            .map(|k| owner(catalog.partition_of(*k).unwrap()))
            .collect();
        assert_eq!(sites.len(), 1, "{}: cross-warehouse write set", txn.label);
    }
}
