//! YCSB with the paper's workload-access-pattern extensions (Appendix C).
//!
//! The key space is divided into 100-key partitions ordered by partition id.
//! Partitions are *range-correlated*: a transaction's partitions cluster
//! around a base partition in *correlation order* — by default the sorted
//! partition-id order, or a shuffled order for the Fig. 5b adaptivity
//! experiment ("we randomize the correlations by shuffling the sorted
//! partition IDs to produce a new partition ID order").
//!
//! * **Scans** start at a base partition drawn from the access distribution
//!   and read all keys of the next `k ∈ [2, 10]` partitions (200–1000 keys).
//! * **RMWs** update three keys: one from the base partition and two from
//!   neighbours chosen by re-centred Binomial(5, 0.5) offsets.
//! * **Client affinity**: a client works against one correlated partition
//!   set for `affinity_txns` transactions (≈1 s of activity in the paper,
//!   25 for the adaptivity experiment), after which it is replaced — here,
//!   the generator redraws its locality.

use std::sync::Arc;

use bytes::{BufMut, Bytes};
use dynamast_common::dist::{bernoulli_neighbor_offset, clamp_offset, Zipfian};
use dynamast_common::ids::{partition_id, unpack_partition_id, ClientId, Key, SiteId, TableId};
use dynamast_common::{DynaError, Result, Row, Value};
use dynamast_site::data_site::StaticOwnerFn;
use dynamast_site::proc::{ProcCall, ProcExecutor, ScanRange, TxnCtx};
use dynamast_storage::Catalog;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::spec::{debug_assert_declared, ClientGenerator, GeneratedTxn, TxnKind, Workload};

/// The single YCSB table id.
pub const USERTABLE: TableId = TableId::new(0);
/// Read-modify-write procedure id.
pub const PROC_RMW: u32 = 1;
/// Multi-partition scan procedure id.
pub const PROC_SCAN: u32 = 2;

/// YCSB configuration.
#[derive(Clone, Debug)]
pub struct YcsbConfig {
    /// Total keys (the paper's 5 GB database, scaled down).
    pub num_keys: u64,
    /// Keys per partition (100 in the paper).
    pub partition_size: u64,
    /// Fraction of transactions that are RMWs (the rest are scans).
    pub rmw_fraction: f64,
    /// `Some(theta)` for Zipfian base-partition selection (the paper uses
    /// 0.75); `None` for uniform.
    pub zipf: Option<f64>,
    /// Payload bytes per record.
    pub payload_bytes: usize,
    /// Transactions per client affinity period.
    pub affinity_txns: u32,
    /// `Some(seed)`: shuffle the partition correlation order (Fig. 5b).
    pub shuffle_correlations: Option<u64>,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            num_keys: 100_000,
            partition_size: 100,
            rmw_fraction: 0.5,
            zipf: None,
            payload_bytes: 16,
            affinity_txns: 1000,
            shuffle_correlations: None,
        }
    }
}

impl YcsbConfig {
    /// Number of partitions.
    pub fn num_partitions(&self) -> u64 {
        self.num_keys / self.partition_size
    }
}

/// The YCSB workload.
pub struct YcsbWorkload {
    config: YcsbConfig,
    /// `perm[position] = partition index` in correlation order.
    perm: Arc<Vec<u64>>,
    /// `pos[partition index] = position` (inverse of `perm`).
    pos: Arc<Vec<u64>>,
}

impl YcsbWorkload {
    /// Creates the workload.
    pub fn new(config: YcsbConfig) -> Self {
        let n = config.num_partitions();
        assert!(n >= 16, "need at least 16 partitions, got {n}");
        let mut perm: Vec<u64> = (0..n).collect();
        if let Some(seed) = config.shuffle_correlations {
            perm.shuffle(&mut SmallRng::seed_from_u64(seed));
        }
        let mut pos = vec![0u64; n as usize];
        for (position, &partition) in perm.iter().enumerate() {
            pos[partition as usize] = position as u64;
        }
        YcsbWorkload {
            config,
            perm: Arc::new(perm),
            pos: Arc::new(pos),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }
}

impl Workload for YcsbWorkload {
    fn catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        let id = catalog.add_table("usertable", 2, self.config.partition_size);
        assert_eq!(id, USERTABLE);
        catalog
    }

    fn executor(&self) -> Arc<dyn ProcExecutor> {
        Arc::new(YcsbExec {
            payload_bytes: self.config.payload_bytes,
        })
    }

    fn populate(&self, load: &mut dyn FnMut(Key, Row) -> Result<()>) -> Result<()> {
        let payload = vec![0xABu8; self.config.payload_bytes];
        for record in 0..self.config.num_keys {
            load(
                Key::new(USERTABLE, record),
                Row::new(vec![Value::U64(0), Value::Bytes(payload.clone())]),
            )?;
        }
        Ok(())
    }

    fn static_owner(&self, num_sites: usize) -> StaticOwnerFn {
        // Range partitioning: Schism's choice for this workload (§VI-B1).
        let num_partitions = self.config.num_partitions();
        Arc::new(move |pid| {
            let (_, index) = unpack_partition_id(pid);
            let site = (index * num_sites as u64 / num_partitions.max(1)) as usize;
            SiteId::new(site.min(num_sites - 1))
        })
    }

    fn client(&self, client: ClientId, seed: u64) -> Box<dyn ClientGenerator> {
        Box::new(YcsbGen {
            config: self.config.clone(),
            perm: Arc::clone(&self.perm),
            pos: Arc::clone(&self.pos),
            zipf: self
                .config
                .zipf
                .map(|theta| Zipfian::new(self.config.num_partitions(), theta)),
            rng: SmallRng::seed_from_u64(seed ^ client.raw().wrapping_mul(0x9E37_79B9)),
            affinity_left: 0,
            center: 0,
        })
    }
}

/// The YCSB stored procedures.
struct YcsbExec {
    payload_bytes: usize,
}

impl ProcExecutor for YcsbExec {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        match call.proc_id {
            PROC_RMW => {
                // Read each write-set key, bump its counter, rewrite payload.
                let payload = vec![0xCDu8; self.payload_bytes];
                for key in &call.write_set {
                    let counter = match ctx.read(*key)? {
                        Some(row) => row.cell(0).as_u64()? + 1,
                        None => 1,
                    };
                    ctx.write(
                        *key,
                        Row::new(vec![Value::U64(counter), Value::Bytes(payload.clone())]),
                    )?;
                }
                Ok(Bytes::new())
            }
            PROC_SCAN => {
                // Sum counters over the declared ranges.
                let mut sum = 0u64;
                let mut rows = 0u64;
                for range in &call.read_ranges {
                    for (_, row) in ctx.scan(*range)? {
                        sum = sum.wrapping_add(row.cell(0).as_u64()?);
                        rows += 1;
                    }
                }
                let mut out = Vec::with_capacity(16);
                out.put_u64(sum);
                out.put_u64(rows);
                Ok(Bytes::from(out))
            }
            _ => Err(DynaError::Internal("unknown ycsb procedure")),
        }
    }
}

struct YcsbGen {
    config: YcsbConfig,
    perm: Arc<Vec<u64>>,
    pos: Arc<Vec<u64>>,
    zipf: Option<Zipfian>,
    rng: SmallRng,
    affinity_left: u32,
    /// Current locality: a position in correlation order.
    center: u64,
}

impl YcsbGen {
    fn num_partitions(&self) -> u64 {
        self.config.num_partitions()
    }

    /// Draws a base partition by the access distribution, returning its
    /// position in correlation order.
    fn draw_center(&mut self) -> u64 {
        let partition = match &self.zipf {
            Some(z) => z.sample(&mut self.rng),
            None => self.rng.gen_range(0..self.num_partitions()),
        };
        self.pos[partition as usize]
    }

    fn key_in_partition(&mut self, partition: u64) -> u64 {
        partition * self.config.partition_size + self.rng.gen_range(0..self.config.partition_size)
    }

    fn rmw(&mut self) -> GeneratedTxn {
        let n = self.num_partitions();
        // Base partition plus two Bernoulli-offset neighbours in
        // correlation order (Appendix C's worked example).
        let mut records = Vec::with_capacity(3);
        let base_partition = self.perm[self.center as usize];
        records.push(self.key_in_partition(base_partition));
        for _ in 0..2 {
            let offset = bernoulli_neighbor_offset(&mut self.rng);
            let position = clamp_offset(self.center, offset, n);
            let partition = self.perm[position as usize];
            let mut key = self.key_in_partition(partition);
            // Avoid duplicate keys within the write set (three distinct
            // records, as in the paper's example (3472, 3601, 3890)).
            for _ in 0..4 {
                if !records.contains(&key) {
                    break;
                }
                key = self.key_in_partition(partition);
            }
            records.push(key);
        }
        records.sort_unstable();
        records.dedup();
        let call = ProcCall {
            proc_id: PROC_RMW,
            args: Bytes::new(),
            write_set: records.iter().map(|r| Key::new(USERTABLE, *r)).collect(),
            read_keys: vec![],
            read_ranges: vec![],
        };
        debug_assert_declared(&call, TxnKind::Update);
        GeneratedTxn {
            call,
            kind: TxnKind::Update,
            label: "rmw",
        }
    }

    fn scan(&mut self) -> GeneratedTxn {
        let n = self.num_partitions();
        let k = self.rng.gen_range(2..=10u64);
        let start = self.center.min(n - 1);
        let end = (start + k).min(n);
        // Positions are contiguous; the partitions at those positions may
        // not be (shuffled correlations), so emit one range per partition
        // and merge key-adjacent ones.
        let mut ranges: Vec<ScanRange> = Vec::with_capacity(k as usize);
        for position in start..end {
            let partition = self.perm[position as usize];
            let first = partition * self.config.partition_size;
            let last = first + self.config.partition_size;
            match ranges.last_mut() {
                Some(prev) if prev.end == first => prev.end = last,
                _ => ranges.push(ScanRange {
                    table: USERTABLE,
                    start: first,
                    end: last,
                }),
            }
        }
        let call = ProcCall {
            proc_id: PROC_SCAN,
            args: Bytes::new(),
            write_set: vec![],
            read_keys: vec![],
            read_ranges: ranges,
        };
        debug_assert_declared(&call, TxnKind::ReadOnly);
        GeneratedTxn {
            call,
            kind: TxnKind::ReadOnly,
            label: "scan",
        }
    }
}

impl ClientGenerator for YcsbGen {
    fn next_txn(&mut self) -> GeneratedTxn {
        if self.affinity_left == 0 {
            self.center = self.draw_center();
            self.affinity_left = self.config.affinity_txns;
        }
        self.affinity_left -= 1;
        if self.rng.gen_bool(self.config.rmw_fraction.clamp(0.0, 1.0)) {
            self.rmw()
        } else {
            self.scan()
        }
    }
}

/// All partitions of the workload (for seeding placements).
pub fn all_partitions(config: &YcsbConfig) -> Vec<dynamast_common::ids::PartitionId> {
    (0..config.num_partitions())
        .map(|i| partition_id(USERTABLE, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(overrides: impl FnOnce(&mut YcsbConfig)) -> YcsbWorkload {
        let mut cfg = YcsbConfig {
            num_keys: 10_000,
            ..YcsbConfig::default()
        };
        overrides(&mut cfg);
        YcsbWorkload::new(cfg)
    }

    #[test]
    fn populate_produces_every_key() {
        let w = workload(|_| {});
        let mut count = 0u64;
        w.populate(&mut |key, row| {
            assert_eq!(key.table, USERTABLE);
            assert_eq!(row.arity(), 2);
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 10_000);
    }

    #[test]
    fn rmw_write_sets_have_up_to_three_nearby_keys() {
        let w = workload(|c| c.rmw_fraction = 1.0);
        let mut g = w.client(ClientId::new(1), 42);
        for _ in 0..200 {
            let txn = g.next_txn();
            assert_eq!(txn.kind, TxnKind::Update);
            assert!(!txn.call.write_set.is_empty() && txn.call.write_set.len() <= 3);
            // All keys within the neighbour window of some base partition.
            let parts: Vec<u64> = txn.call.write_set.iter().map(|k| k.record / 100).collect();
            let min = parts.iter().min().unwrap();
            let max = parts.iter().max().unwrap();
            assert!(max - min <= 5, "partitions too spread: {parts:?}");
        }
    }

    #[test]
    fn scans_cover_2_to_10_partitions() {
        let w = workload(|c| c.rmw_fraction = 0.0);
        let mut g = w.client(ClientId::new(2), 43);
        for _ in 0..100 {
            let txn = g.next_txn();
            assert_eq!(txn.kind, TxnKind::ReadOnly);
            let keys: u64 = txn.call.read_ranges.iter().map(|r| r.end - r.start).sum();
            assert!((200..=1000).contains(&keys), "scan of {keys} keys");
        }
    }

    #[test]
    fn affinity_keeps_clients_in_one_neighbourhood() {
        let w = workload(|c| {
            c.rmw_fraction = 1.0;
            c.affinity_txns = 50;
        });
        let mut g = w.client(ClientId::new(3), 44);
        let mut bases = std::collections::HashSet::new();
        for _ in 0..50 {
            let txn = g.next_txn();
            bases.insert(txn.call.write_set[0].record / 100 / 10);
        }
        // One affinity period → keys cluster in very few 10-partition bands.
        assert!(bases.len() <= 3, "too many distinct bands: {bases:?}");
    }

    #[test]
    fn shuffled_correlations_change_neighbourhoods() {
        let plain = workload(|c| c.rmw_fraction = 1.0);
        let shuffled = workload(|c| {
            c.rmw_fraction = 1.0;
            c.shuffle_correlations = Some(7);
        });
        // In the shuffled workload, correlated partitions are far apart in
        // key space for at least some transactions.
        let mut g = shuffled.client(ClientId::new(4), 45);
        let mut spread_seen = false;
        for _ in 0..200 {
            let txn = g.next_txn();
            let parts: Vec<u64> = txn.call.write_set.iter().map(|k| k.record / 100).collect();
            let min = parts.iter().min().unwrap();
            let max = parts.iter().max().unwrap();
            if max - min > 10 {
                spread_seen = true;
                break;
            }
        }
        assert!(spread_seen, "shuffle should break key-space locality");
        drop(plain);
    }

    #[test]
    fn executor_rmw_increments_and_scan_sums() {
        use dynamast_common::VersionVector;
        use dynamast_site::proc::{LocalCtx, ReadMode};
        use dynamast_storage::Store;

        let w = workload(|_| {});
        let store = Store::new(w.catalog(), 4);
        w.populate(&mut |key, row| {
            store.install(
                key,
                dynamast_storage::VersionStamp::new(SiteId::new(0), 0),
                row,
            )
        })
        .unwrap();
        let exec = w.executor();
        let begin = VersionVector::from_counts(vec![0]);
        let rmw = ProcCall {
            proc_id: PROC_RMW,
            args: Bytes::new(),
            write_set: vec![Key::new(USERTABLE, 5)],
            read_keys: vec![],
            read_ranges: vec![],
        };
        let mut ctx = LocalCtx::new(&store, &begin, ReadMode::Snapshot, &rmw.write_set);
        exec.execute(&mut ctx, &rmw).unwrap();
        let writes = ctx.into_writes();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].1.cell(0).as_u64().unwrap(), 1);

        let scan = ProcCall {
            proc_id: PROC_SCAN,
            args: Bytes::new(),
            write_set: vec![],
            read_keys: vec![],
            read_ranges: vec![ScanRange {
                table: USERTABLE,
                start: 0,
                end: 200,
            }],
        };
        let mut ctx = LocalCtx::new(&store, &begin, ReadMode::Snapshot, &[]);
        let out = exec.execute(&mut ctx, &scan).unwrap();
        let mut slice = &out[..];
        use bytes::Buf;
        let sum = slice.get_u64();
        let rows = slice.get_u64();
        assert_eq!(sum, 0);
        assert_eq!(rows, 200);
    }

    #[test]
    fn static_owner_splits_ranges_evenly() {
        let w = workload(|_| {});
        let owner = w.static_owner(4);
        let mut counts = [0u32; 4];
        for p in all_partitions(w.config()) {
            counts[owner(p).as_usize()] += 1;
        }
        assert_eq!(counts.iter().sum::<u32>(), 100);
        for c in counts {
            assert_eq!(c, 25);
        }
    }
}
