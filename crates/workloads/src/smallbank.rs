//! SmallBank (paper Appendix F): short transactions that stress the
//! transaction protocol rather than transaction logic.
//!
//! "Transactions access at most two records, which are the minimum necessary
//! for different sites to master data accessed in the transaction." The
//! paper's mix: 45% single-row updates (e.g. DepositChecking), 40% two-row
//! update transfers (SendPayment), 15% read-only two-row Balance.

use std::sync::Arc;

use bytes::{BufMut, Bytes};
use dynamast_common::codec;
use dynamast_common::ids::{partition_id, unpack_partition_id, ClientId, Key, SiteId, TableId};
use dynamast_common::{DynaError, Result, Row, Value};
use dynamast_site::data_site::StaticOwnerFn;
use dynamast_site::proc::{ProcCall, ProcExecutor, TxnCtx};
use dynamast_storage::Catalog;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{debug_assert_declared, ClientGenerator, GeneratedTxn, TxnKind, Workload};

/// Checking-account table.
pub const CHECKING: TableId = TableId::new(0);
/// Savings-account table.
pub const SAVINGS: TableId = TableId::new(1);

/// Deposit into one account (single-row update: DepositChecking /
/// TransactSavings depending on the target table).
pub const PROC_DEPOSIT: u32 = 1;
/// Transfer between two checking accounts (two-row update: SendPayment).
pub const PROC_SEND_PAYMENT: u32 = 2;
/// Read one customer's combined balance (read-only, two rows: Balance).
pub const PROC_BALANCE: u32 = 3;
/// WriteCheck: read both of a customer's accounts, then debit checking
/// (with a 1-unit penalty when the check overdraws the combined balance).
pub const PROC_WRITE_CHECK: u32 = 4;
/// Amalgamate: move a customer's entire savings and checking into another
/// customer's checking account (three-row update).
pub const PROC_AMALGAMATE: u32 = 5;

/// SmallBank configuration.
#[derive(Clone, Debug)]
pub struct SmallBankConfig {
    /// Number of customers.
    pub num_customers: u64,
    /// Accounts per partition.
    pub partition_size: u64,
    /// Initial balance (cents).
    pub initial_balance: i64,
    /// Single-row update fraction (paper: 0.45).
    pub single_row_fraction: f64,
    /// Two-row transfer fraction (paper: 0.40). The remainder is Balance.
    pub transfer_fraction: f64,
    /// Fraction of account draws taken from the hot set (SmallBank's
    /// classic hotspot: most operations touch a small set of busy
    /// accounts, which is what lets an adaptive master placement co-locate
    /// the action instead of remastering on every uniform pair).
    pub hotspot_fraction: f64,
    /// Number of hot accounts.
    pub hotspot_size: u64,
    /// Use the extended SmallBank procedure set: the transfer share is
    /// split between SendPayment, WriteCheck, and Amalgamate instead of
    /// being pure SendPayment. The paper's mix summary collapses these into
    /// "two-row updates"; the extended set exercises mixed-table write sets
    /// (savings + checking) as well.
    pub extended_mix: bool,
}

impl Default for SmallBankConfig {
    fn default() -> Self {
        SmallBankConfig {
            num_customers: 20_000,
            partition_size: 100,
            initial_balance: 10_000,
            single_row_fraction: 0.45,
            transfer_fraction: 0.40,
            hotspot_fraction: 0.9,
            hotspot_size: 1_000,
            extended_mix: false,
        }
    }
}

/// The SmallBank workload.
pub struct SmallBankWorkload {
    config: SmallBankConfig,
}

impl SmallBankWorkload {
    /// Creates the workload.
    pub fn new(config: SmallBankConfig) -> Self {
        assert!(config.num_customers >= config.partition_size * 4);
        SmallBankWorkload { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SmallBankConfig {
        &self.config
    }
}

impl Workload for SmallBankWorkload {
    fn catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        assert_eq!(
            catalog.add_table("checking", 1, self.config.partition_size),
            CHECKING
        );
        assert_eq!(
            catalog.add_table("savings", 1, self.config.partition_size),
            SAVINGS
        );
        catalog
    }

    fn executor(&self) -> Arc<dyn ProcExecutor> {
        Arc::new(SmallBankExec)
    }

    fn populate(&self, load: &mut dyn FnMut(Key, Row) -> Result<()>) -> Result<()> {
        for customer in 0..self.config.num_customers {
            let row = Row::new(vec![Value::I64(self.config.initial_balance)]);
            load(Key::new(CHECKING, customer), row.clone())?;
            load(Key::new(SAVINGS, customer), row)?;
        }
        Ok(())
    }

    fn static_owner(&self, num_sites: usize) -> StaticOwnerFn {
        // Range partitioning by customer id; checking and savings of the
        // same customer co-locate because both tables share partition sizes.
        let num_partitions = self.config.num_customers / self.config.partition_size;
        Arc::new(move |pid| {
            let (_, index) = unpack_partition_id(pid);
            let site = (index * num_sites as u64 / num_partitions.max(1)) as usize;
            SiteId::new(site.min(num_sites - 1))
        })
    }

    fn client(&self, client: ClientId, seed: u64) -> Box<dyn ClientGenerator> {
        Box::new(SmallBankGen {
            config: self.config.clone(),
            rng: SmallRng::seed_from_u64(seed ^ client.raw().wrapping_mul(0xB5C0_FBCF)),
        })
    }
}

struct SmallBankExec;

impl ProcExecutor for SmallBankExec {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let mut args = call.args.clone();
        match call.proc_id {
            PROC_DEPOSIT => {
                let amount = codec::get_i64(&mut args)?;
                let key = *call
                    .write_set
                    .first()
                    .ok_or(DynaError::Internal("deposit without account"))?;
                let balance = read_balance(ctx, key)?;
                ctx.write(key, Row::new(vec![Value::I64(balance + amount)]))?;
                Ok(Bytes::new())
            }
            PROC_SEND_PAYMENT => {
                let amount = codec::get_i64(&mut args)?;
                let [from, to] = call.write_set[..] else {
                    return Err(DynaError::Internal("send payment needs two accounts"));
                };
                let from_balance = read_balance(ctx, from)?;
                let to_balance = read_balance(ctx, to)?;
                ctx.write(from, Row::new(vec![Value::I64(from_balance - amount)]))?;
                ctx.write(to, Row::new(vec![Value::I64(to_balance + amount)]))?;
                Ok(Bytes::new())
            }
            PROC_BALANCE => {
                let mut total = 0i64;
                for key in &call.read_keys {
                    total += read_balance(ctx, *key)?;
                }
                let mut out = Vec::with_capacity(8);
                out.put_i64(total);
                Ok(Bytes::from(out))
            }
            PROC_WRITE_CHECK => {
                let amount = codec::get_i64(&mut args)?;
                // Write set: [checking]; read set additionally: [savings].
                let [checking] = call.write_set[..] else {
                    return Err(DynaError::Internal("write check needs one account"));
                };
                let savings_key = *call
                    .read_keys
                    .first()
                    .ok_or(DynaError::Internal("write check needs the savings row"))?;
                let checking_balance = read_balance(ctx, checking)?;
                let savings_balance = read_balance(ctx, savings_key)?;
                let penalty = if checking_balance + savings_balance < amount {
                    1
                } else {
                    0
                };
                ctx.write(
                    checking,
                    Row::new(vec![Value::I64(checking_balance - amount - penalty)]),
                )?;
                let mut out = Vec::with_capacity(8);
                out.put_i64(penalty);
                Ok(Bytes::from(out))
            }
            PROC_AMALGAMATE => {
                // Write set: [from_savings, from_checking, to_checking].
                let [from_savings, from_checking, to_checking] = call.write_set[..] else {
                    return Err(DynaError::Internal("amalgamate needs three accounts"));
                };
                let savings_balance = read_balance(ctx, from_savings)?;
                let checking_balance = read_balance(ctx, from_checking)?;
                let target_balance = read_balance(ctx, to_checking)?;
                ctx.write(from_savings, Row::new(vec![Value::I64(0)]))?;
                ctx.write(from_checking, Row::new(vec![Value::I64(0)]))?;
                ctx.write(
                    to_checking,
                    Row::new(vec![Value::I64(
                        target_balance + savings_balance + checking_balance,
                    )]),
                )?;
                Ok(Bytes::new())
            }
            _ => Err(DynaError::Internal("unknown smallbank procedure")),
        }
    }
}

fn read_balance(ctx: &mut dyn TxnCtx, key: Key) -> Result<i64> {
    match ctx.read(key)? {
        Some(row) => row.cell(0).as_i64(),
        None => Err(DynaError::NoSuchRecord(key)),
    }
}

struct SmallBankGen {
    config: SmallBankConfig,
    rng: SmallRng,
}

impl SmallBankGen {
    fn customer(&mut self) -> u64 {
        let hot = self.config.hotspot_size.min(self.config.num_customers);
        if hot > 0
            && self
                .rng
                .gen_bool(self.config.hotspot_fraction.clamp(0.0, 1.0))
        {
            self.rng.gen_range(0..hot)
        } else {
            self.rng.gen_range(0..self.config.num_customers)
        }
    }
}

impl SmallBankGen {
    fn write_check(&mut self) -> GeneratedTxn {
        let customer = self.customer();
        let mut args = Vec::with_capacity(8);
        args.put_i64(self.rng.gen_range(1..1500));
        let call = ProcCall {
            proc_id: PROC_WRITE_CHECK,
            args: Bytes::from(args),
            write_set: vec![Key::new(CHECKING, customer)],
            read_keys: vec![Key::new(SAVINGS, customer)],
            read_ranges: vec![],
        };
        debug_assert_declared(&call, TxnKind::Update);
        GeneratedTxn {
            call,
            kind: TxnKind::Update,
            label: "multi-row-update",
        }
    }

    fn amalgamate(&mut self) -> GeneratedTxn {
        let from = self.customer();
        let mut to = self.customer();
        while to == from {
            to = self.customer();
        }
        let call = ProcCall {
            proc_id: PROC_AMALGAMATE,
            args: Bytes::new(),
            write_set: vec![
                Key::new(SAVINGS, from),
                Key::new(CHECKING, from),
                Key::new(CHECKING, to),
            ],
            read_keys: vec![],
            read_ranges: vec![],
        };
        debug_assert_declared(&call, TxnKind::Update);
        GeneratedTxn {
            call,
            kind: TxnKind::Update,
            label: "multi-row-update",
        }
    }
}

impl ClientGenerator for SmallBankGen {
    fn next_txn(&mut self) -> GeneratedTxn {
        let roll: f64 = self.rng.gen();
        let single = self.config.single_row_fraction;
        let transfer = self.config.transfer_fraction;
        if roll < single {
            // DepositChecking / TransactSavings, evenly split.
            let table = if self.rng.gen_bool(0.5) {
                CHECKING
            } else {
                SAVINGS
            };
            let key = Key::new(table, self.customer());
            let mut args = Vec::with_capacity(8);
            args.put_i64(self.rng.gen_range(1..1000));
            let call = ProcCall {
                proc_id: PROC_DEPOSIT,
                args: Bytes::from(args),
                write_set: vec![key],
                read_keys: vec![],
                read_ranges: vec![],
            };
            debug_assert_declared(&call, TxnKind::Update);
            GeneratedTxn {
                call,
                kind: TxnKind::Update,
                label: "single-row-update",
            }
        } else if roll < single + transfer {
            if self.config.extended_mix {
                // Split the multi-row share: half SendPayment, a quarter
                // each WriteCheck and Amalgamate.
                let pick: f64 = self.rng.gen();
                if pick < 0.25 {
                    return self.write_check();
                } else if pick < 0.5 {
                    return self.amalgamate();
                }
            }
            let from = self.customer();
            let mut to = self.customer();
            while to == from {
                to = self.customer();
            }
            let mut args = Vec::with_capacity(8);
            args.put_i64(self.rng.gen_range(1..500));
            let call = ProcCall {
                proc_id: PROC_SEND_PAYMENT,
                args: Bytes::from(args),
                write_set: vec![Key::new(CHECKING, from), Key::new(CHECKING, to)],
                read_keys: vec![],
                read_ranges: vec![],
            };
            debug_assert_declared(&call, TxnKind::Update);
            GeneratedTxn {
                call,
                kind: TxnKind::Update,
                label: "multi-row-update",
            }
        } else {
            let customer = self.customer();
            let call = ProcCall {
                proc_id: PROC_BALANCE,
                args: Bytes::new(),
                write_set: vec![],
                read_keys: vec![Key::new(CHECKING, customer), Key::new(SAVINGS, customer)],
                read_ranges: vec![],
            };
            debug_assert_declared(&call, TxnKind::ReadOnly);
            GeneratedTxn {
                call,
                kind: TxnKind::ReadOnly,
                label: "balance",
            }
        }
    }
}

/// All partitions of the workload across both tables.
pub fn all_partitions(config: &SmallBankConfig) -> Vec<dynamast_common::ids::PartitionId> {
    let per_table = config.num_customers / config.partition_size;
    (0..per_table)
        .flat_map(|i| [partition_id(CHECKING, i), partition_id(SAVINGS, i)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Buf;
    use dynamast_common::VersionVector;
    use dynamast_site::proc::{LocalCtx, ReadMode};
    use dynamast_storage::{Store, VersionStamp};

    fn setup() -> (SmallBankWorkload, Store) {
        let w = SmallBankWorkload::new(SmallBankConfig {
            num_customers: 1000,
            ..SmallBankConfig::default()
        });
        let store = Store::new(w.catalog(), 4);
        w.populate(&mut |key, row| store.install(key, VersionStamp::new(SiteId::new(0), 0), row))
            .unwrap();
        (w, store)
    }

    #[test]
    fn mix_matches_configured_fractions() {
        let (w, _) = setup();
        let mut g = w.client(ClientId::new(1), 9);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..5000 {
            let txn = g.next_txn();
            *counts.entry(txn.label).or_insert(0u32) += 1;
        }
        let single = counts["single-row-update"] as f64 / 5000.0;
        let multi = counts["multi-row-update"] as f64 / 5000.0;
        let balance = counts["balance"] as f64 / 5000.0;
        assert!((single - 0.45).abs() < 0.03, "single {single}");
        assert!((multi - 0.40).abs() < 0.03, "multi {multi}");
        assert!((balance - 0.15).abs() < 0.03, "balance {balance}");
    }

    #[test]
    fn send_payment_conserves_money() {
        let (w, store) = setup();
        let exec = w.executor();
        let begin = VersionVector::from_counts(vec![0]);
        let mut args = Vec::new();
        args.put_i64(250);
        let call = ProcCall {
            proc_id: PROC_SEND_PAYMENT,
            args: Bytes::from(args),
            write_set: vec![Key::new(CHECKING, 1), Key::new(CHECKING, 2)],
            read_keys: vec![],
            read_ranges: vec![],
        };
        let mut ctx = LocalCtx::new(&store, &begin, ReadMode::Snapshot, &call.write_set);
        exec.execute(&mut ctx, &call).unwrap();
        let writes = ctx.into_writes();
        let total: i64 = writes
            .iter()
            .map(|(_, row)| row.cell(0).as_i64().unwrap())
            .sum();
        assert_eq!(total, 20_000, "sum of both balances unchanged");
        assert_eq!(writes[0].1.cell(0).as_i64().unwrap(), 9_750);
        assert_eq!(writes[1].1.cell(0).as_i64().unwrap(), 10_250);
    }

    #[test]
    fn balance_sums_checking_and_savings() {
        let (w, store) = setup();
        let exec = w.executor();
        let begin = VersionVector::from_counts(vec![0]);
        let call = ProcCall {
            proc_id: PROC_BALANCE,
            args: Bytes::new(),
            write_set: vec![],
            read_keys: vec![Key::new(CHECKING, 7), Key::new(SAVINGS, 7)],
            read_ranges: vec![],
        };
        let mut ctx = LocalCtx::new(&store, &begin, ReadMode::Snapshot, &[]);
        let out = exec.execute(&mut ctx, &call).unwrap();
        let mut slice = &out[..];
        assert_eq!(slice.get_i64(), 20_000);
    }

    #[test]
    fn deposit_to_missing_account_errors() {
        let (w, store) = setup();
        let exec = w.executor();
        let begin = VersionVector::from_counts(vec![0]);
        let mut args = Vec::new();
        args.put_i64(10);
        let call = ProcCall {
            proc_id: PROC_DEPOSIT,
            args: Bytes::from(args),
            write_set: vec![Key::new(CHECKING, 999_999)],
            read_keys: vec![],
            read_ranges: vec![],
        };
        let mut ctx = LocalCtx::new(&store, &begin, ReadMode::Snapshot, &call.write_set);
        assert!(exec.execute(&mut ctx, &call).is_err());
    }

    #[test]
    fn write_check_applies_overdraft_penalty() {
        let (w, store) = setup();
        let exec = w.executor();
        let begin = VersionVector::from_counts(vec![0]);
        // Balance is 20_000 combined; a 25_000 check overdraws → penalty 1.
        let mut args = Vec::new();
        args.put_i64(25_000);
        let call = ProcCall {
            proc_id: PROC_WRITE_CHECK,
            args: Bytes::from(args),
            write_set: vec![Key::new(CHECKING, 4)],
            read_keys: vec![Key::new(SAVINGS, 4)],
            read_ranges: vec![],
        };
        let mut ctx = LocalCtx::new(&store, &begin, ReadMode::Snapshot, &call.write_set);
        let out = exec.execute(&mut ctx, &call).unwrap();
        let mut slice = &out[..];
        assert_eq!(slice.get_i64(), 1, "penalty must apply");
        let writes = ctx.into_writes();
        assert_eq!(writes[0].1.cell(0).as_i64().unwrap(), 10_000 - 25_000 - 1);
        // A covered check has no penalty.
        let mut args = Vec::new();
        args.put_i64(5_000);
        let call = ProcCall {
            proc_id: PROC_WRITE_CHECK,
            args: Bytes::from(args),
            write_set: vec![Key::new(CHECKING, 5)],
            read_keys: vec![Key::new(SAVINGS, 5)],
            read_ranges: vec![],
        };
        let mut ctx = LocalCtx::new(&store, &begin, ReadMode::Snapshot, &call.write_set);
        let out = exec.execute(&mut ctx, &call).unwrap();
        let mut slice = &out[..];
        assert_eq!(slice.get_i64(), 0);
    }

    #[test]
    fn amalgamate_moves_everything_and_conserves_money() {
        let (w, store) = setup();
        let exec = w.executor();
        let begin = VersionVector::from_counts(vec![0]);
        let call = ProcCall {
            proc_id: PROC_AMALGAMATE,
            args: Bytes::new(),
            write_set: vec![
                Key::new(SAVINGS, 1),
                Key::new(CHECKING, 1),
                Key::new(CHECKING, 2),
            ],
            read_keys: vec![],
            read_ranges: vec![],
        };
        let mut ctx = LocalCtx::new(&store, &begin, ReadMode::Snapshot, &call.write_set);
        exec.execute(&mut ctx, &call).unwrap();
        let writes = ctx.into_writes();
        assert_eq!(writes.len(), 3);
        assert_eq!(writes[0].1.cell(0).as_i64().unwrap(), 0); // savings zeroed
        assert_eq!(writes[1].1.cell(0).as_i64().unwrap(), 0); // checking zeroed
        assert_eq!(writes[2].1.cell(0).as_i64().unwrap(), 30_000); // all moved
        let total: i64 = writes
            .iter()
            .map(|(_, row)| row.cell(0).as_i64().unwrap())
            .sum();
        assert_eq!(total, 30_000);
    }

    #[test]
    fn extended_mix_emits_all_procedures() {
        let w = SmallBankWorkload::new(SmallBankConfig {
            num_customers: 1000,
            extended_mix: true,
            ..SmallBankConfig::default()
        });
        let mut g = w.client(ClientId::new(1), 21);
        let mut procs = std::collections::HashSet::new();
        for _ in 0..2000 {
            procs.insert(g.next_txn().call.proc_id);
        }
        for proc in [
            PROC_DEPOSIT,
            PROC_SEND_PAYMENT,
            PROC_BALANCE,
            PROC_WRITE_CHECK,
            PROC_AMALGAMATE,
        ] {
            assert!(procs.contains(&proc), "procedure {proc} never generated");
        }
    }

    #[test]
    fn static_owner_colocates_checking_and_savings() {
        let (w, _) = setup();
        let owner = w.static_owner(4);
        for customer in [0u64, 99, 500, 999] {
            let p_check = partition_id(CHECKING, customer / 100);
            let p_save = partition_id(SAVINGS, customer / 100);
            assert_eq!(owner(p_check), owner(p_save));
        }
    }
}
