//! TPC-C with the paper's three transaction types (§VI-A2):
//! New-Order and Payment (update-intensive) and Stock-Level (read-only) —
//! "the bulk of both the workload and distributed transactions".
//!
//! Scaled for an in-process reproduction: warehouses, items, and customers
//! per district are configurable (the paper runs 10 warehouses and 100,000
//! items on 8 machines). Key encodings keep every table partitionable *by
//! warehouse* — the Schism-confirmed best static partitioning the baselines
//! receive — while DynaMast must learn the same placement through its
//! strategies:
//!
//! | table | key | partition |
//! |---|---|---|
//! | warehouse | `w` | one per warehouse |
//! | district | `w·DPW + d` | one per warehouse |
//! | customer | `(w·DPW + d)·CPD + c` | one per district |
//! | item (static) | `i` | single, replicated everywhere |
//! | stock | `w·ITEMS + i` | 100-item groups, never crossing warehouses |
//! | orders | `(w·DPW + d)·2²⁰ + o` | one per district |
//! | order_line | `order_key·2⁴ + l` | one per district |
//! | history | `(w·DPW + d)·2²⁰ + h` | one per district |
//!
//! Order ids come from shared per-district counters owned by the *workload*
//! (reconnaissance-style: the paper's system model requires write sets up
//! front, so the order id must be known before execution). Stock-Level's
//! read set is likewise predeclared from a shared registry of each
//! district's 20 most recent orders.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{BufMut, Bytes};
use dynamast_common::codec;
use dynamast_common::ids::{unpack_partition_id, ClientId, Key, SiteId, TableId};
use dynamast_common::{DynaError, Result, Row, Value};
use dynamast_site::data_site::StaticOwnerFn;
use dynamast_site::proc::{ProcCall, ProcExecutor, TxnCtx};
use dynamast_storage::Catalog;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{debug_assert_declared, ClientGenerator, GeneratedTxn, TxnKind, Workload};

/// Warehouse table.
pub const WAREHOUSE: TableId = TableId::new(0);
/// District table.
pub const DISTRICT: TableId = TableId::new(1);
/// Customer table.
pub const CUSTOMER: TableId = TableId::new(2);
/// Item table (static, read-only, replicated everywhere).
pub const ITEM: TableId = TableId::new(3);
/// Stock table.
pub const STOCK: TableId = TableId::new(4);
/// Orders table.
pub const ORDERS: TableId = TableId::new(5);
/// Order-line table.
pub const ORDER_LINE: TableId = TableId::new(6);
/// History table.
pub const HISTORY: TableId = TableId::new(7);

/// New-Order procedure id.
pub const PROC_NEW_ORDER: u32 = 1;
/// Payment procedure id.
pub const PROC_PAYMENT: u32 = 2;
/// Stock-Level procedure id.
pub const PROC_STOCK_LEVEL: u32 = 3;

const ORDER_SHIFT: u64 = 20;
const LINE_SHIFT: u64 = 4;
/// Maximum order lines per order (TPC-C: 5–15).
pub const MAX_LINES: u64 = 15;

/// TPC-C configuration (scaled-down defaults).
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Number of warehouses (paper: 10).
    pub warehouses: u64,
    /// Districts per warehouse (TPC-C: 10).
    pub districts_per_warehouse: u64,
    /// Customers per district (TPC-C: 3000; scaled).
    pub customers_per_district: u64,
    /// Item count (paper: 100,000; scaled).
    pub num_items: u64,
    /// Fraction of New-Order transactions that include remote-warehouse
    /// stock (the §VI-B3 sweep varies this 0 → 1/3).
    pub neworder_remote_fraction: f64,
    /// Fraction of Payment transactions paying for a remote customer
    /// (TPC-C and the paper: 15%).
    pub payment_remote_fraction: f64,
    /// Transaction mix: New-Order fraction (paper default 45%).
    pub neworder_fraction: f64,
    /// Transaction mix: Payment fraction (paper default 45%; the rest is
    /// Stock-Level).
    pub payment_fraction: f64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 8,
            districts_per_warehouse: 10,
            customers_per_district: 300,
            num_items: 1000,
            neworder_remote_fraction: 0.10,
            payment_remote_fraction: 0.15,
            neworder_fraction: 0.45,
            payment_fraction: 0.45,
        }
    }
}

impl TpccConfig {
    /// Global district index.
    pub fn district_index(&self, warehouse: u64, district: u64) -> u64 {
        warehouse * self.districts_per_warehouse + district
    }

    /// District record key.
    pub fn district_key(&self, warehouse: u64, district: u64) -> Key {
        Key::new(DISTRICT, self.district_index(warehouse, district))
    }

    /// Customer record key.
    pub fn customer_key(&self, warehouse: u64, district: u64, customer: u64) -> Key {
        Key::new(
            CUSTOMER,
            self.district_index(warehouse, district) * self.customers_per_district + customer,
        )
    }

    /// Stock record key.
    pub fn stock_key(&self, warehouse: u64, item: u64) -> Key {
        Key::new(STOCK, warehouse * self.num_items + item)
    }

    /// Order record key.
    pub fn order_key(&self, warehouse: u64, district: u64, order: u64) -> Key {
        Key::new(
            ORDERS,
            (self.district_index(warehouse, district) << ORDER_SHIFT) | order,
        )
    }

    /// Order-line record key.
    pub fn order_line_key(&self, warehouse: u64, district: u64, order: u64, line: u64) -> Key {
        Key::new(
            ORDER_LINE,
            (((self.district_index(warehouse, district) << ORDER_SHIFT) | order) << LINE_SHIFT)
                | line,
        )
    }

    /// History record key.
    pub fn history_key(&self, warehouse: u64, district: u64, seq: u64) -> Key {
        Key::new(
            HISTORY,
            (self.district_index(warehouse, district) << ORDER_SHIFT) | seq,
        )
    }

    fn num_districts(&self) -> u64 {
        self.warehouses * self.districts_per_warehouse
    }

    /// Stock partition-group size: 100 items, shrunk to divide the item
    /// count evenly so groups never straddle a warehouse boundary.
    pub fn stock_group(&self) -> u64 {
        let mut group = 100u64.min(self.num_items);
        while !self.num_items.is_multiple_of(group) {
            group -= 1;
        }
        group
    }
}

/// `(order id, (item, supply warehouse) per line)` entries of one district.
type DistrictOrders = Vec<(u64, Vec<(u64, u64)>)>;

/// Recent orders per district for Stock-Level read-set construction.
struct RecentOrders {
    per_district: Vec<Mutex<DistrictOrders>>,
}

impl RecentOrders {
    fn new(districts: usize) -> Self {
        RecentOrders {
            per_district: (0..districts).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn record(&self, district_index: u64, order: u64, items: Vec<(u64, u64)>) {
        let mut recent = self.per_district[district_index as usize].lock();
        recent.push((order, items));
        if recent.len() > 20 {
            recent.remove(0);
        }
    }

    fn snapshot(&self, district_index: u64) -> Vec<(u64, Vec<(u64, u64)>)> {
        self.per_district[district_index as usize].lock().clone()
    }
}

/// The TPC-C workload.
pub struct TpccWorkload {
    config: TpccConfig,
    /// Next order id per district (shared across clients).
    order_counters: Arc<Vec<AtomicU64>>,
    /// Next history sequence per district.
    history_counters: Arc<Vec<AtomicU64>>,
    recent: Arc<RecentOrders>,
}

impl TpccWorkload {
    /// Creates the workload.
    pub fn new(config: TpccConfig) -> Self {
        assert!(config.warehouses >= 1);
        assert!(config.num_items >= 100);
        assert!(
            config.customers_per_district >= 10,
            "need at least 10 customers per district"
        );
        let districts = config.num_districts() as usize;
        TpccWorkload {
            order_counters: Arc::new((0..districts).map(|_| AtomicU64::new(0)).collect()),
            history_counters: Arc::new((0..districts).map(|_| AtomicU64::new(0)).collect()),
            recent: Arc::new(RecentOrders::new(districts)),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }
}

impl Workload for TpccWorkload {
    fn catalog(&self) -> Catalog {
        let c = &self.config;
        let mut catalog = Catalog::new();
        assert_eq!(catalog.add_table("warehouse", 1, 1), WAREHOUSE);
        assert_eq!(
            catalog.add_table("district", 2, c.districts_per_warehouse),
            DISTRICT
        );
        // Customer partitions are per district and stock partitions are
        // 100-item groups: fine enough that a cross-warehouse transaction
        // remasters only the few groups it touches instead of a whole
        // warehouse's rows (the paper's selector "supports grouping of data
        // items into partitions"; whole-warehouse groups would false-share
        // catastrophically under remote transactions).
        assert_eq!(
            catalog.add_table("customer", 1, c.customers_per_district),
            CUSTOMER
        );
        assert_eq!(catalog.add_table("item", 1, c.num_items), ITEM);
        assert_eq!(catalog.add_table("stock", 1, c.stock_group()), STOCK);
        assert_eq!(catalog.add_table("orders", 3, 1 << ORDER_SHIFT), ORDERS);
        assert_eq!(
            catalog.add_table("order_line", 4, 1 << (ORDER_SHIFT + LINE_SHIFT)),
            ORDER_LINE
        );
        assert_eq!(catalog.add_table("history", 1, 1 << ORDER_SHIFT), HISTORY);
        catalog
    }

    fn executor(&self) -> Arc<dyn ProcExecutor> {
        Arc::new(TpccExec {
            config: self.config.clone(),
        })
    }

    fn populate(&self, load: &mut dyn FnMut(Key, Row) -> Result<()>) -> Result<()> {
        let c = &self.config;
        for w in 0..c.warehouses {
            load(Key::new(WAREHOUSE, w), Row::new(vec![Value::I64(0)]))?;
            for d in 0..c.districts_per_warehouse {
                // District: [ytd, committed order count].
                load(
                    c.district_key(w, d),
                    Row::new(vec![Value::I64(0), Value::U64(0)]),
                )?;
                for cust in 0..c.customers_per_district {
                    load(
                        c.customer_key(w, d, cust),
                        Row::new(vec![Value::I64(-1000)]), // C_BALANCE starts at -10.00
                    )?;
                }
            }
            for i in 0..c.num_items {
                load(c.stock_key(w, i), Row::new(vec![Value::I64(100)]))?;
            }
        }
        for i in 0..c.num_items {
            // I_PRICE in cents, deterministic.
            load(
                Key::new(ITEM, i),
                Row::new(vec![Value::I64(100 + (i as i64 * 37) % 9900)]),
            )?;
        }
        Ok(())
    }

    fn static_owner(&self, num_sites: usize) -> StaticOwnerFn {
        // By-warehouse partitioning (Schism's choice, §VI-B2).
        let config = self.config.clone();
        Arc::new(move |pid| {
            let (table, index) = unpack_partition_id(pid);
            let warehouse = match table {
                WAREHOUSE => index,
                DISTRICT => index, // partition size = DPW ⇒ index is w
                CUSTOMER | ORDERS | ORDER_LINE | HISTORY => index / config.districts_per_warehouse,
                STOCK => index / (config.num_items / config.stock_group()),
                _ => 0, // ITEM: static/replicated; owner is irrelevant
            };
            SiteId::new((warehouse % num_sites as u64) as usize)
        })
    }

    fn static_tables(&self) -> Vec<TableId> {
        vec![ITEM]
    }

    fn client(&self, client: ClientId, seed: u64) -> Box<dyn ClientGenerator> {
        let home = client.raw() % self.config.warehouses;
        Box::new(TpccGen {
            config: self.config.clone(),
            home_warehouse: home,
            order_counters: Arc::clone(&self.order_counters),
            history_counters: Arc::clone(&self.history_counters),
            recent: Arc::clone(&self.recent),
            rng: SmallRng::seed_from_u64(seed ^ client.raw().wrapping_mul(0x1234_5677)),
        })
    }
}

// ---------------------------------------------------------------------
// Stored procedures
// ---------------------------------------------------------------------

/// Argument layouts (explicit byte codec):
///
/// * New-Order: `w, d, c, o_id, n, n × (item, supply_w, qty)`
/// * Payment: `w, d, c_w, c_d, c, amount, h_seq`
/// * Stock-Level: `w, d, threshold`
struct TpccExec {
    config: TpccConfig,
}

impl ProcExecutor for TpccExec {
    fn execute(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        match call.proc_id {
            PROC_NEW_ORDER => self.new_order(ctx, call),
            PROC_PAYMENT => self.payment(ctx, call),
            PROC_STOCK_LEVEL => self.stock_level(ctx, call),
            _ => Err(DynaError::Internal("unknown tpcc procedure")),
        }
    }
}

impl TpccExec {
    fn new_order(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let c = &self.config;
        let mut a = call.args.clone();
        let w = codec::get_u64(&mut a)?;
        let d = codec::get_u64(&mut a)?;
        let cust = codec::get_u64(&mut a)?;
        let o_id = codec::get_u64(&mut a)?;
        let n = codec::get_u32(&mut a)? as u64;

        // Reads: warehouse (tax), customer (discount), per-line item price.
        let _warehouse = must_read(ctx, Key::new(WAREHOUSE, w))?;
        let _customer = must_read(ctx, c.customer_key(w, d, cust))?;

        let mut total = 0i64;
        for line in 0..n {
            let item = codec::get_u64(&mut a)?;
            let supply_w = codec::get_u64(&mut a)?;
            let qty = codec::get_u64(&mut a)? as i64;
            let price = must_read(ctx, Key::new(ITEM, item))?.cell(0).as_i64()?;
            // Stock decrement with TPC-C's reload rule.
            let stock_key = c.stock_key(supply_w, item);
            let mut quantity = must_read(ctx, stock_key)?.cell(0).as_i64()?;
            quantity -= qty;
            if quantity < 10 {
                quantity += 91;
            }
            ctx.write(stock_key, Row::new(vec![Value::I64(quantity)]))?;
            let amount = price * qty;
            total += amount;
            ctx.write(
                c.order_line_key(w, d, o_id, line),
                Row::new(vec![
                    Value::U64(item),
                    Value::U64(supply_w),
                    Value::U64(qty as u64),
                    Value::I64(amount),
                ]),
            )?;
        }
        // Insert the order and bump the district's committed-order count.
        ctx.write(
            c.order_key(w, d, o_id),
            Row::new(vec![Value::U64(cust), Value::U64(n), Value::I64(total)]),
        )?;
        let district_key = c.district_key(w, d);
        let district = must_read(ctx, district_key)?;
        let ytd = district.cell(0).as_i64()?;
        let committed = district.cell(1).as_u64()?;
        ctx.write(
            district_key,
            Row::new(vec![Value::I64(ytd), Value::U64(committed + 1)]),
        )?;
        let mut out = Vec::with_capacity(8);
        out.put_i64(total);
        Ok(Bytes::from(out))
    }

    fn payment(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let c = &self.config;
        let mut a = call.args.clone();
        let w = codec::get_u64(&mut a)?;
        let d = codec::get_u64(&mut a)?;
        let c_w = codec::get_u64(&mut a)?;
        let c_d = codec::get_u64(&mut a)?;
        let cust = codec::get_u64(&mut a)?;
        let amount = codec::get_i64(&mut a)?;
        let h_seq = codec::get_u64(&mut a)?;

        let wh_key = Key::new(WAREHOUSE, w);
        let wh_ytd = must_read(ctx, wh_key)?.cell(0).as_i64()?;
        ctx.write(wh_key, Row::new(vec![Value::I64(wh_ytd + amount)]))?;

        let district_key = c.district_key(w, d);
        let district = must_read(ctx, district_key)?;
        let d_ytd = district.cell(0).as_i64()?;
        let committed = district.cell(1).as_u64()?;
        ctx.write(
            district_key,
            Row::new(vec![Value::I64(d_ytd + amount), Value::U64(committed)]),
        )?;

        let cust_key = c.customer_key(c_w, c_d, cust);
        let balance = must_read(ctx, cust_key)?.cell(0).as_i64()?;
        ctx.write(cust_key, Row::new(vec![Value::I64(balance - amount)]))?;

        ctx.write(
            c.history_key(w, d, h_seq),
            Row::new(vec![Value::I64(amount)]),
        )?;
        Ok(Bytes::new())
    }

    fn stock_level(&self, ctx: &mut dyn TxnCtx, call: &ProcCall) -> Result<Bytes> {
        let mut a = call.args.clone();
        let _w = codec::get_u64(&mut a)?;
        let _d = codec::get_u64(&mut a)?;
        let threshold = codec::get_i64(&mut a)?;
        // Count distinct low-stock items among the declared read keys
        // (order lines give items; stock keys give quantities).
        let mut low = 0u64;
        for key in &call.read_keys {
            if key.table != STOCK {
                // Order-line rows (or the district row) may be unreplicated
                // at this snapshot yet; skip silently like a real scan of a
                // possibly-shorter order list.
                let _ = ctx.read(*key)?;
                continue;
            }
            if let Some(row) = ctx.read(*key)? {
                if row.cell(0).as_i64()? < threshold {
                    low += 1;
                }
            }
        }
        let mut out = Vec::with_capacity(8);
        out.put_u64(low);
        Ok(Bytes::from(out))
    }
}

fn must_read(ctx: &mut dyn TxnCtx, key: Key) -> Result<Row> {
    ctx.read(key)?.ok_or(DynaError::NoSuchRecord(key))
}

// ---------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------

struct TpccGen {
    config: TpccConfig,
    home_warehouse: u64,
    order_counters: Arc<Vec<AtomicU64>>,
    history_counters: Arc<Vec<AtomicU64>>,
    recent: Arc<RecentOrders>,
    rng: SmallRng,
}

impl TpccGen {
    fn remote_warehouse(&mut self) -> u64 {
        if self.config.warehouses == 1 {
            return self.home_warehouse;
        }
        loop {
            let w = self.rng.gen_range(0..self.config.warehouses);
            if w != self.home_warehouse {
                return w;
            }
        }
    }

    fn new_order(&mut self) -> GeneratedTxn {
        let c = self.config.clone();
        let w = self.home_warehouse;
        let d = self.rng.gen_range(0..c.districts_per_warehouse);
        let cust = self.rng.gen_range(0..c.customers_per_district);
        let district_index = c.district_index(w, d);
        let o_id = self.order_counters[district_index as usize].fetch_add(1, Ordering::Relaxed);
        let n = self.rng.gen_range(5..=MAX_LINES);
        let cross = self
            .rng
            .gen_bool(c.neworder_remote_fraction.clamp(0.0, 1.0));
        let remote_lines = if cross { self.rng.gen_range(1..=2) } else { 0 };

        let mut items: Vec<(u64, u64, u64)> = Vec::with_capacity(n as usize);
        let mut used = std::collections::HashSet::new();
        for line in 0..n {
            let mut item = self.rng.gen_range(0..c.num_items);
            while !used.insert(item) {
                item = self.rng.gen_range(0..c.num_items);
            }
            let supply_w = if line < remote_lines {
                self.remote_warehouse()
            } else {
                w
            };
            let qty = self.rng.gen_range(1..=10u64);
            items.push((item, supply_w, qty));
        }

        let mut args = Vec::with_capacity(64);
        args.put_u64(w);
        args.put_u64(d);
        args.put_u64(cust);
        args.put_u64(o_id);
        args.put_u32(items.len() as u32);
        let mut write_set = Vec::with_capacity(3 + 2 * items.len());
        let mut read_keys = vec![Key::new(WAREHOUSE, w), c.customer_key(w, d, cust)];
        for (line, (item, supply_w, qty)) in items.iter().enumerate() {
            args.put_u64(*item);
            args.put_u64(*supply_w);
            args.put_u64(*qty);
            write_set.push(c.stock_key(*supply_w, *item));
            write_set.push(c.order_line_key(w, d, o_id, line as u64));
            read_keys.push(Key::new(ITEM, *item));
        }
        write_set.push(c.order_key(w, d, o_id));
        write_set.push(c.district_key(w, d));

        self.recent.record(
            district_index,
            o_id,
            items.iter().map(|(i, s, _)| (*i, *s)).collect(),
        );

        let call = ProcCall {
            proc_id: PROC_NEW_ORDER,
            args: Bytes::from(args),
            write_set,
            read_keys,
            read_ranges: vec![],
        };
        debug_assert_declared(&call, TxnKind::Update);
        GeneratedTxn {
            call,
            kind: TxnKind::Update,
            label: "new-order",
        }
    }

    fn payment(&mut self) -> GeneratedTxn {
        let c = self.config.clone();
        let w = self.home_warehouse;
        let d = self.rng.gen_range(0..c.districts_per_warehouse);
        let remote = self.rng.gen_bool(c.payment_remote_fraction.clamp(0.0, 1.0));
        let (c_w, c_d) = if remote {
            (
                self.remote_warehouse(),
                self.rng.gen_range(0..c.districts_per_warehouse),
            )
        } else {
            (w, d)
        };
        let cust = self.rng.gen_range(0..c.customers_per_district);
        let amount = self.rng.gen_range(100..5000i64);
        let district_index = c.district_index(w, d);
        let h_seq = self.history_counters[district_index as usize].fetch_add(1, Ordering::Relaxed);

        let mut args = Vec::with_capacity(56);
        args.put_u64(w);
        args.put_u64(d);
        args.put_u64(c_w);
        args.put_u64(c_d);
        args.put_u64(cust);
        args.put_i64(amount);
        args.put_u64(h_seq);
        let call = ProcCall {
            proc_id: PROC_PAYMENT,
            args: Bytes::from(args),
            write_set: vec![
                Key::new(WAREHOUSE, w),
                c.district_key(w, d),
                c.customer_key(c_w, c_d, cust),
                c.history_key(w, d, h_seq),
            ],
            read_keys: vec![],
            read_ranges: vec![],
        };
        debug_assert_declared(&call, TxnKind::Update);
        GeneratedTxn {
            call,
            kind: TxnKind::Update,
            label: "payment",
        }
    }

    fn stock_level(&mut self) -> GeneratedTxn {
        let c = self.config.clone();
        let w = self.home_warehouse;
        let d = self.rng.gen_range(0..c.districts_per_warehouse);
        let threshold = self.rng.gen_range(10..=20i64);
        let district_index = c.district_index(w, d);

        let mut read_keys = vec![c.district_key(w, d)];
        for (o_id, items) in self.recent.snapshot(district_index) {
            for (line, (item, supply_w)) in items.iter().enumerate() {
                read_keys.push(c.order_line_key(w, d, o_id, line as u64));
                read_keys.push(c.stock_key(*supply_w, *item));
            }
        }
        read_keys.sort_unstable();
        read_keys.dedup();

        let mut args = Vec::with_capacity(24);
        args.put_u64(w);
        args.put_u64(d);
        args.put_i64(threshold);
        let call = ProcCall {
            proc_id: PROC_STOCK_LEVEL,
            args: Bytes::from(args),
            write_set: vec![],
            read_keys,
            read_ranges: vec![],
        };
        debug_assert_declared(&call, TxnKind::ReadOnly);
        GeneratedTxn {
            call,
            kind: TxnKind::ReadOnly,
            label: "stock-level",
        }
    }
}

impl ClientGenerator for TpccGen {
    fn next_txn(&mut self) -> GeneratedTxn {
        let roll: f64 = self.rng.gen();
        if roll < self.config.neworder_fraction {
            self.new_order()
        } else if roll < self.config.neworder_fraction + self.config.payment_fraction {
            self.payment()
        } else {
            self.stock_level()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_common::VersionVector;
    use dynamast_site::proc::{LocalCtx, ReadMode};
    use dynamast_storage::{Store, VersionStamp};

    fn config() -> TpccConfig {
        TpccConfig {
            warehouses: 4,
            customers_per_district: 30,
            num_items: 200,
            ..TpccConfig::default()
        }
    }

    fn setup() -> (TpccWorkload, Store) {
        let w = TpccWorkload::new(config());
        let store = Store::new(w.catalog(), 4);
        w.populate(&mut |key, row| store.install(key, VersionStamp::new(SiteId::new(0), 0), row))
            .unwrap();
        (w, store)
    }

    fn run_update(w: &TpccWorkload, store: &Store, call: &ProcCall) -> Vec<(Key, Row)> {
        let exec = w.executor();
        let begin = VersionVector::from_counts(vec![0]);
        let mut ctx = LocalCtx::new(store, &begin, ReadMode::Snapshot, &call.write_set);
        exec.execute(&mut ctx, call).unwrap();
        let writes = ctx.into_writes();
        for (key, row) in &writes {
            store
                .install(*key, VersionStamp::new(SiteId::new(0), 1), row.clone())
                .unwrap();
        }
        writes
    }

    #[test]
    fn new_order_writes_match_declared_set() {
        let (w, store) = setup();
        let mut g = w.client(ClientId::new(0), 5);
        // Find a new-order transaction.
        let txn = loop {
            let t = g.next_txn();
            if t.label == "new-order" {
                break t;
            }
        };
        let writes = run_update(&w, &store, &txn.call);
        let declared: std::collections::HashSet<Key> = txn.call.write_set.iter().copied().collect();
        for (key, _) in &writes {
            assert!(declared.contains(key), "undeclared write to {key:?}");
        }
        // Every stock/district/order/order-line write must happen.
        assert_eq!(writes.len(), txn.call.write_set.len());
    }

    #[test]
    fn new_order_ids_are_unique_per_district() {
        let (w, _) = setup();
        let mut g1 = w.client(ClientId::new(0), 1);
        let mut g2 = w.client(ClientId::new(4), 2); // same home warehouse (4 % 4 = 0)
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            for g in [&mut g1, &mut g2] {
                let txn = g.next_txn();
                if txn.label == "new-order" {
                    let order_key = txn
                        .call
                        .write_set
                        .iter()
                        .find(|k| k.table == ORDERS)
                        .unwrap();
                    assert!(seen.insert(*order_key), "duplicate order {order_key:?}");
                }
            }
        }
    }

    #[test]
    fn payment_moves_money_and_writes_history() {
        let (w, store) = setup();
        let mut g = w.client(ClientId::new(1), 6);
        let txn = loop {
            let t = g.next_txn();
            if t.label == "payment" {
                break t;
            }
        };
        let writes = run_update(&w, &store, &txn.call);
        assert_eq!(writes.len(), 4);
        let tables: Vec<TableId> = writes.iter().map(|(k, _)| k.table).collect();
        assert!(tables.contains(&WAREHOUSE));
        assert!(tables.contains(&DISTRICT));
        assert!(tables.contains(&CUSTOMER));
        assert!(tables.contains(&HISTORY));
    }

    #[test]
    fn stock_level_counts_low_stock() {
        let (w, store) = setup();
        // Generate some orders first so the recent-order registry fills.
        let mut g = w.client(ClientId::new(2), 7);
        let mut orders = 0;
        while orders < 5 {
            let txn = g.next_txn();
            if txn.label == "new-order" {
                run_update(&w, &store, &txn.call);
                orders += 1;
            }
        }
        let txn = loop {
            let t = g.next_txn();
            if t.label == "stock-level" {
                break t;
            }
        };
        let exec = w.executor();
        let begin = VersionVector::from_counts(vec![1]);
        let mut ctx = LocalCtx::new(&store, &begin, ReadMode::Snapshot, &[]);
        let out = exec.execute(&mut ctx, &txn.call).unwrap();
        assert_eq!(out.len(), 8); // a u64 count
    }

    #[test]
    fn cross_warehouse_fraction_controls_remote_stock() {
        let mut cfg = config();
        cfg.neworder_remote_fraction = 1.0;
        cfg.neworder_fraction = 1.0;
        cfg.payment_fraction = 0.0;
        let w = TpccWorkload::new(cfg.clone());
        let mut g = w.client(ClientId::new(1), 8);
        for _ in 0..20 {
            let txn = g.next_txn();
            let home = 1 % cfg.warehouses;
            let remote_stock = txn
                .call
                .write_set
                .iter()
                .filter(|k| k.table == STOCK)
                .any(|k| k.record / cfg.num_items != home);
            assert!(remote_stock, "every txn must touch remote stock");
        }
    }

    #[test]
    fn static_owner_partitions_by_warehouse() {
        let (w, _) = setup();
        let owner = w.static_owner(4);
        let c = w.config().clone();
        let catalog = w.catalog();
        for warehouse in 0..4u64 {
            let wh = catalog
                .partition_of(Key::new(WAREHOUSE, warehouse))
                .unwrap();
            let dist = catalog.partition_of(c.district_key(warehouse, 3)).unwrap();
            let cust = catalog
                .partition_of(c.customer_key(warehouse, 5, 7))
                .unwrap();
            let stock = catalog.partition_of(c.stock_key(warehouse, 9)).unwrap();
            let order = catalog.partition_of(c.order_key(warehouse, 2, 11)).unwrap();
            let site = owner(wh);
            for p in [dist, cust, stock, order] {
                assert_eq!(owner(p), site, "warehouse {warehouse} not colocated");
            }
        }
    }

    #[test]
    fn order_keys_never_collide_across_districts() {
        let c = config();
        let k1 = c.order_key(0, 9, 12345);
        let k2 = c.order_key(1, 0, 12345);
        assert_ne!(k1, k2);
        let l1 = c.order_line_key(0, 9, 12345, 3);
        let l2 = c.order_line_key(0, 9, 12346, 3);
        assert_ne!(l1, l2);
    }
}
