//! Benchmark workloads (paper §VI-A2, Appendix C, Appendix F).
//!
//! * [`ycsb`] — YCSB with the paper's modifications: 100-key partitions with
//!   range correlations, three-key read-modify-writes selected by the
//!   Bernoulli-neighbour scheme, 200–1000-key scans, uniform or Zipf(0.75)
//!   access, client affinity periods with churn, and the shuffled-correlation
//!   variant used by the adaptivity experiment (Fig. 5b).
//! * [`tpcc`] — TPC-C with the paper's three transaction types (New-Order,
//!   Payment, Stock-Level), configurable cross-warehouse rates, and
//!   by-warehouse static partitioning for the baselines.
//! * [`smallbank`] — SmallBank as the paper describes it: 45% single-row
//!   updates, 40% two-row transfer updates, 15% two-row Balance reads.
//!
//! Every workload implements [`spec::Workload`]: a catalog, a stored
//! procedure executor, an initial population, the best static partitioning
//! for the baselines (the paper gives partition-store/multi-master the
//! Schism-selected partitioning — range for YCSB, by-warehouse for TPC-C),
//! and per-client transaction generators.

pub mod smallbank;
pub mod spec;
pub mod tpcc;
pub mod ycsb;

pub use smallbank::{SmallBankConfig, SmallBankWorkload};
pub use spec::{ClientGenerator, GeneratedTxn, TxnKind, Workload};
pub use tpcc::{TpccConfig, TpccWorkload};
pub use ycsb::{YcsbConfig, YcsbWorkload};
