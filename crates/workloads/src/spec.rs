//! The workload interface consumed by the benchmark harness.

use std::sync::Arc;

use dynamast_common::ids::{ClientId, Key, TableId};
use dynamast_common::{Result, Row};
use dynamast_site::data_site::StaticOwnerFn;
use dynamast_site::proc::{ProcCall, ProcExecutor};
use dynamast_storage::Catalog;

/// Whether a generated transaction updates data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnKind {
    /// Update transaction (non-empty write set).
    Update,
    /// Read-only transaction.
    ReadOnly,
}

/// One generated transaction with its reporting label (the paper reports
/// per-transaction-class latencies, e.g. "New-Order", "Balance").
#[derive(Clone, Debug)]
pub struct GeneratedTxn {
    /// The invocable call.
    pub call: ProcCall,
    /// Update or read-only.
    pub kind: TxnKind,
    /// Transaction-class label for reports.
    pub label: &'static str,
}

/// A per-client transaction stream. Generators are deterministic given the
/// seed they were created with.
pub trait ClientGenerator: Send {
    /// Produces the client's next transaction.
    fn next_txn(&mut self) -> GeneratedTxn;
}

/// A benchmark workload: schema, stored procedures, data, partitioning and
/// transaction streams.
pub trait Workload: Send + Sync {
    /// The workload's table catalog.
    fn catalog(&self) -> Catalog;

    /// The stored-procedure executor data sites run.
    fn executor(&self) -> Arc<dyn ProcExecutor>;

    /// Streams the initial database into `load` (row by row).
    fn populate(&self, load: &mut dyn FnMut(Key, Row) -> Result<()>) -> Result<()>;

    /// The best static partitioning for the baselines (the Schism choice the
    /// paper grants them: range for YCSB, by-warehouse for TPC-C).
    fn static_owner(&self, num_sites: usize) -> StaticOwnerFn;

    /// Tables that are static and read-only (e.g. TPC-C `item`); the paper's
    /// partition-store replicates these everywhere despite being otherwise
    /// unreplicated.
    fn static_tables(&self) -> Vec<TableId> {
        Vec::new()
    }

    /// Creates the transaction stream for one client.
    fn client(&self, client: ClientId, seed: u64) -> Box<dyn ClientGenerator>;
}

/// Helper: a read-only `ProcCall` sanity check used by generators in debug
/// builds.
pub fn debug_assert_declared(call: &ProcCall, kind: TxnKind) {
    match kind {
        TxnKind::Update => debug_assert!(
            !call.write_set.is_empty(),
            "update transaction must declare writes"
        ),
        TxnKind::ReadOnly => debug_assert!(
            call.write_set.is_empty(),
            "read-only transaction must not declare writes"
        ),
    }
}
