//! LEAP (§VI-A1): single-site execution via data shipping.
//!
//! "LEAP, like DynaMast, guarantees single-site transaction execution but
//! bases its architecture on a partitioned multi-master database without
//! replication. To guarantee single-site execution, LEAP localizes data in a
//! transaction's read and write sets to the site where the transaction
//! executes. To perform this data localization, LEAP does data shipping,
//! copying data from the old master to the new master."
//!
//! The contrast with DynaMast is deliberate and shows up in three ways this
//! implementation makes concrete:
//!
//! 1. **Reads localize too** — LEAP has no replicas, so a read-only scan
//!    drags every touched partition (records included) to the executing
//!    site, while DynaMast serves it from any replica.
//! 2. **Transfers carry data** — `LeapRelease`/`LeapGrant` messages contain
//!    full records (accounted under [`TrafficCategory::DataShip`]), not the
//!    metadata-only release/grant of dynamic mastering.
//! 3. **No placement strategy** — the destination is simply the site owning
//!    the most touched partitions; nothing anticipates future accesses, so
//!    hot partitions ping-pong (the paper measures LEAP moving data
//!    constantly and suffering 40× tail latencies on multi-row
//!    transactions).
//!
//! The LEAP ownership manager holds each touched partition's lock for the
//! whole transaction (localize → execute → unlock), which is what makes
//! concurrent transactions on overlapping partitions wait for each other's
//! data migrations — the tail-latency effect in Fig. 8.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use dynamast_common::codec::encode_to_vec;
use dynamast_common::ids::{PartitionId, SiteId, TableId};
use dynamast_common::metrics::Counter;
use dynamast_common::{DynaError, Result, SystemConfig};
use dynamast_core::partition_map::PartitionMap;
use dynamast_network::{EndpointId, Network, TrafficCategory};
use dynamast_replication::LogSet;
use dynamast_site::data_site::{DataSite, DataSiteConfig, SiteRuntime, StaticOwnerFn};
use dynamast_site::messages::{expect_ok, SiteRequest, SiteResponse};
use dynamast_site::proc::{ProcCall, ProcExecutor, ReadMode, ScanRange};
use dynamast_site::system::{
    exec_read_at, exec_update_at, Breakdown, ClientSession, ReplicatedSystem, SystemStats,
    TxnOutcome,
};
use dynamast_storage::Catalog;

/// A running LEAP deployment.
pub struct LeapSystem {
    config: SystemConfig,
    catalog: Catalog,
    static_tables: Vec<TableId>,
    network: Arc<Network>,
    logs: LogSet,
    sites: Vec<Arc<DataSite>>,
    map: PartitionMap,
    initial_owner: StaticOwnerFn,
    /// Partitions shipped between sites.
    pub partitions_shipped: Counter,
    _runtimes: Vec<SiteRuntime>,
}

impl LeapSystem {
    /// Builds and starts a LEAP deployment with the given initial
    /// partitioning (partitions materialize lazily at their initial owner).
    pub fn build(
        system: SystemConfig,
        catalog: Catalog,
        initial_owner: StaticOwnerFn,
        static_tables: Vec<TableId>,
        executor: Arc<dyn ProcExecutor>,
        rpc_workers: usize,
    ) -> Arc<Self> {
        let m = system.num_sites;
        let network = Network::new(system.network, system.seed);
        network.set_recorder(Some(dynamast_common::FlightRecorder::from_env()));
        let logs = LogSet::new(m);
        let mut sites = Vec::with_capacity(m);
        let mut runtimes = Vec::with_capacity(m);
        for i in 0..m {
            let site = DataSite::new(
                DataSiteConfig {
                    id: SiteId::new(i),
                    system: system.clone(),
                    replicate: false,
                    initial_partitions: Vec::new(),
                    static_owner: None,
                    replicated_tables: static_tables.clone(),
                    hosted: None,
                    refresh_skipped: None,
                },
                catalog.clone(),
                logs.clone(),
                Arc::clone(&network),
                Arc::clone(&executor),
            );
            runtimes.push(site.start(rpc_workers));
            sites.push(site);
        }
        Arc::new(LeapSystem {
            config: system,
            catalog,
            static_tables,
            network,
            logs,
            sites,
            map: PartitionMap::new(),
            initial_owner,
            partitions_shipped: Counter::new(),
            _runtimes: runtimes,
        })
    }

    /// The simulated network (traffic accounting).
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// The data sites.
    pub fn sites(&self) -> &[Arc<DataSite>] {
        &self.sites
    }

    /// The durable logs (redo only — LEAP does not replicate).
    pub fn logs(&self) -> &LogSet {
        &self.logs
    }

    /// Loads a row at its initial owner, registering ownership.
    pub fn load_row(
        &self,
        key: dynamast_common::ids::Key,
        row: dynamast_common::Row,
    ) -> Result<()> {
        if self.static_tables.contains(&key.table) {
            for site in &self.sites {
                site.load_row(key, row.clone())?;
            }
            return Ok(());
        }
        let partition = self.catalog.partition_of(key)?;
        let owner = (self.initial_owner)(partition);
        self.sites[owner.as_usize()].load_row(key, row)?;
        self.sites[owner.as_usize()].ownership().grant(partition);
        let entries = self.map.entries_for(&[partition]);
        let mut guards = self.map.lock_exclusive(&entries);
        entries[0].set_master(&mut guards[0], owner);
        Ok(())
    }

    fn touched_partitions(&self, proc: &ProcCall) -> Result<Vec<PartitionId>> {
        let mut partitions = Vec::new();
        for key in proc.write_set.iter().chain(&proc.read_keys) {
            if self.static_tables.contains(&key.table) {
                continue; // replicated everywhere; never localized
            }
            partitions.push(self.catalog.partition_of(*key)?);
        }
        for range in &proc.read_ranges {
            if self.static_tables.contains(&range.table) {
                continue;
            }
            partitions.extend(self.partitions_of_range(range)?);
        }
        partitions.sort_unstable();
        partitions.dedup();
        Ok(partitions)
    }

    fn partitions_of_range(&self, range: &ScanRange) -> Result<Vec<PartitionId>> {
        let schema = self.catalog.table(range.table)?;
        let psize = schema.partition_size;
        let first = range.start / psize;
        let last = (range.end.saturating_sub(1)) / psize;
        Ok((first..=last)
            .map(|i| schema.partition_of(i * psize))
            .collect())
    }

    /// Localizes every touched partition to the client's execution site,
    /// then runs `body` with the partition locks held.
    ///
    /// LEAP executes a transaction at the node that receives it and ships
    /// the data *to* that node — it has no placement strategy. Clients are
    /// statically assigned home nodes, so two clients on different nodes
    /// whose access sets overlap ship the same partitions back and forth on
    /// every alternation ("LEAP ... continually transfers data between
    /// sites", §VI-B2).
    fn localized<T>(
        &self,
        dest: SiteId,
        proc: &ProcCall,
        body: impl FnOnce(SiteId) -> Result<T>,
    ) -> Result<(T, Duration)> {
        let partitions = self.touched_partitions(proc)?;
        if partitions.is_empty() {
            // A transaction over static replicated tables only: execute at
            // the destination without localization.
            let out = body(dest)?;
            return Ok((out, Duration::ZERO));
        }
        let entries = self.map.entries_for(&partitions);
        let mut guards = self.map.lock_exclusive(&entries);
        let t_localize = Instant::now();

        // Group foreign partitions by current owner and ship them over.
        let mut by_owner: HashMap<Option<SiteId>, Vec<usize>> = HashMap::new();
        for (i, guard) in guards.iter().enumerate() {
            if guard.master != Some(dest) {
                by_owner.entry(guard.master).or_default().push(i);
            }
        }
        for (owner, indexes) in by_owner {
            let parts: Vec<PartitionId> = indexes.iter().map(|&i| partitions[i]).collect();
            let records = match owner {
                None => Vec::new(), // brand-new partitions: nothing to ship
                Some(owner) => {
                    let req = SiteRequest::LeapRelease {
                        partitions: parts.clone(),
                    };
                    let reply = self.network.rpc(
                        EndpointId::Site(owner.raw()),
                        TrafficCategory::DataShip,
                        Bytes::from(encode_to_vec(&req)),
                    )?;
                    match expect_ok(&reply)? {
                        SiteResponse::LeapReleased { records } => records,
                        _ => return Err(DynaError::Internal("unexpected leap release response")),
                    }
                }
            };
            let grant = SiteRequest::LeapGrant {
                partitions: parts.clone(),
                records,
            };
            let reply = self.network.rpc(
                EndpointId::Site(dest.raw()),
                TrafficCategory::DataShip,
                Bytes::from(encode_to_vec(&grant)),
            )?;
            match expect_ok(&reply)? {
                SiteResponse::LeapGranted => {}
                _ => return Err(DynaError::Internal("unexpected leap grant response")),
            }
            for i in indexes {
                entries[i].set_master(&mut guards[i], dest);
                self.partitions_shipped.inc();
            }
        }
        let localize_time = t_localize.elapsed();
        let out = body(dest)?;
        drop(guards);
        Ok((out, localize_time))
    }
}

impl ReplicatedSystem for LeapSystem {
    fn name(&self) -> &'static str {
        "leap"
    }

    fn update(&self, session: &mut ClientSession, proc: &ProcCall) -> Result<TxnOutcome> {
        let t0 = Instant::now();
        // Client → LEAP transaction manager round trip (localization
        // decisions are not free; DynaMast pays the same hop to its
        // selector).
        self.network.charge_one_way(
            TrafficCategory::ClientSelector,
            32 + proc.write_set.len() * 12,
        );
        let txn_id = dynamast_common::trace::next_trace_id();
        let min_vv = dynamast_common::VersionVector::zero(self.config.num_sites);
        let home = SiteId::new((session.id.raw() % self.config.num_sites as u64) as usize);
        let ((result, timings), localize) = self.localized(home, proc, |dest| {
            let mut session_ref = session.clone();
            let out = exec_update_at(
                &self.network,
                dest,
                txn_id,
                &mut session_ref,
                &min_vv,
                proc,
                true,
            )?;
            session.cvv = session_ref.cvv;
            Ok(out)
        })?;
        Ok(TxnOutcome {
            result,
            breakdown: Breakdown::from_parts(Duration::ZERO, localize, timings, t0.elapsed()),
        })
    }

    fn read(&self, session: &mut ClientSession, proc: &ProcCall) -> Result<TxnOutcome> {
        let t0 = Instant::now();
        self.network.charge_one_way(
            TrafficCategory::ClientSelector,
            32 + proc.read_keys.len() * 12,
        );
        let txn_id = dynamast_common::trace::next_trace_id();
        let home = SiteId::new((session.id.raw() % self.config.num_sites as u64) as usize);
        let ((result, timings), localize) = self.localized(home, proc, |dest| {
            let mut session_ref = session.clone();
            let out = exec_read_at(
                &self.network,
                dest,
                txn_id,
                &mut session_ref,
                proc,
                ReadMode::Latest,
            )?;
            session.cvv = session_ref.cvv;
            Ok(out)
        })?;
        Ok(TxnOutcome {
            result,
            breakdown: Breakdown::from_parts(Duration::ZERO, localize, timings, t0.elapsed()),
        })
    }

    fn stats(&self) -> SystemStats {
        SystemStats {
            committed_updates: self.sites.iter().map(|s| s.commits.get()).sum(),
            aborts: self.sites.iter().map(|s| s.aborts.get()).sum(),
            remaster_ops: self.partitions_shipped.get(),
            partitions_moved: self.partitions_shipped.get(),
            masters_per_site: self.map.masters_per_site(self.config.num_sites),
            updates_routed_per_site: Vec::new(),
            resident_bytes: self.sites.iter().map(|s| s.store().resident_bytes()).sum(),
        }
    }
}
