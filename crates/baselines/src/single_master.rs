//! The single-master baseline (§VI-A1).
//!
//! "We leveraged DynaMast's adaptability to design a single-master system in
//! which all write transactions execute at a single (master) site while
//! lazily maintaining read-only replicas at other sites."
//!
//! Implementation: a [`DynaMastSystem`] whose selector is pinned to site 0.
//! Every partition is placed at site 0 on first touch and never moves, so
//! every update routes to the master while reads spread over the replicas —
//! which is "superior to using a centralized system" exactly as the paper
//! argues.

use std::sync::Arc;

use dynamast_common::ids::SiteId;
use dynamast_common::SystemConfig;
use dynamast_core::dynamast::{DynaMastConfig, DynaMastSystem};
use dynamast_core::selector::SelectorMode;
use dynamast_site::proc::ProcExecutor;
use dynamast_storage::Catalog;

/// The site hosting every master copy.
pub const MASTER_SITE: SiteId = SiteId::new(0);

/// Builds a running single-master deployment.
pub fn single_master(
    system: SystemConfig,
    catalog: Catalog,
    executor: Arc<dyn ProcExecutor>,
) -> Arc<DynaMastSystem> {
    single_master_with_workers(system, catalog, executor, 24)
}

/// Builds a single-master deployment with an explicit per-site RPC worker
/// count — the worker pool is the site's simulated capacity, so comparisons
/// must give every system the same pool size.
pub fn single_master_with_workers(
    system: SystemConfig,
    catalog: Catalog,
    executor: Arc<dyn ProcExecutor>,
    rpc_workers: usize,
) -> Arc<DynaMastSystem> {
    let mut cfg = DynaMastConfig::adaptive(system, catalog);
    cfg.mode = SelectorMode::Pinned(Arc::new(|_| MASTER_SITE));
    cfg.rpc_workers = rpc_workers;
    DynaMastSystem::build_named("single-master", cfg, executor)
}
