//! Client-side transaction coordination for the statically partitioned
//! systems (multi-master, partition-store).
//!
//! The flow is the classic distributed-transaction shape the paper charges
//! against these architectures:
//!
//! 1. **Fetch** — the client reads every declared key/range from the owning
//!    sites (partition-store) or one replica (multi-master), in parallel
//!    per site; multi-site fetches finish at the slowest responder
//!    (straggler effect).
//! 2. **Execute** — transaction logic runs against the fetched rows.
//! 3. **2PC** — a prepare round (participants lock their fragments and
//!    validate the fetched read versions under those locks) and a decide
//!    round. Locks held between the rounds are the *uncertainty window*
//!    that blocks concurrent transactions. A no-vote aborts everywhere and
//!    the caller retries with a fresh fetch.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use dynamast_common::codec::encode_to_vec;
use dynamast_common::ids::{Key, RecordId, SiteId, TableId};
use dynamast_common::{DynaError, Result, Row, VersionVector};
use dynamast_network::{EndpointId, Network, TrafficCategory};
use dynamast_replication::record::WriteEntry;
use dynamast_site::messages::{expect_ok, ExpectedVersion, SiteRequest, SiteResponse};
use dynamast_site::proc::{ScanRange, TxnCtx};
use dynamast_storage::VersionStamp;

/// What to fetch from one site.
#[derive(Clone, Debug, Default)]
pub struct FetchPlan {
    /// Point reads.
    pub keys: Vec<Key>,
    /// Range scans.
    pub ranges: Vec<ScanRange>,
}

impl FetchPlan {
    /// `true` when nothing needs fetching.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty() && self.ranges.is_empty()
    }
}

/// Rows the client fetched before executing.
#[derive(Default)]
pub struct FetchedData {
    rows: HashMap<Key, Option<(Row, VersionStamp)>>,
    scan_rows: HashMap<TableId, BTreeMap<RecordId, Row>>,
}

/// Fetches all plans in parallel (one `RemoteRead` per site); the call
/// completes when the slowest site responds.
pub fn fetch(network: &Network, plans: Vec<(SiteId, FetchPlan)>) -> Result<FetchedData> {
    let mut pending = Vec::with_capacity(plans.len());
    for (site, plan) in plans {
        if plan.is_empty() {
            continue;
        }
        let req = SiteRequest::RemoteRead {
            keys: plan.keys.clone(),
            ranges: plan.ranges.clone(),
        };
        let reply = network.rpc_async(
            EndpointId::Site(site.raw()),
            TrafficCategory::ClientSite,
            Bytes::from(encode_to_vec(&req)),
        )?;
        pending.push((plan, reply));
    }
    let mut data = FetchedData::default();
    for (plan, reply) in pending {
        match expect_ok(&reply.wait()?)? {
            SiteResponse::Rows { keys, scans } => {
                for (key, entry) in keys {
                    data.rows.insert(key, entry);
                }
                for (range, rows) in plan.ranges.iter().zip(scans) {
                    let table = data.scan_rows.entry(range.table).or_default();
                    for (record, row) in rows {
                        table.insert(record, row);
                    }
                }
            }
            _ => return Err(DynaError::Internal("unexpected remote read response")),
        }
    }
    Ok(data)
}

/// Buffered writes plus the observed read stamps, produced when a
/// transaction finishes executing.
pub type WritesAndStamps = (Vec<(Key, Row)>, HashMap<Key, Option<VersionStamp>>);

/// The client-side transaction context over fetched data.
pub struct ClientCtx {
    fetched: FetchedData,
    write_set: Vec<Key>,
    writes: Vec<(Key, Row)>,
    /// Stamps observed for fetched keys (first-committer-wins validation).
    pub read_stamps: HashMap<Key, Option<VersionStamp>>,
}

impl ClientCtx {
    /// Wraps fetched data for execution.
    pub fn new(fetched: FetchedData, write_set: Vec<Key>) -> Self {
        ClientCtx {
            fetched,
            write_set,
            writes: Vec::new(),
            read_stamps: HashMap::new(),
        }
    }

    /// Buffered after-images in write order.
    pub fn writes(&self) -> &[(Key, Row)] {
        &self.writes
    }

    /// Consumes the buffered writes.
    pub fn into_writes(self) -> WritesAndStamps {
        (self.writes, self.read_stamps)
    }
}

impl TxnCtx for ClientCtx {
    fn read(&mut self, key: Key) -> Result<Option<Row>> {
        if let Some((_, row)) = self.writes.iter().rev().find(|(k, _)| *k == key) {
            return Ok(Some(row.clone()));
        }
        let entry = self
            .fetched
            .rows
            .get(&key)
            .ok_or(DynaError::Internal("read of a key that was not fetched"))?;
        self.read_stamps
            .entry(key)
            .or_insert_with(|| entry.as_ref().map(|(_, s)| *s));
        Ok(entry.as_ref().map(|(row, _)| row.clone()))
    }

    fn scan(&mut self, range: ScanRange) -> Result<Vec<(RecordId, Row)>> {
        let Some(table) = self.fetched.scan_rows.get(&range.table) else {
            return Ok(Vec::new());
        };
        Ok(table
            .range(range.start..range.end)
            .map(|(record, row)| (*record, row.clone()))
            .collect())
    }

    fn write(&mut self, key: Key, row: Row) -> Result<()> {
        if !self.write_set.contains(&key) {
            return Err(DynaError::Internal("write outside declared write set"));
        }
        if let Some(slot) = self.writes.iter_mut().rev().find(|(k, _)| *k == key) {
            slot.1 = row;
        } else {
            self.writes.push((key, row));
        }
        Ok(())
    }
}

/// Runs client-coordinated 2PC: parallel prepare (with read validation),
/// then parallel decide. Returns the merged participant svv on commit,
/// `None` when any participant voted no (caller retries with fresh reads).
///
/// Every update transaction goes through both rounds — including single-
/// fragment ones — matching the paper's observation that even single-row
/// transactions suffer the uncertain phase in these architectures.
///
/// `trace_id` is the flight-recorder trace id for the client transaction
/// (0 = untraced), distinct from the wire-level 2PC `txn_id`.
pub fn two_phase_commit(
    network: &Arc<Network>,
    trace_id: u64,
    txn_id: u64,
    groups: BTreeMap<SiteId, Vec<WriteEntry>>,
    read_stamps: &HashMap<Key, Option<VersionStamp>>,
) -> Result<Option<VersionVector>> {
    use dynamast_common::trace::{TraceKind, TracePayload, TraceSite};
    let recorder = if trace_id == 0 {
        None
    } else {
        network.recorder()
    };
    let participants = groups.len() as u32;
    let trace = |kind: TraceKind, site: u32, ok: bool| {
        if let Some(rec) = &recorder {
            rec.record(
                trace_id,
                TraceSite::None,
                kind,
                TracePayload::TwoPc {
                    site,
                    ok,
                    participants,
                },
            );
        }
    };
    // Phase one: parallel prepares.
    let mut pending = Vec::with_capacity(groups.len());
    for (owner, entries) in &groups {
        let expected: Vec<ExpectedVersion> = entries
            .iter()
            .filter_map(|w| {
                read_stamps.get(&w.key).map(|stamp| ExpectedVersion {
                    key: w.key,
                    stamp: *stamp,
                })
            })
            .collect();
        let req = SiteRequest::Prepare {
            txn_id,
            writes: entries.clone(),
            expected,
        };
        trace(TraceKind::TwoPcPrepare, owner.raw(), true);
        pending.push((
            *owner,
            network.rpc_async(
                EndpointId::Site(owner.raw()),
                TrafficCategory::TwoPhaseCommit,
                Bytes::from(encode_to_vec(&req)),
            )?,
        ));
    }
    let mut votes_yes = true;
    for (owner, reply) in pending {
        match expect_ok(&reply.wait()?)? {
            SiteResponse::Voted { yes } => {
                trace(TraceKind::TwoPcVote, owner.raw(), yes);
                votes_yes &= yes;
            }
            _ => return Err(DynaError::Internal("unexpected prepare response")),
        }
    }
    // The decide originates at the client, not a site; u32::MAX marks the
    // client-side coordinator in the trace.
    trace(TraceKind::TwoPcDecide, u32::MAX, votes_yes);

    // Phase two: parallel decides (abort is sent to everyone; it is
    // idempotent for participants that never staged).
    let mut decisions = Vec::with_capacity(groups.len());
    for owner in groups.keys() {
        let req = SiteRequest::Decide {
            txn_id,
            commit: votes_yes,
        };
        decisions.push(network.rpc_async(
            EndpointId::Site(owner.raw()),
            TrafficCategory::TwoPhaseCommit,
            Bytes::from(encode_to_vec(&req)),
        )?);
    }
    let mut commit_vv: Option<VersionVector> = None;
    for reply in decisions {
        match expect_ok(&reply.wait()?)? {
            SiteResponse::Decided { site_vv } => match &mut commit_vv {
                None => commit_vv = Some(site_vv),
                Some(vv) => vv.merge_max(&site_vv),
            },
            _ => return Err(DynaError::Internal("unexpected decide response")),
        }
    }
    Ok(if votes_yes { commit_vv } else { None })
}
