//! The paper's comparator systems (§VI-A1), implemented inside the same
//! framework as DynaMast — same storage engine, same MVCC scheme, same
//! isolation level, same network substrate — so that performance differences
//! are attributable to the architectures alone:
//!
//! * [`mod@single_master`] — all writes at one site, lazily maintained read
//!   replicas everywhere (expressed as a pinned DynaMast deployment, exactly
//!   as the paper does: "we leveraged DynaMast's adaptability to design a
//!   single-master system").
//! * [`static_system`] — the statically partitioned systems:
//!   **multi-master** (lazy replication, 2PC for multi-site write sets,
//!   reads at any replica) and **partition-store** (no replication, 2PC,
//!   remote reads with straggler-bound multi-site scans).
//! * [`leap`] — LEAP: partitioned, unreplicated, single-site execution via
//!   *data shipping*: every transaction localizes the partitions it touches
//!   (reads included) to one site, moving the records themselves.

pub mod client_coord;
pub mod leap;
pub mod single_master;
pub mod static_system;

pub use leap::LeapSystem;
pub use single_master::{single_master, single_master_with_workers};
pub use static_system::{StaticKind, StaticSystem};
