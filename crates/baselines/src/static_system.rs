//! Statically partitioned comparators: multi-master and partition-store.
//!
//! Both assign every partition a fixed owner (the paper gives them the best
//! static partitioning Schism found: range partitioning for YCSB,
//! by-warehouse for TPC-C — encoded here in the owner function supplied by
//! the workload), and both commit update transactions with client-
//! coordinated two-phase commit: the client fetches its reads from the
//! owning sites, executes the transaction logic, then runs a prepare round
//! (participants lock and validate read versions) and a decide round. This
//! is what gives these architectures the paper's costs:
//!
//! * **additional round trips** — even a fully local single-site update
//!   pays read-fetch + prepare + decide (§VI-B1: "partition-store performs
//!   poorly ... due to additional round-trips during transaction
//!   processing");
//! * **the uncertainty window** — participants hold write locks between
//!   prepare and decide, blocking concurrent transactions ("the
//!   requirements of the uncertain phase during distributed transaction
//!   processing force blocking — even for single-row transactions",
//!   Appendix F);
//! * **stragglers** — partition-store's multi-partition reads fan out to
//!   every owning site and complete at the slowest response (§VI-B2).
//!
//! They differ in replication: **multi-master** lazily maintains replicas,
//! so read-only transactions execute at any single site and update-phase
//! reads are served by one (possibly lagging — prepare-time validation
//! catches conflicts) replica; **partition-store** has none, so every read
//! goes to the partition's owner.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::client_coord::{fetch, two_phase_commit, ClientCtx, FetchPlan};
use dynamast_replication::record::WriteEntry;

use dynamast_common::ids::SiteId;
use dynamast_common::{Result, SystemConfig};
use dynamast_network::Network;
use dynamast_replication::LogSet;
use dynamast_site::data_site::{DataSite, DataSiteConfig, SiteRuntime, StaticOwnerFn};
use dynamast_site::proc::{ProcCall, ProcExecutor, ReadMode, ScanRange};
use dynamast_site::system::{
    exec_read_at, Breakdown, ClientSession, ReplicatedSystem, SystemStats, TxnOutcome,
};
use dynamast_storage::Catalog;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which static architecture to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StaticKind {
    /// Lazy replication + 2PC; reads at any replica.
    MultiMaster,
    /// No replication; 2PC; remote reads.
    PartitionStore,
}

impl StaticKind {
    fn name(self) -> &'static str {
        match self {
            StaticKind::MultiMaster => "multi-master",
            StaticKind::PartitionStore => "partition-store",
        }
    }

    fn replicate(self) -> bool {
        matches!(self, StaticKind::MultiMaster)
    }
}

/// A running multi-master or partition-store deployment.
pub struct StaticSystem {
    kind: StaticKind,
    config: SystemConfig,
    catalog: Catalog,
    static_tables: Vec<dynamast_common::ids::TableId>,
    network: Arc<Network>,
    logs: LogSet,
    sites: Vec<Arc<DataSite>>,
    owner: StaticOwnerFn,
    executor: Arc<dyn ProcExecutor>,
    rng: Mutex<SmallRng>,
    txn_counter: AtomicU64,
    _runtimes: Vec<SiteRuntime>,
}

impl StaticSystem {
    /// Builds and starts a deployment with the given fixed partitioning.
    pub fn build(
        kind: StaticKind,
        system: SystemConfig,
        catalog: Catalog,
        owner: StaticOwnerFn,
        static_tables: Vec<dynamast_common::ids::TableId>,
        executor: Arc<dyn ProcExecutor>,
        rpc_workers: usize,
    ) -> Arc<Self> {
        let m = system.num_sites;
        let network = Network::new(system.network, system.seed);
        network.set_recorder(Some(dynamast_common::FlightRecorder::from_env()));
        let logs = LogSet::new(m);
        let mut sites = Vec::with_capacity(m);
        let mut runtimes = Vec::with_capacity(m);
        for i in 0..m {
            let site = DataSite::new(
                DataSiteConfig {
                    id: SiteId::new(i),
                    system: system.clone(),
                    replicate: kind.replicate(),
                    initial_partitions: Vec::new(),
                    static_owner: Some(Arc::clone(&owner)),
                    replicated_tables: static_tables.clone(),
                    hosted: None,
                    refresh_skipped: None,
                },
                catalog.clone(),
                logs.clone(),
                Arc::clone(&network),
                Arc::clone(&executor),
            );
            runtimes.push(site.start(rpc_workers));
            sites.push(site);
        }
        Arc::new(StaticSystem {
            kind,
            catalog,
            static_tables,
            network,
            logs,
            sites,
            owner,
            executor,
            rng: Mutex::new(SmallRng::seed_from_u64(system.seed ^ 0x0057_A71C)),
            txn_counter: AtomicU64::new(1),
            _runtimes: runtimes,
            config: system,
        })
    }

    /// The simulated network (traffic accounting).
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// The durable logs.
    pub fn logs(&self) -> &LogSet {
        &self.logs
    }

    /// The data sites.
    pub fn sites(&self) -> &[Arc<DataSite>] {
        &self.sites
    }

    /// Loads one row into the owning site (and all replicas under
    /// multi-master).
    pub fn load_row(
        &self,
        key: dynamast_common::ids::Key,
        row: dynamast_common::Row,
    ) -> Result<()> {
        if self.kind.replicate() || self.static_tables.contains(&key.table) {
            for site in &self.sites {
                site.load_row(key, row.clone())?;
            }
        } else {
            let owner = (self.owner)(self.catalog.partition_of(key)?);
            self.sites[owner.as_usize()].load_row(key, row)?;
        }
        Ok(())
    }

    fn owner_of_key(&self, key: dynamast_common::ids::Key) -> Result<SiteId> {
        Ok((self.owner)(self.catalog.partition_of(key)?))
    }

    /// Builds per-site fetch plans for everything a transaction reads
    /// (declared reads plus write-set keys for read-modify-writes).
    ///
    /// Partition-store fetches each key/range from its owner; multi-master
    /// fetches everything from one replica (static tables are served
    /// locally either way).
    fn fetch_plans(&self, proc: &ProcCall) -> Result<Vec<(SiteId, FetchPlan)>> {
        let mut plans: BTreeMap<SiteId, FetchPlan> = BTreeMap::new();
        let single_site = match self.kind {
            StaticKind::MultiMaster => Some(SiteId::new(
                self.rng.lock().gen_range(0..self.config.num_sites),
            )),
            StaticKind::PartitionStore => None,
        };
        for key in proc.write_set.iter().chain(&proc.read_keys) {
            let site = match single_site {
                Some(site) => site,
                None => self.owner_of_key(*key)?,
            };
            plans.entry(site).or_default().keys.push(*key);
        }
        for range in &proc.read_ranges {
            match single_site {
                Some(site) => plans.entry(site).or_default().ranges.push(*range),
                None => {
                    // Split by owner; contiguous same-owner subranges merge.
                    let schema = self.catalog.table(range.table)?;
                    let psize = schema.partition_size;
                    let mut cursor = range.start;
                    while cursor < range.end {
                        let sub_end = (((cursor / psize) + 1) * psize).min(range.end);
                        let owner =
                            self.owner_of_key(dynamast_common::ids::Key::new(range.table, cursor))?;
                        let ranges = &mut plans.entry(owner).or_default().ranges;
                        match ranges.last_mut() {
                            Some(last) if last.table == range.table && last.end == cursor => {
                                last.end = sub_end
                            }
                            _ => ranges.push(ScanRange {
                                table: range.table,
                                start: cursor,
                                end: sub_end,
                            }),
                        }
                        cursor = sub_end;
                    }
                }
            }
        }
        Ok(plans.into_iter().collect())
    }
}

impl ReplicatedSystem for StaticSystem {
    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn update(&self, session: &mut ClientSession, proc: &ProcCall) -> Result<TxnOutcome> {
        let t0 = Instant::now();
        let trace_id = dynamast_common::trace::next_trace_id();
        let mut attempt = 0u32;
        loop {
            // 1. Fetch phase (parallel per site; stragglers bound latency).
            let fetched = fetch(&self.network, self.fetch_plans(proc)?)?;
            // 2. Execute locally over the fetched rows.
            let t_exec0 = Instant::now();
            let mut ctx = ClientCtx::new(fetched, proc.write_set.clone());
            let result = self.executor.execute(&mut ctx, proc)?;
            let (writes, read_stamps) = ctx.into_writes();
            let exec_time = t_exec0.elapsed();
            if let Some(rec) = self.network.recorder() {
                use dynamast_common::trace::{TraceKind, TracePayload, TraceSite};
                rec.record(
                    trace_id,
                    TraceSite::None,
                    TraceKind::TxnExecute,
                    TracePayload::Span {
                        us: exec_time.as_micros() as u64,
                        vv_wait_us: 0,
                    },
                );
            }
            // 3. Two-phase commit (prepare + decide, even for one fragment).
            let t_commit0 = Instant::now();
            let mut groups: BTreeMap<SiteId, Vec<WriteEntry>> = BTreeMap::new();
            for (key, row) in writes {
                groups
                    .entry(self.owner_of_key(key)?)
                    .or_default()
                    .push(WriteEntry { key, row });
            }
            let txn_id = (u64::from(self.config.num_sites as u32) << 48)
                | self.txn_counter.fetch_add(1, Ordering::Relaxed);
            match two_phase_commit(&self.network, trace_id, txn_id, groups, &read_stamps)? {
                Some(commit_vv) => {
                    session.observe(&commit_vv);
                    for site in &self.sites {
                        // Aborts counter lives on sites; commits counted at
                        // participants during decide.
                        let _ = site;
                    }
                    let commit_time = t_commit0.elapsed();
                    let mut breakdown = Breakdown::from_parts(
                        Duration::ZERO,
                        Duration::ZERO,
                        dynamast_site::messages::ExecTimings {
                            begin_us: 0,
                            exec_us: exec_time.as_micros() as u32,
                            commit_us: commit_time.as_micros() as u32,
                        },
                        t0.elapsed(),
                    );
                    breakdown.execution = exec_time;
                    return Ok(TxnOutcome { result, breakdown });
                }
                None => {
                    attempt += 1;
                    if attempt >= 64 {
                        return Err(dynamast_common::DynaError::TxnAborted {
                            reason: "2pc retries exhausted",
                        });
                    }
                    thread::sleep(Duration::from_micros(
                        200 * u64::from(attempt) + (txn_id % 7) * 100,
                    ));
                }
            }
        }
    }

    fn read(&self, session: &mut ClientSession, proc: &ProcCall) -> Result<TxnOutcome> {
        let t0 = Instant::now();
        match self.kind {
            StaticKind::MultiMaster => {
                // Replicas make any site a valid snapshot reader.
                let site = SiteId::new(self.rng.lock().gen_range(0..self.config.num_sites));
                let txn_id = dynamast_common::trace::next_trace_id();
                let (result, timings) = exec_read_at(
                    &self.network,
                    site,
                    txn_id,
                    session,
                    proc,
                    ReadMode::Snapshot,
                )?;
                Ok(TxnOutcome {
                    result,
                    breakdown: Breakdown::from_parts(
                        Duration::ZERO,
                        Duration::ZERO,
                        timings,
                        t0.elapsed(),
                    ),
                })
            }
            StaticKind::PartitionStore => {
                // Multi-site read-only transaction: the client fans out to
                // every owning site and completes at the slowest response.
                let fetched = fetch(&self.network, self.fetch_plans(proc)?)?;
                let mut ctx = ClientCtx::new(fetched, Vec::new());
                let result = self.executor.execute(&mut ctx, proc)?;
                Ok(TxnOutcome {
                    result,
                    breakdown: Breakdown::from_parts(
                        Duration::ZERO,
                        Duration::ZERO,
                        dynamast_site::messages::ExecTimings::default(),
                        t0.elapsed(),
                    ),
                })
            }
        }
    }

    fn stats(&self) -> SystemStats {
        SystemStats {
            committed_updates: self.sites.iter().map(|s| s.commits.get()).sum(),
            aborts: self.sites.iter().map(|s| s.aborts.get()).sum(),
            remaster_ops: 0,
            partitions_moved: 0,
            masters_per_site: Vec::new(),
            updates_routed_per_site: Vec::new(),
            resident_bytes: self.sites.iter().map(|s| s.store().resident_bytes()).sum(),
        }
    }
}
