//! Property test: concurrent `reserve`/`fill`/`abort`/`append` interleavings
//! against a *persistent* [`DurableLog`] keep the published prefix gap-free
//! and offset-ordered — readers never observe a hole, an unfilled slot, or a
//! shrinking watermark — with every aborted reservation closed by a Noop
//! tombstone carrying exactly its slot's sequence. The log is then reopened
//! from disk and must recover the identical record list.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;

use dynamast_common::ids::{Key, SiteId, TableId};
use dynamast_common::{FsyncMode, Row, Value, VersionVector};
use dynamast_replication::log::DurableLog;
use dynamast_replication::record::{LogRecord, WriteEntry};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Reserve a slot, then fill it with a commit record.
    Fill,
    /// Reserve a slot, then abandon it (the wedged-committer path).
    Abort,
    /// One-step reserve + fill.
    Append,
}

/// What a completed op expects to find at its offset afterwards.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Expected {
    Value(u64),
    Tombstone,
}

fn plans() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(
        prop::collection::vec(
            (0u8..4).prop_map(|b| match b {
                0 | 3 => Op::Fill,
                1 => Op::Abort,
                _ => Op::Append,
            }),
            1..20,
        ),
        2..4,
    )
}

fn commit_record(sequence: u64, value: u64) -> LogRecord {
    let mut tvv = VersionVector::zero(1);
    tvv.set(SiteId::new(0), sequence);
    LogRecord::Commit {
        origin: SiteId::new(0),
        tvv,
        writes: vec![WriteEntry::new(
            Key::new(TableId::new(0), value),
            Row::new(vec![Value::U64(value)]),
        )],
    }
}

fn value_of(record: &LogRecord) -> Option<u64> {
    match record {
        LogRecord::Commit { writes, .. } => Some(writes[0].key.record),
        _ => None,
    }
}

/// Unique scratch directory per proptest case.
fn case_dir() -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("dynamast-prop-log-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn concurrent_interleavings_publish_a_gap_free_offset_ordered_prefix(plan in plans()) {
        let dir = case_dir();
        // Small segments so longer plans cross a rotation boundary.
        let log = DurableLog::open_persistent(
            SiteId::new(0), dir.clone(), 512, FsyncMode::Group, 1,
        ).unwrap();
        let total: u64 = plan.iter().map(|ops| ops.len() as u64).sum();
        let done = AtomicBool::new(false);

        // (offset, expectation) per completed op, collected per thread.
        let mut outcomes: Vec<(u64, Expected)> = Vec::new();
        let reader_checked = thread::scope(|scope| {
            let reader = scope.spawn(|| {
                // Concurrent reader: the visible prefix only ever grows, and
                // every published record decodes. Any gap or unfilled slot
                // would panic/err inside `read_from`.
                let mut last_len = 0usize;
                let mut max_seen = 0usize;
                while !done.load(Ordering::Acquire) {
                    let (records, _) = log.read_from(0).unwrap();
                    assert!(
                        records.len() >= last_len,
                        "visible prefix shrank: {} -> {}", last_len, records.len(),
                    );
                    last_len = records.len();
                    max_seen = max_seen.max(records.len());
                    thread::yield_now();
                }
                max_seen
            });
            let handles: Vec<_> = plan
                .iter()
                .enumerate()
                .map(|(t, ops)| {
                    let ops = ops.clone();
                    let log = &log;
                    scope.spawn(move || {
                        let mut local = Vec::with_capacity(ops.len());
                        for (i, op) in ops.into_iter().enumerate() {
                            let value = ((t as u64) << 32) | i as u64;
                            match op {
                                Op::Fill => {
                                    let ticket = log.reserve();
                                    if value % 3 == 0 {
                                        thread::yield_now();
                                    }
                                    log.fill(ticket, &commit_record(ticket + 1, value));
                                    local.push((ticket, Expected::Value(value)));
                                }
                                Op::Abort => {
                                    let ticket = log.reserve();
                                    if value % 2 == 0 {
                                        thread::yield_now();
                                    }
                                    log.abort(ticket);
                                    local.push((ticket, Expected::Tombstone));
                                }
                                Op::Append => {
                                    // Sequence unknowable in advance under
                                    // concurrency; identity rides the value.
                                    let offset = log.append(&commit_record(0, value));
                                    local.push((offset, Expected::Value(value)));
                                }
                            }
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                outcomes.extend(handle.join().unwrap());
            }
            done.store(true, Ordering::Release);
            reader.join().unwrap()
        });

        // Every reservation closed: the full prefix is visible, in offset
        // order, with no leftover open slots.
        prop_assert_eq!(log.len(), total);
        prop_assert_eq!(log.reserved_len(), total);
        prop_assert!(reader_checked <= total as usize);

        // Offsets are a permutation of 0..total (no duplicates, no gaps).
        let mut offsets: Vec<u64> = outcomes.iter().map(|(o, _)| *o).collect();
        offsets.sort_unstable();
        prop_assert_eq!(offsets, (0..total).collect::<Vec<u64>>());

        // Each op finds exactly what it published; tombstones carry their
        // slot's sequence so downstream svv admission stays gap-free.
        for (offset, expected) in &outcomes {
            let record = log.get(*offset).unwrap().expect("published slot readable");
            match expected {
                Expected::Value(v) => {
                    prop_assert_eq!(value_of(&record), Some(*v), "offset {}", offset);
                }
                Expected::Tombstone => match record {
                    LogRecord::Noop { origin, sequence } => {
                        prop_assert_eq!(origin, SiteId::new(0));
                        prop_assert_eq!(sequence, offset + 1, "tombstone sequence");
                    }
                    other => prop_assert!(false, "expected Noop at {}, got {:?}", offset, other),
                },
            }
        }

        // Reopen from disk: group fsync ran on every published run, so the
        // recovered log holds the identical record list.
        let before: Vec<LogRecord> = log.read_from(0).unwrap().0;
        drop(log);
        let reopened = DurableLog::open_persistent(
            SiteId::new(0), dir.clone(), 512, FsyncMode::Group, 1,
        ).unwrap();
        prop_assert_eq!(reopened.len(), total);
        let after: Vec<LogRecord> = reopened.read_from(0).unwrap().0;
        prop_assert_eq!(before, after);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
