//! Property-based test: recovery replay of a randomly generated, causally
//! valid multi-site history reconstructs exactly the state obtained by
//! applying the same history online.

use dynamast_common::ids::{Key, SiteId, TableId};
use dynamast_common::{Row, Value, VersionVector};
use dynamast_replication::record::{LogRecord, WriteEntry};
use dynamast_replication::recovery::replay_all;
use dynamast_replication::LogSet;
use dynamast_storage::{Catalog, Store, VersionStamp};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table("t", 1, 100);
    cat
}

/// One generated step: which site commits, which keys it writes, and how
/// many pending remote records each site applies afterwards.
#[derive(Debug, Clone)]
struct Step {
    site: usize,
    keys: Vec<u64>,
    value: u64,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (
            0usize..3,
            prop::collection::vec(0u64..40, 1..4),
            any::<u64>(),
        )
            .prop_map(|(site, mut keys, value)| {
                keys.sort_unstable();
                keys.dedup();
                Step { site, keys, value }
            }),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replay_reconstructs_online_state(history in steps()) {
        let m = 3;
        let logs = LogSet::new(m);
        // Online execution: a "reference" fully synchronized store. Each
        // commit's begin vector is the global svv (every dependency
        // visible), which is causally valid and maximally constraining for
        // the replayer.
        let reference = Store::new(catalog(), usize::MAX >> 1);
        let mut svv = VersionVector::zero(m);
        for step in &history {
            let origin = SiteId::new(step.site);
            let seq = svv.get(origin) + 1;
            let mut tvv = svv.clone();
            tvv.set(origin, seq);
            let writes: Vec<WriteEntry> = step
                .keys
                .iter()
                .map(|k| WriteEntry {
                    key: Key::new(TableId::new(0), *k),
                    row: Row::new(vec![Value::U64(step.value)]),
                })
                .collect();
            for w in &writes {
                reference
                    .install(w.key, VersionStamp::new(origin, seq), w.row.clone())
                    .unwrap();
            }
            logs.log(origin).append(&LogRecord::Commit {
                origin,
                tvv,
                writes,
            });
            svv.set(origin, seq);
        }

        // Recovery replay from the logs alone.
        let replayed = replay_all(&logs, catalog(), usize::MAX >> 1).unwrap();
        prop_assert_eq!(replayed.svv.clone(), svv.clone());
        for key in 0..40u64 {
            let k = Key::new(TableId::new(0), key);
            let expected = reference.read(k, &svv).unwrap();
            let got = replayed.store.read(k, &replayed.svv).unwrap();
            prop_assert_eq!(got, expected, "divergence at key {}", key);
        }
        // Version counts also agree (no duplicates, no losses).
        prop_assert_eq!(replayed.store.version_count(), reference.version_count());
    }
}
