//! Log record types.
//!
//! Every record originates at exactly one site and occupies one slot in that
//! site's commit order; applying a record at another site advances that
//! site's `svv[origin]` to the record's sequence number. Four kinds exist:
//!
//! * [`LogRecord::Commit`] — an update transaction's redo: its commit
//!   timestamp (`tvv`) and after-image writes. Applied remotely as a refresh
//!   transaction.
//! * [`LogRecord::Release`] / [`LogRecord::Grant`] — mastership transfer
//!   operations (§V-C logs these for recovery). They carry no data — they are
//!   the "metadata-only" operations of the dynamic mastering protocol — but
//!   they do occupy commit-order slots, which yields the version-vector
//!   increment the SI proof (Appendix A, Case 2) relies on and lets a
//!   recovering site selector reconstruct the mastership map in a
//!   well-defined order via per-partition epochs.
//! * [`LogRecord::Noop`] — a tombstone filled into a reserved slot whose
//!   committer died before completing; it keeps the origin's sequence space
//!   gap-free so nothing downstream wedges.

use bytes::{Buf, BufMut};
use dynamast_common::codec::{self, Decode, Encode};
use dynamast_common::ids::{Key, PartitionId, SiteId};
use dynamast_common::{DynaError, Result, Row, VersionVector};

/// One write in a commit record: key and after-image.
#[derive(Clone, Debug, PartialEq)]
pub struct WriteEntry {
    /// Record written.
    pub key: Key,
    /// After-image row.
    pub row: Row,
}

impl WriteEntry {
    /// Builds an entry, taking the after-image by value so callers hand rows
    /// over rather than cloning them into the record.
    pub fn new(key: Key, row: Row) -> Self {
        WriteEntry { key, row }
    }
}

impl Encode for WriteEntry {
    fn encode(&self, buf: &mut impl BufMut) {
        self.key.encode(buf);
        self.row.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.key.encoded_len() + self.row.encoded_len()
    }
}

impl Decode for WriteEntry {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        Ok(WriteEntry {
            key: Key::decode(buf)?,
            row: Row::decode(buf)?,
        })
    }
}

/// A record in a site's durable log.
#[derive(Clone, Debug, PartialEq)]
pub enum LogRecord {
    /// An update transaction's commit.
    Commit {
        /// Site the transaction committed at.
        origin: SiteId,
        /// Commit timestamp (`tvv`); `tvv[origin]` is this record's sequence
        /// in the origin's commit order.
        tvv: VersionVector,
        /// After-image writes.
        writes: Vec<WriteEntry>,
    },
    /// The origin released mastership of `partition`.
    Release {
        /// Releasing site.
        origin: SiteId,
        /// This operation's sequence in the origin's commit order.
        sequence: u64,
        /// Partition released.
        partition: PartitionId,
        /// Selector-assigned remastering epoch for the partition; strictly
        /// increasing per partition across the whole system.
        epoch: u64,
    },
    /// The origin was granted mastership of `partition`.
    Grant {
        /// Granted site.
        origin: SiteId,
        /// This operation's sequence in the origin's commit order.
        sequence: u64,
        /// Partition granted.
        partition: PartitionId,
        /// Selector-assigned remastering epoch (matches the paired release).
        epoch: u64,
    },
    /// A tombstone for an aborted log reservation: the sequence was drawn
    /// but its committer died before filling the slot
    /// ([`crate::log::DurableLog::abort`]). It occupies the slot's place in
    /// the origin's commit order — peers and recovery advance
    /// `svv[origin]` over it without installing anything — so an abandoned
    /// reservation cannot wedge the visibility watermark or the per-origin
    /// in-order refresh admission.
    Noop {
        /// Site whose commit order the dead reservation belonged to.
        origin: SiteId,
        /// The abandoned sequence number.
        sequence: u64,
    },
}

impl LogRecord {
    /// The site whose log this record belongs to.
    pub fn origin(&self) -> SiteId {
        match self {
            LogRecord::Commit { origin, .. }
            | LogRecord::Release { origin, .. }
            | LogRecord::Grant { origin, .. }
            | LogRecord::Noop { origin, .. } => *origin,
        }
    }

    /// The record's sequence number in its origin's commit order.
    pub fn sequence(&self) -> u64 {
        match self {
            LogRecord::Commit { origin, tvv, .. } => tvv.get(*origin),
            LogRecord::Release { sequence, .. }
            | LogRecord::Grant { sequence, .. }
            | LogRecord::Noop { sequence, .. } => *sequence,
        }
    }
}

const TAG_COMMIT: u8 = 1;
const TAG_RELEASE: u8 = 2;
const TAG_GRANT: u8 = 3;
const TAG_NOOP: u8 = 4;

impl Encode for LogRecord {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            LogRecord::Commit {
                origin,
                tvv,
                writes,
            } => {
                buf.put_u8(TAG_COMMIT);
                buf.put_u32(origin.raw());
                tvv.encode(buf);
                codec::encode_seq(writes, buf);
            }
            LogRecord::Release {
                origin,
                sequence,
                partition,
                epoch,
            } => {
                buf.put_u8(TAG_RELEASE);
                buf.put_u32(origin.raw());
                buf.put_u64(*sequence);
                buf.put_u64(partition.raw());
                buf.put_u64(*epoch);
            }
            LogRecord::Grant {
                origin,
                sequence,
                partition,
                epoch,
            } => {
                buf.put_u8(TAG_GRANT);
                buf.put_u32(origin.raw());
                buf.put_u64(*sequence);
                buf.put_u64(partition.raw());
                buf.put_u64(*epoch);
            }
            LogRecord::Noop { origin, sequence } => {
                buf.put_u8(TAG_NOOP);
                buf.put_u32(origin.raw());
                buf.put_u64(*sequence);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            LogRecord::Commit {
                origin: _,
                tvv,
                writes,
            } => 1 + 4 + tvv.encoded_len() + codec::seq_len(writes),
            LogRecord::Release { .. } | LogRecord::Grant { .. } => 1 + 4 + 8 + 8 + 8,
            LogRecord::Noop { .. } => 1 + 4 + 8,
        }
    }
}

impl Decode for LogRecord {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        match codec::get_u8(buf)? {
            TAG_COMMIT => {
                let origin = SiteId::new(codec::get_u32(buf)? as usize);
                let tvv = VersionVector::decode(buf)?;
                let writes = codec::decode_seq(buf)?;
                Ok(LogRecord::Commit {
                    origin,
                    tvv,
                    writes,
                })
            }
            tag @ (TAG_RELEASE | TAG_GRANT) => {
                let origin = SiteId::new(codec::get_u32(buf)? as usize);
                let sequence = codec::get_u64(buf)?;
                let partition = PartitionId::new(codec::get_u64(buf)? as usize);
                let epoch = codec::get_u64(buf)?;
                Ok(if tag == TAG_RELEASE {
                    LogRecord::Release {
                        origin,
                        sequence,
                        partition,
                        epoch,
                    }
                } else {
                    LogRecord::Grant {
                        origin,
                        sequence,
                        partition,
                        epoch,
                    }
                })
            }
            TAG_NOOP => Ok(LogRecord::Noop {
                origin: SiteId::new(codec::get_u32(buf)? as usize),
                sequence: codec::get_u64(buf)?,
            }),
            _ => Err(DynaError::Codec {
                what: "log record tag",
                needed: 0,
                remaining: buf.remaining(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_common::ids::TableId;
    use dynamast_common::Value;

    #[test]
    fn commit_record_roundtrips() {
        let rec = LogRecord::Commit {
            origin: SiteId::new(1),
            tvv: VersionVector::from_counts(vec![0, 5, 2]),
            writes: vec![WriteEntry {
                key: Key::new(TableId::new(0), 7),
                row: Row::new(vec![Value::U64(9), Value::Str("x".into())]),
            }],
        };
        let buf = codec::encode_to_vec(&rec);
        assert_eq!(buf.len(), rec.encoded_len());
        let mut slice = &buf[..];
        assert_eq!(LogRecord::decode(&mut slice).unwrap(), rec);
        assert_eq!(rec.sequence(), 5);
        assert_eq!(rec.origin(), SiteId::new(1));
    }

    #[test]
    fn release_and_grant_roundtrip() {
        for rec in [
            LogRecord::Release {
                origin: SiteId::new(0),
                sequence: 3,
                partition: PartitionId::new(12),
                epoch: 44,
            },
            LogRecord::Grant {
                origin: SiteId::new(2),
                sequence: 8,
                partition: PartitionId::new(12),
                epoch: 44,
            },
        ] {
            let buf = codec::encode_to_vec(&rec);
            let mut slice = &buf[..];
            assert_eq!(LogRecord::decode(&mut slice).unwrap(), rec);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn noop_roundtrips() {
        let rec = LogRecord::Noop {
            origin: SiteId::new(2),
            sequence: 17,
        };
        let buf = codec::encode_to_vec(&rec);
        assert_eq!(buf.len(), rec.encoded_len());
        let mut slice = &buf[..];
        assert_eq!(LogRecord::decode(&mut slice).unwrap(), rec);
        assert_eq!(rec.sequence(), 17);
        assert_eq!(rec.origin(), SiteId::new(2));
    }

    #[test]
    fn decode_rejects_bad_tag() {
        let mut bad: &[u8] = &[99];
        assert!(LogRecord::decode(&mut bad).is_err());
    }
}
