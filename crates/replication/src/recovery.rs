//! Redo-log recovery (paper §V-C).
//!
//! "Any data site recovers independently by initializing state from an
//! existing replica and replaying redo logs from the positions indicated by
//! the site version vector. [...] if any site manager or site selector fails,
//! on recovery it reconstructs the data item mastership state from the
//! sequence of release and grant operations in the redo logs."
//!
//! [`replay_all`] rebuilds a site's entire storage state from the union of
//! all logs (the degenerate but always-available form of "initialize from a
//! replica at offset zero"); [`replay_from`] resumes from a durable
//! [`crate::checkpoint::Checkpoint`]'s store image, svv cut, and per-origin
//! offsets, so only the retained segment suffix replays. Either way, the
//! returned svv and per-origin offsets let the caller resume propagation
//! exactly where replay stopped. [`rebuild_mastership`] recovers the
//! selector's partition→master map from grant/release records using their
//! per-partition epochs.
//!
//! These routines are honest about their inputs: replaying volatile logs
//! only survives in-process site crashes, while replaying persistently
//! opened logs (`LogSet::open_persistent`) is real §V-C recovery from a
//! dead process.

use std::collections::HashMap;

use dynamast_common::ids::{PartitionId, SiteId};
use dynamast_common::{DynaError, Result, VersionVector};
use dynamast_storage::{Catalog, Store, VersionStamp};

use crate::log::LogSet;
use crate::record::LogRecord;

/// Outcome of a full log replay.
pub struct ReplayedState {
    /// The rebuilt storage engine.
    pub store: Store,
    /// The site version vector after replay.
    pub svv: VersionVector,
    /// Per-origin log offsets consumed; resuming propagation from these
    /// offsets continues exactly where replay stopped.
    pub offsets: Vec<u64>,
}

/// Rebuilds storage state by replaying every log in dependency order.
///
/// The scheduler round-robins over origins, applying each origin's next
/// record when the update application rule admits it (commit records) or
/// when it is next in the origin's commit order (grant/release records,
/// which carry no data dependencies of their own). Errors if the logs are
/// mutually stuck, which indicates corruption.
pub fn replay_all(logs: &LogSet, catalog: Catalog, mvcc_versions: usize) -> Result<ReplayedState> {
    let m = logs.num_sites();
    replay_from(
        logs,
        Store::new(catalog, mvcc_versions),
        VersionVector::zero(m),
        vec![0u64; m],
    )
}

/// Like [`replay_all`], but resuming from a seeded state: a store already
/// holding a checkpoint's image, the checkpoint's svv cut, and the
/// per-origin offsets the cut corresponds to. Only records at or past those
/// offsets are consulted, so checkpointed recovery replays the retained
/// segment suffix instead of history from offset zero.
pub fn replay_from(
    logs: &LogSet,
    store: Store,
    svv: VersionVector,
    offsets: Vec<u64>,
) -> Result<ReplayedState> {
    replay_from_hosted(logs, store, svv, offsets, None)
}

/// Like [`replay_from`], but under partial replication: only writes to
/// partitions in `hosted` are installed. Every record still advances the
/// svv — a site that skips a foreign partition's writes has still *seen*
/// that commit for Eq. 1 admission purposes, exactly like the live refresh
/// subscription filter. `hosted = None` installs everything (full
/// replication).
pub fn replay_from_hosted(
    logs: &LogSet,
    store: Store,
    mut svv: VersionVector,
    mut offsets: Vec<u64>,
    hosted: Option<&std::collections::HashSet<PartitionId>>,
) -> Result<ReplayedState> {
    let m = logs.num_sites();
    assert_eq!(offsets.len(), m);
    loop {
        let mut progressed = false;
        let mut exhausted = 0;
        #[allow(clippy::needless_range_loop)] // origin_idx names both the site and its cursor slot
        for origin_idx in 0..m {
            let origin = SiteId::new(origin_idx);
            let Some(record) = logs.log(origin).get(offsets[origin_idx])? else {
                exhausted += 1;
                continue;
            };
            if !admissible(&svv, &record) {
                continue;
            }
            apply(&store, &mut svv, record, hosted)?;
            offsets[origin_idx] += 1;
            progressed = true;
        }
        if exhausted == m {
            return Ok(ReplayedState {
                store,
                svv,
                offsets,
            });
        }
        if !progressed {
            return Err(DynaError::Internal("log replay is stuck"));
        }
    }
}

fn admissible(svv: &VersionVector, record: &LogRecord) -> bool {
    match record {
        LogRecord::Commit { origin, tvv, .. } => svv.can_apply_refresh(tvv, *origin),
        LogRecord::Release {
            origin, sequence, ..
        }
        | LogRecord::Grant {
            origin, sequence, ..
        }
        | LogRecord::Noop {
            origin, sequence, ..
        } => svv.get(*origin) + 1 == *sequence,
    }
}

fn apply(
    store: &Store,
    svv: &mut VersionVector,
    record: LogRecord,
    hosted: Option<&std::collections::HashSet<PartitionId>>,
) -> Result<()> {
    match record {
        LogRecord::Commit {
            origin,
            tvv,
            writes,
        } => {
            let seq = tvv.get(origin);
            // The record is owned (decoded fresh from the log), so rows move
            // straight into the version chains without a copy.
            for w in writes {
                if let Some(hosted) = hosted {
                    if !hosted.contains(&store.catalog().partition_of(w.key)?) {
                        continue;
                    }
                }
                store.install(w.key, VersionStamp::new(origin, seq), w.row)?;
            }
            svv.set(origin, seq);
        }
        LogRecord::Release {
            origin, sequence, ..
        }
        | LogRecord::Grant {
            origin, sequence, ..
        }
        | LogRecord::Noop {
            origin, sequence, ..
        } => {
            // Metadata (or tombstone) records install nothing but still
            // occupy their slot in the origin's commit order.
            svv.set(origin, sequence);
        }
    }
    Ok(())
}

/// Reconstructs the partition→master map from grant/release records.
///
/// For each partition, the record with the highest remastering epoch wins:
/// a grant names the new master directly; a *release* with the highest epoch
/// means the system crashed mid-remaster (released but never granted), and
/// mastership safely reverts to the releasing site — no other site was ever
/// granted it. Partitions that were never remastered are absent; the caller
/// overlays the initial placement.
///
/// Scans each log's *retained* suffix (from its truncated base), so it keeps
/// working after checkpoint-gated segment truncation. Moves whose entire
/// grant/release history was truncated are invisible here; the caller must
/// overlay the sites' checkpoint-reconstructed ownership claims to recover
/// them (see `dynamast_core::recovery`).
pub fn rebuild_mastership(logs: &LogSet) -> Result<HashMap<PartitionId, SiteId>> {
    let mut best: HashMap<PartitionId, (u64, SiteId)> = HashMap::new();
    for origin_idx in 0..logs.num_sites() {
        let log = logs.log(SiteId::new(origin_idx));
        let (records, _) = log.read_from(log.base())?;
        for record in records {
            let (partition, epoch, master) = match record {
                LogRecord::Grant {
                    origin,
                    partition,
                    epoch,
                    ..
                } => (partition, epoch * 2 + 1, origin),
                LogRecord::Release {
                    origin,
                    partition,
                    epoch,
                    ..
                } => (partition, epoch * 2, origin),
                LogRecord::Commit { .. } | LogRecord::Noop { .. } => continue,
            };
            // Epochs are doubled so a grant outranks the release of the same
            // epoch (the pair shares an epoch; the grant is the later step).
            let entry = best.entry(partition).or_insert((0, master));
            if epoch >= entry.0 {
                *entry = (epoch, master);
            }
        }
    }
    Ok(best.into_iter().map(|(p, (_, site))| (p, site)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WriteEntry;
    use dynamast_common::ids::{Key, TableId};
    use dynamast_common::{Row, Value};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table("t", 1, 100);
        cat
    }

    fn key(r: u64) -> Key {
        Key::new(TableId::new(0), r)
    }

    fn row(v: u64) -> Row {
        Row::new(vec![Value::U64(v)])
    }

    fn commit(origin: usize, tvv: &[u64], writes: Vec<(u64, u64)>) -> LogRecord {
        LogRecord::Commit {
            origin: SiteId::new(origin),
            tvv: VersionVector::from_counts(tvv.to_vec()),
            writes: writes
                .into_iter()
                .map(|(k, v)| WriteEntry {
                    key: key(k),
                    row: row(v),
                })
                .collect(),
        }
    }

    #[test]
    fn replay_orders_dependent_records_across_logs() {
        let logs = LogSet::new(2);
        // S0 commits k=1 (tvv [1,0]); S1 observes it then commits k=2
        // (tvv [1,1], begin included S0's update).
        logs.log(SiteId::new(0))
            .append(&commit(0, &[1, 0], vec![(1, 10)]));
        logs.log(SiteId::new(1))
            .append(&commit(1, &[1, 1], vec![(2, 20)]));
        let state = replay_all(&logs, catalog(), 4).unwrap();
        assert_eq!(state.svv.as_slice(), &[1, 1]);
        assert_eq!(state.offsets, vec![1, 1]);
        let snap = state.svv.clone();
        assert_eq!(state.store.read(key(1), &snap).unwrap().unwrap(), row(10));
        assert_eq!(state.store.read(key(2), &snap).unwrap().unwrap(), row(20));
    }

    #[test]
    fn replay_handles_interleaved_multi_site_history() {
        let logs = LogSet::new(3);
        logs.log(SiteId::new(0))
            .append(&commit(0, &[1, 0, 0], vec![(1, 1)]));
        logs.log(SiteId::new(2))
            .append(&commit(2, &[1, 0, 1], vec![(3, 3)]));
        logs.log(SiteId::new(0))
            .append(&commit(0, &[2, 0, 1], vec![(1, 2)]));
        logs.log(SiteId::new(1))
            .append(&commit(1, &[2, 1, 1], vec![(2, 2)]));
        let state = replay_all(&logs, catalog(), 4).unwrap();
        assert_eq!(state.svv.as_slice(), &[2, 1, 1]);
        let snap = state.svv.clone();
        // k=1 must reflect the SECOND commit from S0.
        assert_eq!(state.store.read(key(1), &snap).unwrap().unwrap(), row(2));
    }

    #[test]
    fn replay_detects_stuck_logs() {
        let logs = LogSet::new(2);
        // Depends on svv[1] >= 5, which never arrives.
        logs.log(SiteId::new(0))
            .append(&commit(0, &[1, 5], vec![(1, 1)]));
        match replay_all(&logs, catalog(), 4) {
            Err(err) => assert_eq!(err, DynaError::Internal("log replay is stuck")),
            Ok(_) => panic!("replay should report stuck logs"),
        }
    }

    #[test]
    fn replay_counts_release_grant_in_svv() {
        let logs = LogSet::new(2);
        logs.log(SiteId::new(0)).append(&LogRecord::Release {
            origin: SiteId::new(0),
            sequence: 1,
            partition: PartitionId::new(5),
            epoch: 1,
        });
        logs.log(SiteId::new(1)).append(&LogRecord::Grant {
            origin: SiteId::new(1),
            sequence: 1,
            partition: PartitionId::new(5),
            epoch: 1,
        });
        let state = replay_all(&logs, catalog(), 4).unwrap();
        assert_eq!(state.svv.as_slice(), &[1, 1]);
    }

    /// Replay must advance svv over abort tombstones exactly like metadata
    /// records, or a crashed committer's Noop would wedge every later record
    /// from that origin.
    #[test]
    fn replay_advances_over_noop_tombstones() {
        let logs = LogSet::new(2);
        logs.log(SiteId::new(0))
            .append(&commit(0, &[1, 0], vec![(1, 10)]));
        logs.log(SiteId::new(0)).append(&LogRecord::Noop {
            origin: SiteId::new(0),
            sequence: 2,
        });
        logs.log(SiteId::new(0))
            .append(&commit(0, &[3, 0], vec![(1, 30)]));
        let state = replay_all(&logs, catalog(), 4).unwrap();
        assert_eq!(state.svv.as_slice(), &[3, 0]);
        let snap = state.svv.clone();
        assert_eq!(state.store.read(key(1), &snap).unwrap().unwrap(), row(30));
    }

    #[test]
    fn replay_from_resumes_past_checkpointed_prefix() {
        let logs = LogSet::new(2);
        logs.log(SiteId::new(0))
            .append(&commit(0, &[1, 0], vec![(1, 10)]));
        logs.log(SiteId::new(0))
            .append(&commit(0, &[2, 0], vec![(1, 20)]));
        // Seed state as if a checkpoint captured svv [1,0] with k1=10.
        let store = Store::new(catalog(), 4);
        store
            .install(key(1), VersionStamp::new(SiteId::new(0), 1), row(10))
            .unwrap();
        let state = replay_from(
            &logs,
            store,
            VersionVector::from_counts(vec![1, 0]),
            vec![1, 0],
        )
        .unwrap();
        assert_eq!(state.svv.as_slice(), &[2, 0]);
        assert_eq!(state.offsets, vec![2, 0]);
        let snap = state.svv.clone();
        assert_eq!(state.store.read(key(1), &snap).unwrap().unwrap(), row(20));
    }

    /// Hosted-filtered replay installs only hosted partitions' writes but
    /// still advances svv over foreign commits (otherwise replay would wedge
    /// on the first foreign record).
    #[test]
    fn replay_from_hosted_skips_foreign_partitions_but_advances_svv() {
        let logs = LogSet::new(2);
        // partition_size = 100: records 1..100 → partition 0, 150 → partition 1.
        logs.log(SiteId::new(0))
            .append(&commit(0, &[1, 0], vec![(1, 10), (150, 15)]));
        logs.log(SiteId::new(1))
            .append(&commit(1, &[1, 1], vec![(151, 20)]));
        let hosted: std::collections::HashSet<PartitionId> =
            [PartitionId::new(0)].into_iter().collect();
        let state = replay_from_hosted(
            &logs,
            Store::new(catalog(), 4),
            VersionVector::zero(2),
            vec![0, 0],
            Some(&hosted),
        )
        .unwrap();
        assert_eq!(state.svv.as_slice(), &[1, 1]);
        let snap = state.svv.clone();
        assert_eq!(state.store.read(key(1), &snap).unwrap().unwrap(), row(10));
        assert_eq!(state.store.read(key(150), &snap).unwrap(), None);
        assert_eq!(state.store.read(key(151), &snap).unwrap(), None);
    }

    #[test]
    fn mastership_rebuild_takes_highest_epoch_grant() {
        let logs = LogSet::new(3);
        let p = PartitionId::new(7);
        logs.log(SiteId::new(0)).append(&LogRecord::Release {
            origin: SiteId::new(0),
            sequence: 1,
            partition: p,
            epoch: 1,
        });
        logs.log(SiteId::new(1)).append(&LogRecord::Grant {
            origin: SiteId::new(1),
            sequence: 1,
            partition: p,
            epoch: 1,
        });
        logs.log(SiteId::new(1)).append(&LogRecord::Release {
            origin: SiteId::new(1),
            sequence: 2,
            partition: p,
            epoch: 2,
        });
        logs.log(SiteId::new(2)).append(&LogRecord::Grant {
            origin: SiteId::new(2),
            sequence: 1,
            partition: p,
            epoch: 2,
        });
        let map = rebuild_mastership(&logs).unwrap();
        assert_eq!(map[&p], SiteId::new(2));
    }

    #[test]
    fn mastership_rebuild_reverts_unfinished_remaster_to_releaser() {
        let logs = LogSet::new(2);
        let p = PartitionId::new(3);
        logs.log(SiteId::new(0)).append(&LogRecord::Grant {
            origin: SiteId::new(0),
            sequence: 1,
            partition: p,
            epoch: 1,
        });
        // Crash between release(epoch 2) and its grant.
        logs.log(SiteId::new(0)).append(&LogRecord::Release {
            origin: SiteId::new(0),
            sequence: 2,
            partition: p,
            epoch: 2,
        });
        let map = rebuild_mastership(&logs).unwrap();
        assert_eq!(map[&p], SiteId::new(0));
    }

    #[test]
    fn mastership_rebuild_ignores_commits_and_unknown_partitions() {
        let logs = LogSet::new(2);
        logs.log(SiteId::new(0))
            .append(&commit(0, &[1, 0], vec![(1, 1)]));
        let map = rebuild_mastership(&logs).unwrap();
        assert!(map.is_empty());
    }
}
