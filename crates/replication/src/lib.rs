//! Durable logs and lazy update propagation (paper §V-A2, §V-C).
//!
//! The paper uses Apache Kafka with one topic per data site: a site's
//! replication manager serializes every committed transaction's updates (and
//! every grant/release operation) into its own log, and every other site
//! subscribes, applying the updates as *refresh transactions* in the order
//! allowed by the update application rule (Eq. 1). The same log doubles as a
//! persistent redo log for recovery.
//!
//! This crate substitutes Kafka with [`DurableLog`]: an append-only,
//! offset-addressed record log with blocking reads — exactly the two
//! properties the paper relies on (per-origin FIFO ordered delivery and
//! replayable persistence). Opened persistently, a log is backed by a
//! directory of CRC-checksummed [`segment`] files with group fsync riding
//! the group-commit publish; opened volatile, it is purely in-memory (the
//! bench configuration).
//!
//! * [`record::LogRecord`] — commit / release / grant / noop records.
//! * [`log::DurableLog`], [`log::LogSet`] — the logs themselves.
//! * [`segment`] — the on-disk segment format (framing, CRC, torn-tail
//!   truncation, retention).
//! * [`checkpoint`] — durable site checkpoints (svv cut + store image +
//!   per-origin offsets) bounding replay to a segment suffix.
//! * [`propagate::Propagator`] — subscriber threads that pull records from
//!   peer logs and hand them to a site's refresh applier.
//! * [`recovery`] — replay recovery (full or from a checkpoint) and
//!   mastership-map reconstruction from grant/release records.

pub mod checkpoint;
pub mod log;
pub mod propagate;
pub mod record;
pub mod recovery;
pub mod segment;

pub use checkpoint::Checkpoint;
pub use log::{DurableLog, LogSet};
pub use propagate::{Propagator, RefreshApplier};
pub use record::LogRecord;
