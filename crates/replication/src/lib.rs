//! Durable logs and lazy update propagation (paper §V-A2, §V-C).
//!
//! The paper uses Apache Kafka with one topic per data site: a site's
//! replication manager serializes every committed transaction's updates (and
//! every grant/release operation) into its own log, and every other site
//! subscribes, applying the updates as *refresh transactions* in the order
//! allowed by the update application rule (Eq. 1). The same log doubles as a
//! persistent redo log for recovery.
//!
//! This crate substitutes Kafka with [`DurableLog`]: an append-only,
//! in-memory, offset-addressed record log with blocking reads — exactly the
//! two properties the paper relies on (per-origin FIFO ordered delivery and
//! replayable persistence).
//!
//! * [`record::LogRecord`] — commit / release / grant records.
//! * [`log::DurableLog`], [`log::LogSet`] — the logs themselves.
//! * [`propagate::Propagator`] — subscriber threads that pull records from
//!   peer logs and hand them to a site's refresh applier.
//! * [`recovery`] — full-replay recovery and mastership-map reconstruction
//!   from grant/release records.

pub mod log;
pub mod propagate;
pub mod record;
pub mod recovery;

pub use log::{DurableLog, LogSet};
pub use propagate::{Propagator, RefreshApplier};
pub use record::LogRecord;
