//! On-disk segmented storage for a [`crate::log::DurableLog`].
//!
//! A persistent log is a directory of fixed-size-ish segment files:
//!
//! ```text
//! <root>/site-<id>/seg-<base:016x>.seg
//!
//! segment  := header frame*
//! header   := magic:u32 ("DSEG") version:u32 base_offset:u64     (16 bytes)
//! frame    := len:u32 crc:u32 payload[len]
//! ```
//!
//! `base_offset` is the absolute log offset of the segment's first frame;
//! frames are encoded [`crate::record::LogRecord`]s, appended strictly in
//! offset order (the in-memory log only writes records once they are part
//! of the contiguous visible prefix). `crc` is CRC-32 (IEEE) over the
//! payload.
//!
//! **Torn-tail rule.** On open, every segment is scanned frame by frame. A
//! short or CRC-corrupt frame is legal only at the very tail of the *last*
//! segment — the one writes were in flight to when the process died — and is
//! discarded by truncating the file at the last whole frame. The same
//! corruption anywhere else is a hard error: it means bytes the log
//! previously claimed durable are gone. A last segment too short to hold its
//! header (a crash during rotation) is deleted the same way.
//!
//! Whole segments are deleted from the front by
//! [`SegmentLog::truncate_segments_below`] once every consumer floor has
//! passed them (see the retention logic in `log.rs`).

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use dynamast_common::config::FsyncMode;
use dynamast_common::{DynaError, Result};

const MAGIC: u32 = 0x4447_5345; // "DSEG" little-endian-ish tag
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
const FRAME_HEADER_LEN: usize = 8;

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over `bytes`.
///
/// Hand-rolled table-based implementation: the workspace is offline and the
/// shim crates carry no checksum dependency.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

fn io_err(what: &'static str, err: &std::io::Error) -> DynaError {
    // The io::Error detail cannot ride DynaError's static payload; surface
    // it on stderr so a failed crash-sim run is still diagnosable.
    eprintln!("[segment] {what}: {err}");
    DynaError::Internal(what)
}

fn segment_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("seg-{base:016x}.seg"))
}

fn parse_segment_base(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    u64::from_str_radix(hex, 16).ok()
}

/// The disk side of a persistent [`crate::log::DurableLog`]: an append
/// cursor over the newest segment plus rotation and front-truncation.
pub struct SegmentLog {
    dir: PathBuf,
    fsync: FsyncMode,
    segment_bytes: u64,
    /// Open handle on the segment being appended to.
    current: File,
    /// Absolute offset of the current segment's first frame.
    current_base: u64,
    /// Records written into the current segment so far.
    current_count: u64,
    /// Frame bytes written into the current segment (header excluded).
    current_len: u64,
    /// Next absolute log offset the writer expects.
    next_offset: u64,
    /// Base offset of the oldest retained segment.
    oldest_base: u64,
    /// Deterministic crash injection: abort the process mid-frame once this
    /// many frames have been written (env `DYNAMAST_TORN_WRITE_AT`).
    torn_write_at: Option<u64>,
    frames_written: u64,
}

/// A persistent log's recovered disk state.
pub struct RecoveredSegments {
    /// The writer, positioned after the last whole frame.
    pub disk: SegmentLog,
    /// Absolute offset of the first retained record.
    pub base: u64,
    /// Every retained record, in offset order starting at `base`.
    pub records: Vec<Bytes>,
}

impl SegmentLog {
    /// Opens (or initializes) the segment directory for one site's log,
    /// applying the torn-tail rule, and returns the retained records.
    pub fn open(dir: PathBuf, segment_bytes: u64, fsync: FsyncMode) -> Result<RecoveredSegments> {
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create segment dir", &e))?;
        let mut bases: Vec<u64> = std::fs::read_dir(&dir)
            .map_err(|e| io_err("list segment dir", &e))?
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| parse_segment_base(&entry.path()))
            .collect();
        bases.sort_unstable();

        let torn_write_at = std::env::var("DYNAMAST_TORN_WRITE_AT")
            .ok()
            .and_then(|raw| raw.parse().ok());

        if bases.is_empty() {
            // Fresh log: create the first segment at offset zero.
            let disk = Self::create_segment(dir, 0, segment_bytes, fsync, torn_write_at, 0)?;
            return Ok(RecoveredSegments {
                disk,
                base: 0,
                records: Vec::new(),
            });
        }

        let base = bases[0];
        let mut records: Vec<Bytes> = Vec::new();
        let mut expected_base = base;
        let last_index = bases.len() - 1;
        let mut tail: Option<(u64, u64, u64)> = None; // (base, count, frame bytes)
        for (i, &seg_base) in bases.iter().enumerate() {
            let is_last = i == last_index;
            let path = segment_path(&dir, seg_base);
            if seg_base != expected_base {
                return Err(DynaError::Internal("segment sequence has a hole"));
            }
            match Self::scan_segment(&path, seg_base, is_last)? {
                ScanOutcome::Whole { frames, len } => {
                    expected_base += frames.len() as u64;
                    let count = frames.len() as u64;
                    records.extend(frames);
                    if is_last {
                        tail = Some((seg_base, count, len));
                    }
                }
                ScanOutcome::Unusable => {
                    // Only reachable for the last segment (a crash during
                    // rotation left a headerless file): drop it and append
                    // into a recreated successor below.
                    std::fs::remove_file(&path).map_err(|e| io_err("drop torn segment", &e))?;
                }
            }
        }
        let next_offset = base + records.len() as u64;
        let disk = match tail {
            Some((seg_base, count, len)) => {
                let mut current = OpenOptions::new()
                    .append(true)
                    .open(segment_path(&dir, seg_base))
                    .map_err(|e| io_err("reopen tail segment", &e))?;
                current
                    .seek(SeekFrom::End(0))
                    .map_err(|e| io_err("seek tail segment", &e))?;
                SegmentLog {
                    dir,
                    fsync,
                    segment_bytes,
                    current,
                    current_base: seg_base,
                    current_count: count,
                    current_len: len,
                    next_offset,
                    oldest_base: base,
                    torn_write_at,
                    frames_written: 0,
                }
            }
            None => {
                Self::create_segment(dir, next_offset, segment_bytes, fsync, torn_write_at, base)?
            }
        };
        Ok(RecoveredSegments {
            disk,
            base,
            records,
        })
    }

    fn create_segment(
        dir: PathBuf,
        base_offset: u64,
        segment_bytes: u64,
        fsync: FsyncMode,
        torn_write_at: Option<u64>,
        oldest_base: u64,
    ) -> Result<SegmentLog> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&dir, base_offset))
            .map_err(|e| io_err("create segment", &e))?;
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC.to_le_bytes());
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&base_offset.to_le_bytes());
        file.write_all(&header)
            .map_err(|e| io_err("write segment header", &e))?;
        Ok(SegmentLog {
            dir,
            fsync,
            segment_bytes,
            current: file,
            current_base: base_offset,
            current_count: 0,
            current_len: 0,
            next_offset: base_offset,
            oldest_base,
            torn_write_at,
            frames_written: 0,
        })
    }

    fn scan_segment(path: &Path, expected_base: u64, is_last: bool) -> Result<ScanOutcome> {
        let mut file = File::open(path).map_err(|e| io_err("open segment", &e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| io_err("read segment", &e))?;
        if bytes.len() < HEADER_LEN as usize {
            return if is_last {
                Ok(ScanOutcome::Unusable)
            } else {
                Err(DynaError::Internal("non-tail segment missing header"))
            };
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("sliced"));
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sliced"));
        let base = u64::from_le_bytes(bytes[8..16].try_into().expect("sliced"));
        if magic != MAGIC || version != VERSION || base != expected_base {
            return if is_last {
                Ok(ScanOutcome::Unusable)
            } else {
                Err(DynaError::Internal("segment header corrupt"))
            };
        }
        let mut frames = Vec::new();
        let mut pos = HEADER_LEN as usize;
        let mut good_end = pos;
        loop {
            if pos + FRAME_HEADER_LEN > bytes.len() {
                break; // short frame header: torn tail candidate
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("sliced")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("sliced"));
            let payload_start = pos + FRAME_HEADER_LEN;
            if payload_start + len > bytes.len() {
                break; // short payload: torn tail candidate
            }
            let payload = &bytes[payload_start..payload_start + len];
            if crc32(payload) != crc {
                break; // corrupt frame: torn tail candidate
            }
            frames.push(Bytes::copy_from_slice(payload));
            pos = payload_start + len;
            good_end = pos;
        }
        if good_end != bytes.len() {
            if !is_last {
                return Err(DynaError::Internal("corrupt frame inside retained segment"));
            }
            // Torn tail: discard everything past the last whole frame.
            drop(file);
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err("reopen segment for truncate", &e))?;
            f.set_len(good_end as u64)
                .map_err(|e| io_err("truncate torn tail", &e))?;
            f.sync_all()
                .map_err(|e| io_err("sync truncated segment", &e))?;
        }
        let len = (good_end as u64) - HEADER_LEN;
        Ok(ScanOutcome::Whole { frames, len })
    }

    /// Absolute offset of the next frame the writer will append.
    pub fn next_offset(&self) -> u64 {
        self.next_offset
    }

    /// Appends one record's frame at `offset` (must be `next_offset`;
    /// callers write strictly in publication order). Rotates first when the
    /// current segment is full. Does not sync — see [`SegmentLog::sync`].
    pub fn append(&mut self, offset: u64, payload: &[u8]) -> Result<()> {
        assert_eq!(
            offset, self.next_offset,
            "segment frames must append in offset order"
        );
        if self.current_len >= self.segment_bytes {
            self.rotate()?;
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if let Some(at) = self.torn_write_at {
            if self.frames_written == at {
                // Deterministic mid-fill death: half a frame reaches the
                // file, then the process dies without unwinding — exactly
                // what a power cut or SIGKILL mid-`write` leaves behind.
                let torn = &frame[..FRAME_HEADER_LEN + payload.len() / 2];
                let _ = self.current.write_all(torn);
                let _ = self.current.sync_all();
                std::process::abort();
            }
        }
        self.current
            .write_all(&frame)
            .map_err(|e| io_err("append frame", &e))?;
        self.frames_written += 1;
        self.current_len += frame.len() as u64;
        self.current_count += 1;
        self.next_offset += 1;
        Ok(())
    }

    /// Rotates to a fresh segment. The outgoing segment is synced first
    /// (unless fsync is off) so a whole-segment file is never torn.
    fn rotate(&mut self) -> Result<()> {
        if self.fsync != FsyncMode::Off {
            self.current
                .sync_all()
                .map_err(|e| io_err("sync rotated segment", &e))?;
        }
        let next = Self::create_segment(
            self.dir.clone(),
            self.next_offset,
            self.segment_bytes,
            self.fsync,
            self.torn_write_at,
            self.oldest_base,
        )?;
        let frames_written = self.frames_written;
        *self = next;
        self.frames_written = frames_written;
        Ok(())
    }

    /// Syncs the current segment per the configured fsync mode (no-op for
    /// [`FsyncMode::Off`]).
    pub fn sync(&mut self) -> Result<()> {
        if self.fsync == FsyncMode::Off {
            return Ok(());
        }
        self.current
            .sync_all()
            .map_err(|e| io_err("fsync segment", &e))
    }

    /// Forces a sync regardless of mode (checkpoint writes must not claim
    /// offsets the disk does not hold, even under `FsyncMode::Off`).
    pub fn sync_for_checkpoint(&mut self) -> Result<()> {
        self.current
            .sync_all()
            .map_err(|e| io_err("fsync segment for checkpoint", &e))
    }

    /// Deletes whole segments entirely below `floor` (exclusive) and
    /// returns the new oldest retained base. The active segment is never
    /// deleted.
    pub fn truncate_segments_below(&mut self, floor: u64) -> Result<u64> {
        if self.oldest_base >= floor {
            return Ok(self.oldest_base);
        }
        let mut bases: Vec<u64> = std::fs::read_dir(&self.dir)
            .map_err(|e| io_err("list segment dir", &e))?
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| parse_segment_base(&entry.path()))
            .collect();
        bases.sort_unstable();
        // A segment covers [base, next segment's base); deletable when that
        // whole range is below the floor and it is not the active segment.
        for pair in bases.windows(2) {
            let (seg, next) = (pair[0], pair[1]);
            if next <= floor && seg != self.current_base {
                std::fs::remove_file(segment_path(&self.dir, seg))
                    .map_err(|e| io_err("delete truncated segment", &e))?;
                self.oldest_base = next;
            } else {
                break;
            }
        }
        Ok(self.oldest_base)
    }
}

enum ScanOutcome {
    Whole { frames: Vec<Bytes>, len: u64 },
    Unusable,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dynamast-seg-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_roundtrips_across_rotation() {
        let dir = tmp_dir("roundtrip");
        {
            let mut rec = SegmentLog::open(dir.clone(), 64, FsyncMode::Group).unwrap();
            assert_eq!(rec.base, 0);
            for i in 0..20u64 {
                rec.disk.append(i, &i.to_le_bytes()).unwrap();
            }
            rec.disk.sync().unwrap();
        }
        let rec = SegmentLog::open(dir.clone(), 64, FsyncMode::Group).unwrap();
        assert_eq!(rec.base, 0);
        assert_eq!(rec.records.len(), 20);
        for (i, frame) in rec.records.iter().enumerate() {
            assert_eq!(frame.as_ref(), (i as u64).to_le_bytes());
        }
        // Rotation actually happened (several segment files exist).
        let segs = std::fs::read_dir(&dir).unwrap().count();
        assert!(segs > 1, "expected rotation, found {segs} file(s)");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        {
            let mut rec = SegmentLog::open(dir.clone(), 1 << 20, FsyncMode::Group).unwrap();
            for i in 0..5u64 {
                rec.disk.append(i, &i.to_le_bytes()).unwrap();
            }
            rec.disk.sync().unwrap();
        }
        // Tear the tail: append half a frame by hand.
        let seg = segment_path(&dir, 0);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[9u8, 0, 0, 0, 0xAA, 0xBB]).unwrap(); // len=9, partial crc
        drop(f);
        let rec = SegmentLog::open(dir.clone(), 1 << 20, FsyncMode::Group).unwrap();
        assert_eq!(rec.records.len(), 5, "torn frame discarded");
        // The truncation is physical: a re-open sees a clean tail too.
        let rec2 = SegmentLog::open(dir.clone(), 1 << 20, FsyncMode::Group).unwrap();
        assert_eq!(rec2.records.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_frame_in_non_tail_segment_is_a_hard_error() {
        let dir = tmp_dir("midcorrupt");
        {
            let mut rec = SegmentLog::open(dir.clone(), 32, FsyncMode::Group).unwrap();
            for i in 0..12u64 {
                rec.disk.append(i, &i.to_le_bytes()).unwrap();
            }
            rec.disk.sync().unwrap();
        }
        // Flip a payload byte inside the FIRST segment (not the tail).
        let seg = segment_path(&dir, 0);
        let mut bytes = std::fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&seg, bytes).unwrap();
        match SegmentLog::open(dir.clone(), 32, FsyncMode::Group) {
            Err(err) => assert_eq!(
                err,
                DynaError::Internal("corrupt frame inside retained segment")
            ),
            Ok(_) => panic!("mid-log corruption must be a hard error"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_segments_below_keeps_covering_segment() {
        let dir = tmp_dir("truncate");
        let mut rec = SegmentLog::open(dir.clone(), 32, FsyncMode::Off).unwrap();
        for i in 0..30u64 {
            rec.disk.append(i, &i.to_le_bytes()).unwrap();
        }
        let new_base = rec.disk.truncate_segments_below(17).unwrap();
        assert!(new_base <= 17, "floor record must stay retained");
        assert!(new_base > 0, "something must have been deleted");
        // Reopen: retained records must start exactly at the new base.
        drop(rec);
        let reopened = SegmentLog::open(dir.clone(), 32, FsyncMode::Off).unwrap();
        assert_eq!(reopened.base, new_base);
        assert_eq!(
            reopened.records.len() as u64,
            30 - new_base,
            "suffix retained"
        );
        assert_eq!(
            reopened.records[0].as_ref(),
            new_base.to_le_bytes(),
            "first retained record is the one at the new base"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
