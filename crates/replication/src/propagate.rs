//! Update propagation: per-origin subscriber threads.
//!
//! Each replication manager "subscribes to updates from logs at other sites"
//! (§V-A2). [`Propagator::start`] spawns one subscriber thread per remote
//! origin; each thread tails that origin's log, charges the simulated network
//! for the batch transit, and hands each drained batch whole to the site's
//! [`RefreshApplier`] *in origin order*. Cross-origin ordering is the
//! applier's job (the update application rule blocks records whose
//! dependencies have not yet applied — and because each origin has its own
//! thread, blocking one origin never stalls another, mirroring Kafka's
//! independent topic consumption).
//!
//! Tailing is event-driven: subscribers park inside
//! [`crate::log::DurableLog::wait_read_from`] until an append signals the
//! log's condvar, then drain everything present as one batch. There is no
//! polling interval — an idle origin costs zero wakeups, and delivery
//! latency is condvar wake latency rather than half a poll period.
//! [`Propagator::stop`] sets the shutdown flag and calls
//! `notify_waiters` on every tailed log so parked subscribers return
//! promptly even if nothing is ever appended again.
//!
//! When a [`Network`] fabric with an attached
//! [`dynamast_network::FaultPlan`] is supplied, each batch transit consults
//! the plan on the `origin site → subscriber site` link: a directed
//! partition stalls delivery (the subscriber holds its cursor and re-fetches
//! once healed — the log is durable, so nothing is lost), and delay spikes
//! lengthen the batch transit. Drops and duplication are meaningless for a
//! cursor-tailed durable log (a "lost" fetch is just refetched at the same
//! cursor; a duplicated fetch applies nothing new), so those decisions are
//! consumed but ignored.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dynamast_common::config::NetworkConfig;
use dynamast_common::ids::SiteId;
use dynamast_common::trace::{TraceKind, TracePayload, TraceSite};
use dynamast_common::Result;
use dynamast_network::{EndpointId, Network, TrafficCategory, TrafficStats};

use crate::log::{DurableLog, LogSet};
use crate::record::LogRecord;

/// Applies refresh transactions at a site.
///
/// Implementations must block until the update application rule (Eq. 1)
/// admits the record, then install it and advance the site version vector.
/// Returning an error stops the subscriber thread (used for shutdown).
pub trait RefreshApplier: Send + Sync + 'static {
    /// Applies one record originated at another site.
    fn apply(&self, record: LogRecord) -> Result<()>;

    /// Applies a whole drained batch from one origin's log, in order.
    ///
    /// The default delegates to [`RefreshApplier::apply`] per record; sites
    /// override this to amortize admission checks and watermark publication
    /// across the batch (install out of order, publish once per contiguous
    /// admissible run). Records arrive in origin log order and ownership
    /// transfers to the applier, so rows are moved — never cloned — into
    /// storage.
    fn apply_batch(&self, records: Vec<LogRecord>) -> Result<()> {
        for record in records {
            self.apply(record)?;
        }
        Ok(())
    }
}

/// Running subscriber threads for one site.
pub struct Propagator {
    shutdown: Arc<AtomicBool>,
    /// The logs being tailed, kept to wake parked subscribers on stop.
    tailed: Vec<Arc<DurableLog>>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl Propagator {
    /// Starts one subscriber per remote origin, applying records via
    /// `applier`. `start_offsets[origin]` is the log offset to resume from
    /// (zero for a fresh site; the svv-indicated positions after recovery).
    /// `fabric`, when given, subjects batch transits to the network's
    /// attached fault plan (partitions stall, spikes delay).
    pub fn start(
        site: SiteId,
        logs: &LogSet,
        applier: Arc<dyn RefreshApplier>,
        network: NetworkConfig,
        fabric: Option<Arc<Network>>,
        stats: Option<Arc<TrafficStats>>,
        start_offsets: Vec<u64>,
    ) -> Self {
        assert_eq!(start_offsets.len(), logs.num_sites());
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut tailed = Vec::new();
        let mut threads = Vec::new();
        #[allow(clippy::needless_range_loop)] // origin_idx names both the site and its offset slot
        for origin_idx in 0..logs.num_sites() {
            let origin = SiteId::new(origin_idx);
            if origin == site {
                continue;
            }
            let log = Arc::clone(logs.log(origin));
            tailed.push(Arc::clone(&log));
            let applier = Arc::clone(&applier);
            let stats = stats.clone();
            let recorder = fabric.as_ref().and_then(|n| n.recorder());
            let fabric = fabric.clone();
            let shutdown = Arc::clone(&shutdown);
            let mut cursor = start_offsets[origin_idx];
            threads.push(
                thread::Builder::new()
                    .name(format!("repl-{site}-from-{origin}"))
                    .spawn(move || {
                        while !shutdown.load(Ordering::Relaxed) {
                            // Parks until an append lands or stop() cancels.
                            let (records, bytes) = match log.wait_read_from(cursor, &shutdown) {
                                Ok(batch) => batch,
                                Err(_) => break,
                            };
                            if records.is_empty() {
                                // Only cancellation returns an empty batch.
                                continue;
                            }
                            // Refresh lag measured from batch fetch: transit
                            // delay plus the applier's admission wait (Eq. 1
                            // dependency blocking) — the components the
                            // paper's f_delay feature estimates. Captured
                            // BEFORE the transit sleep is served, or the
                            // delay would be excluded from the lag it is
                            // supposed to dominate.
                            let fetched = std::time::Instant::now();
                            // One transit delay per fetched batch (Kafka
                            // consumers batch; charging per record would
                            // impose an unrealistic serial 1/RTT cap).
                            let mut delay = network.delay_for(bytes);
                            if let Some(plan) = fabric.as_ref().and_then(|n| n.faults()) {
                                let link = (
                                    Some(EndpointId::Site(origin.raw())),
                                    Some(EndpointId::Site(site.raw())),
                                );
                                // A partition stalls the stream: hold the
                                // batch until the link heals or we shut
                                // down (the durable log loses nothing).
                                while plan.is_partitioned(link.0, link.1) {
                                    if shutdown.load(Ordering::Relaxed) {
                                        return;
                                    }
                                    thread::sleep(Duration::from_millis(1));
                                }
                                delay += plan.decide(link.0, link.1).extra_delay;
                            }
                            if !delay.is_zero() {
                                thread::sleep(delay);
                            }
                            if let Some(stats) = &stats {
                                stats.record(TrafficCategory::Replication, bytes);
                            }
                            cursor += records.len() as u64;
                            let batch = records.len() as u32;
                            // The batch tail's stamp identifies the run after
                            // the applier consumes the records.
                            let last = records.last().expect("non-empty batch");
                            let stamp = (last.origin().raw(), last.sequence());
                            if applier.apply_batch(records).is_err() {
                                return;
                            }
                            if let Some(rec) = &recorder {
                                rec.record(
                                    0,
                                    TraceSite::Site(site.raw()),
                                    TraceKind::RefreshApply,
                                    TracePayload::Refresh {
                                        origin: stamp.0,
                                        sequence: stamp.1,
                                        records: batch,
                                        lag_us: fetched.elapsed().as_micros() as u64,
                                    },
                                );
                            }
                        }
                    })
                    .expect("spawn propagator"),
            );
        }
        Propagator {
            shutdown,
            tailed,
            threads,
        }
    }

    /// Signals shutdown, wakes every parked subscriber, and joins them.
    ///
    /// The applier must unblock any waiting `apply` calls (returning an
    /// error) when its owning site shuts down, or this will hang.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Subscribers may be parked in wait_read_from on an idle log; wake
        // them so they observe the flag (notify_waiters takes the log lock,
        // so the store above cannot race past a waiter's re-check).
        for log in &self.tailed {
            log.notify_waiters();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Propagator {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_common::{DynaError, VersionVector};
    use parking_lot::Mutex;
    use std::time::{Duration, Instant};

    struct Collector {
        seen: Mutex<Vec<LogRecord>>,
        fail_after: Option<usize>,
    }

    impl RefreshApplier for Collector {
        fn apply(&self, record: LogRecord) -> Result<()> {
            let mut seen = self.seen.lock();
            if let Some(n) = self.fail_after {
                if seen.len() >= n {
                    return Err(DynaError::ShuttingDown);
                }
            }
            seen.push(record);
            Ok(())
        }
    }

    fn commit(origin: usize, seq: u64, dims: usize) -> LogRecord {
        let mut tvv = VersionVector::zero(dims);
        tvv.set(SiteId::new(origin), seq);
        LogRecord::Commit {
            origin: SiteId::new(origin),
            tvv,
            writes: vec![],
        }
    }

    fn wait_for<F: Fn() -> bool>(cond: F) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            thread::sleep(Duration::from_millis(5));
        }
        panic!("condition not reached in time");
    }

    #[test]
    fn subscribers_deliver_remote_records_in_order() {
        let logs = LogSet::new(3);
        let collector = Arc::new(Collector {
            seen: Mutex::new(Vec::new()),
            fail_after: None,
        });
        let prop = Propagator::start(
            SiteId::new(0),
            &logs,
            Arc::clone(&collector) as Arc<dyn RefreshApplier>,
            NetworkConfig::instant(),
            None,
            None,
            vec![0; 3],
        );
        for seq in 1..=3 {
            logs.log(SiteId::new(1)).append(&commit(1, seq, 3));
        }
        // Own-log records must NOT be delivered to self.
        logs.log(SiteId::new(0)).append(&commit(0, 1, 3));
        wait_for(|| collector.seen.lock().len() == 3);
        let seqs: Vec<u64> = collector.seen.lock().iter().map(|r| r.sequence()).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert!(collector
            .seen
            .lock()
            .iter()
            .all(|r| r.origin() == SiteId::new(1)));
        prop.stop();
    }

    #[test]
    fn start_offsets_skip_already_applied_records() {
        let logs = LogSet::new(2);
        for seq in 1..=4 {
            logs.log(SiteId::new(1)).append(&commit(1, seq, 2));
        }
        let collector = Arc::new(Collector {
            seen: Mutex::new(Vec::new()),
            fail_after: None,
        });
        let prop = Propagator::start(
            SiteId::new(0),
            &logs,
            Arc::clone(&collector) as Arc<dyn RefreshApplier>,
            NetworkConfig::instant(),
            None,
            None,
            vec![0, 2],
        );
        wait_for(|| collector.seen.lock().len() == 2);
        assert_eq!(collector.seen.lock()[0].sequence(), 3);
        prop.stop();
    }

    #[test]
    fn applier_error_stops_subscriber() {
        let logs = LogSet::new(2);
        let collector = Arc::new(Collector {
            seen: Mutex::new(Vec::new()),
            fail_after: Some(1),
        });
        let prop = Propagator::start(
            SiteId::new(0),
            &logs,
            Arc::clone(&collector) as Arc<dyn RefreshApplier>,
            NetworkConfig::instant(),
            None,
            None,
            vec![0, 0],
        );
        for seq in 1..=3 {
            logs.log(SiteId::new(1)).append(&commit(1, seq, 2));
        }
        wait_for(|| collector.seen.lock().len() == 1);
        // Stop should join promptly even though records remain unapplied.
        prop.stop();
        assert_eq!(collector.seen.lock().len(), 1);
    }

    /// Regression test for the shutdown race: subscribers now park
    /// indefinitely on idle logs, so `stop()` must wake them explicitly.
    /// Before the wake-on-stop, this would hang until a record arrived.
    #[test]
    fn stop_returns_promptly_with_idle_logs() {
        let logs = LogSet::new(4);
        let collector = Arc::new(Collector {
            seen: Mutex::new(Vec::new()),
            fail_after: None,
        });
        let prop = Propagator::start(
            SiteId::new(0),
            &logs,
            collector as Arc<dyn RefreshApplier>,
            NetworkConfig::instant(),
            None,
            None,
            vec![0; 4],
        );
        // Let the three subscriber threads park on their empty logs.
        thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        prop.stop();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "stop() blocked for {:?} on idle logs",
            t0.elapsed()
        );
    }

    #[test]
    fn traffic_stats_account_replication_bytes() {
        let logs = LogSet::new(2);
        let stats = Arc::new(TrafficStats::new());
        let collector = Arc::new(Collector {
            seen: Mutex::new(Vec::new()),
            fail_after: None,
        });
        let prop = Propagator::start(
            SiteId::new(0),
            &logs,
            Arc::clone(&collector) as Arc<dyn RefreshApplier>,
            NetworkConfig::instant(),
            None,
            Some(Arc::clone(&stats)),
            vec![0, 0],
        );
        logs.log(SiteId::new(1)).append(&commit(1, 1, 2));
        wait_for(|| collector.seen.lock().len() == 1);
        let snap = stats.snapshot();
        assert!(snap.get(TrafficCategory::Replication).bytes > 0);
        prop.stop();
    }

    /// Regression: `lag_us` used to be measured from an `Instant` captured
    /// *after* the transit-delay sleep, so the reported refresh lag excluded
    /// the very transit delay it documents. With a 25ms one-way delay the
    /// traced lag must be at least that delay.
    #[test]
    fn refresh_lag_includes_transit_delay() {
        let logs = LogSet::new(2);
        let delay = Duration::from_millis(25);
        let slow = NetworkConfig {
            one_way_delay: delay,
            ..NetworkConfig::instant()
        };
        let fabric = Network::new(NetworkConfig::instant(), 7);
        let recorder = dynamast_common::FlightRecorder::new(64);
        fabric.set_recorder(Some(Arc::clone(&recorder)));
        let collector = Arc::new(Collector {
            seen: Mutex::new(Vec::new()),
            fail_after: None,
        });
        let prop = Propagator::start(
            SiteId::new(0),
            &logs,
            Arc::clone(&collector) as Arc<dyn RefreshApplier>,
            slow,
            Some(Arc::clone(&fabric)),
            None,
            vec![0, 0],
        );
        logs.log(SiteId::new(1)).append(&commit(1, 1, 2));
        wait_for(|| collector.seen.lock().len() == 1);
        prop.stop();
        let lags: Vec<u64> = recorder
            .snapshot()
            .iter()
            .filter_map(|ev| match ev.payload {
                TracePayload::Refresh { lag_us, .. } => Some(lag_us),
                _ => None,
            })
            .collect();
        assert!(!lags.is_empty(), "refresh trace event must be recorded");
        assert!(
            lags.iter().all(|&lag| lag >= delay.as_micros() as u64),
            "traced refresh lag {lags:?}us must include the {delay:?} transit delay"
        );
    }

    #[test]
    fn partition_stalls_stream_until_healed() {
        let logs = LogSet::new(2);
        let network = Network::new(NetworkConfig::instant(), 11);
        let plan = Arc::new(dynamast_network::FaultPlan::new(11));
        network.set_faults(Some(Arc::clone(&plan)));
        plan.partition(EndpointId::Site(1), EndpointId::Site(0));
        let collector = Arc::new(Collector {
            seen: Mutex::new(Vec::new()),
            fail_after: None,
        });
        let prop = Propagator::start(
            SiteId::new(0),
            &logs,
            Arc::clone(&collector) as Arc<dyn RefreshApplier>,
            NetworkConfig::instant(),
            Some(Arc::clone(&network)),
            None,
            vec![0, 0],
        );
        logs.log(SiteId::new(1)).append(&commit(1, 1, 2));
        thread::sleep(Duration::from_millis(60));
        assert!(
            collector.seen.lock().is_empty(),
            "partitioned stream must not deliver"
        );
        plan.heal_all();
        wait_for(|| collector.seen.lock().len() == 1);
        prop.stop();
    }
}
