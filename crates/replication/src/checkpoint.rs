//! Durable site checkpoints (§V-C, extended to a real disk).
//!
//! A checkpoint is one site's consistent cut: the svv at the cut, a store
//! image of every record version visible at that cut, the per-origin log
//! offsets the cut corresponds to (identical to the svv by the slot =
//! sequence invariant), and the set of partitions the site mastered. On
//! restart the site loads the newest valid checkpoint and replays only the
//! retained segment suffix past its offsets
//! ([`crate::recovery::replay_from`]) instead of history from offset zero —
//! and once every site's checkpoint has durably passed a segment, the
//! segment can be deleted, closing the unbounded-log hole.
//!
//! **Write protocol.** The checkpoint is encoded into `ckpt-<counter>.tmp`,
//! `fsync`ed, renamed to `ckpt-<counter:016x>.ckpt`, and the directory
//! `fsync`ed — a crash at any point leaves either the previous checkpoint or
//! a complete new one, never a half-written file that parses. The newest two
//! checkpoints are retained (the previous one is the fallback if the newest
//! is torn mid-rename); older ones are pruned. Decoding verifies a trailing
//! CRC-32 over the whole body, so [`load_latest`] skips a corrupt newest
//! file and falls back.
//!
//! **Ordering.** The caller must force the site's own log durable through
//! the cut (`DurableLog::sync_for_checkpoint`) *before* writing the
//! checkpoint: a checkpoint claiming `svv[self] = n` with fewer than `n`
//! records on disk would make restart re-allocate sequence numbers the
//! checkpoint already accounted for, breaking the slot = sequence invariant.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut};
use dynamast_common::codec::{self, Decode, Encode};
use dynamast_common::ids::{Key, PartitionId, SiteId};
use dynamast_common::{DynaError, Result, Row, VersionVector};
use dynamast_storage::VersionStamp;

use crate::segment::crc32;

const MAGIC: u32 = 0x444B_4350; // "DKCP"
                                // Version 2 added the remaster-epoch watermark; version 3 added the
                                // hosted-partition set (partial replication) and incremental images
                                // chained to a base full checkpoint. Older versions fail the header
                                // check and recovery falls back to full log replay, which is always
                                // correct (the checkpoint is purely an acceleration).
const VERSION: u32 = 3;

/// One stored record version in a checkpoint image.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageEntry {
    /// Record key.
    pub key: Key,
    /// Version stamp at the cut.
    pub stamp: VersionStamp,
    /// Row visible at the cut.
    pub row: Row,
}

impl Encode for ImageEntry {
    fn encode(&self, buf: &mut impl BufMut) {
        self.key.encode(buf);
        buf.put_u32(self.stamp.origin.raw());
        buf.put_u64(self.stamp.sequence);
        self.row.encode(buf);
    }

    fn encoded_len(&self) -> usize {
        self.key.encoded_len() + 4 + 8 + self.row.encoded_len()
    }
}

impl Decode for ImageEntry {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        let key = Key::decode(buf)?;
        let origin = SiteId::new(codec::get_u32(buf)? as usize);
        let sequence = codec::get_u64(buf)?;
        let row = Row::decode(buf)?;
        Ok(ImageEntry {
            key,
            stamp: VersionStamp::new(origin, sequence),
            row,
        })
    }
}

/// One site's durable consistent cut.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Monotone per-site checkpoint counter (newest wins).
    pub counter: u64,
    /// The checkpointing site.
    pub site: SiteId,
    /// The svv at the cut.
    pub svv: VersionVector,
    /// Per-origin log offsets consumed at the cut (== `svv` components by
    /// the slot = sequence invariant; stored separately so the invariant is
    /// checkable on restart).
    pub offsets: Vec<u64>,
    /// Partitions this site mastered at the cut (draining sentinels
    /// excluded).
    pub mastered: Vec<PartitionId>,
    /// Highest remaster epoch this site had participated in at the cut.
    /// Persisting it closes the epoch-reissue window after log truncation:
    /// without it, a recovering selector whose logs were truncated past the
    /// last Release/Grant record could re-allocate already-used epochs.
    pub epoch: u64,
    /// Counter of the full checkpoint this one's image is incremental
    /// over: the image covers only partitions dirtied since that base, and
    /// [`load_latest`] merges it onto the base image. `0` = this is a full
    /// (self-contained) image.
    pub base_counter: u64,
    /// Partitions this site held a copy of at the cut. `None` = full
    /// replication (the site hosts everything) — the seed behavior.
    /// Recovery replays only these partitions' write suffixes and the
    /// selector reconciles its replica map rows for the site against it.
    pub hosted: Option<Vec<PartitionId>>,
    /// Store image: every record version visible at the cut (full), or the
    /// visible versions of partitions dirtied since `base_counter`
    /// (incremental).
    pub image: Vec<ImageEntry>,
}

impl Checkpoint {
    /// Whether this checkpoint's image is incremental over a base.
    pub fn is_incremental(&self) -> bool {
        self.base_counter != 0
    }

    /// Overlays an incremental checkpoint onto its base full image: entries
    /// merge by key (the incremental's newer cut wins) and all cut metadata
    /// (svv, offsets, mastered, epoch, hosted) comes from the incremental.
    /// Keys of partitions *dropped* between the two cuts survive the merge;
    /// restore filters the image by `hosted`, which excludes them.
    pub fn merge_onto(self, base: Checkpoint) -> Checkpoint {
        debug_assert!(self.is_incremental() && !base.is_incremental());
        let mut by_key: std::collections::HashMap<Key, ImageEntry> = base
            .image
            .into_iter()
            .map(|entry| (entry.key, entry))
            .collect();
        for entry in self.image {
            by_key.insert(entry.key, entry);
        }
        let mut image: Vec<ImageEntry> = by_key.into_values().collect();
        image.sort_by_key(|entry| entry.key);
        Checkpoint {
            base_counter: 0,
            image,
            ..self
        }
    }
}

impl Encode for Checkpoint {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u64(self.counter);
        buf.put_u32(self.site.raw());
        self.svv.encode(buf);
        buf.put_u64(self.offsets.len() as u64);
        for off in &self.offsets {
            buf.put_u64(*off);
        }
        buf.put_u64(self.mastered.len() as u64);
        for p in &self.mastered {
            buf.put_u64(p.raw());
        }
        buf.put_u64(self.epoch);
        buf.put_u64(self.base_counter);
        match &self.hosted {
            None => buf.put_u8(0),
            Some(hosted) => {
                buf.put_u8(1);
                buf.put_u64(hosted.len() as u64);
                for p in hosted {
                    buf.put_u64(p.raw());
                }
            }
        }
        codec::encode_seq(&self.image, buf);
    }

    fn encoded_len(&self) -> usize {
        8 + 4
            + self.svv.encoded_len()
            + 8
            + 8 * self.offsets.len()
            + 8
            + 8 * self.mastered.len()
            + 8
            + 8
            + 1
            + self.hosted.as_ref().map_or(0, |h| 8 + 8 * h.len())
            + codec::seq_len(&self.image)
    }
}

impl Decode for Checkpoint {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        let counter = codec::get_u64(buf)?;
        let site = SiteId::new(codec::get_u32(buf)? as usize);
        let svv = VersionVector::decode(buf)?;
        let n = codec::get_u64(buf)? as usize;
        let mut offsets = Vec::with_capacity(n);
        for _ in 0..n {
            offsets.push(codec::get_u64(buf)?);
        }
        let n = codec::get_u64(buf)? as usize;
        let mut mastered = Vec::with_capacity(n);
        for _ in 0..n {
            mastered.push(PartitionId::new(codec::get_u64(buf)? as usize));
        }
        let epoch = codec::get_u64(buf)?;
        let base_counter = codec::get_u64(buf)?;
        let hosted = match codec::get_u8(buf)? {
            0 => None,
            _ => {
                let n = codec::get_u64(buf)? as usize;
                let mut hosted = Vec::with_capacity(n);
                for _ in 0..n {
                    hosted.push(PartitionId::new(codec::get_u64(buf)? as usize));
                }
                Some(hosted)
            }
        };
        let image = codec::decode_seq(buf)?;
        Ok(Checkpoint {
            counter,
            site,
            svv,
            offsets,
            mastered,
            epoch,
            base_counter,
            hosted,
            image,
        })
    }
}

fn io_err(what: &'static str, err: &std::io::Error) -> DynaError {
    eprintln!("[checkpoint] {what}: {err}");
    DynaError::Internal(what)
}

/// Full checkpoints are `ckpt-<counter>.ckpt`; incrementals encode their
/// base in the name (`ckpt-<counter>-inc-<base>.ckpt`) so pruning and chain
/// resolution never need to read file bodies.
fn checkpoint_path(dir: &Path, counter: u64, base_counter: u64) -> PathBuf {
    if base_counter == 0 {
        dir.join(format!("ckpt-{counter:016x}.ckpt"))
    } else {
        dir.join(format!("ckpt-{counter:016x}-inc-{base_counter:016x}.ckpt"))
    }
}

/// Parses a checkpoint filename into `(counter, base_counter)`
/// (`base_counter == 0` for fulls).
fn parse_counter(path: &Path) -> Option<(u64, u64)> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    match hex.split_once("-inc-") {
        None => Some((u64::from_str_radix(hex, 16).ok()?, 0)),
        Some((counter, base)) => Some((
            u64::from_str_radix(counter, 16).ok()?,
            u64::from_str_radix(base, 16).ok()?,
        )),
    }
}

/// Durably writes `ckpt` into `dir` (tmp + fsync + rename + dir fsync) and
/// prunes all but the newest two checkpoints.
pub fn write(dir: &Path, ckpt: &Checkpoint) -> Result<()> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("create checkpoint dir", &e))?;
    let body = codec::encode_to_vec(ckpt);
    let mut file_bytes = Vec::with_capacity(8 + body.len() + 4);
    file_bytes.extend_from_slice(&MAGIC.to_le_bytes());
    file_bytes.extend_from_slice(&VERSION.to_le_bytes());
    file_bytes.extend_from_slice(&body);
    file_bytes.extend_from_slice(&crc32(&body).to_le_bytes());

    let tmp = dir.join(format!("ckpt-{:016x}.tmp", ckpt.counter));
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| io_err("create checkpoint tmp", &e))?;
        f.write_all(&file_bytes)
            .map_err(|e| io_err("write checkpoint", &e))?;
        f.sync_all().map_err(|e| io_err("fsync checkpoint", &e))?;
    }
    std::fs::rename(&tmp, checkpoint_path(dir, ckpt.counter, ckpt.base_counter))
        .map_err(|e| io_err("rename checkpoint", &e))?;
    // Sync the directory so the rename itself is durable.
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("fsync checkpoint dir", &e))?;
    prune(dir)?;
    Ok(())
}

/// Deletes stale tmps, all but the two newest *full* checkpoints, and any
/// incremental whose base full was pruned (an orphan increment is
/// unloadable). Incrementals chained to a retained full are kept — they are
/// the newest cuts.
fn prune(dir: &Path) -> Result<()> {
    let mut files: Vec<(u64, u64)> = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| io_err("list checkpoint dir", &e))? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "tmp") {
            let _ = std::fs::remove_file(&path);
        } else if let Some(parsed) = parse_counter(&path) {
            files.push(parsed);
        }
    }
    let mut fulls: Vec<u64> = files
        .iter()
        .filter(|(_, base)| *base == 0)
        .map(|(c, _)| *c)
        .collect();
    fulls.sort_unstable();
    let kept_fulls: std::collections::HashSet<u64> = fulls.iter().rev().take(2).copied().collect();
    for (counter, base) in files {
        let keep = if base == 0 {
            kept_fulls.contains(&counter)
        } else {
            kept_fulls.contains(&base)
        };
        if !keep {
            std::fs::remove_file(checkpoint_path(dir, counter, base))
                .map_err(|e| io_err("prune old checkpoint", &e))?;
        }
    }
    Ok(())
}

fn try_load(path: &Path) -> Result<Checkpoint> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read checkpoint", &e))?;
    if bytes.len() < 12 {
        return Err(DynaError::Internal("checkpoint file too short"));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("sliced"));
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sliced"));
    if magic != MAGIC || version != VERSION {
        return Err(DynaError::Internal("checkpoint header mismatch"));
    }
    let body = &bytes[8..bytes.len() - 4];
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("sliced"));
    if crc32(body) != crc {
        return Err(DynaError::Internal("checkpoint crc mismatch"));
    }
    let mut slice = body;
    Checkpoint::decode(&mut slice)
}

/// Loads the newest valid checkpoint in `dir`, skipping corrupt files (a
/// torn newest checkpoint falls back to its predecessor). An incremental
/// checkpoint is resolved against its base full image ([`Checkpoint::merge_onto`]);
/// if the base is missing or corrupt the incremental is skipped the same way
/// a corrupt file is. `Ok(None)` if the directory holds no usable
/// checkpoint. The returned checkpoint is always self-contained
/// (`base_counter == 0`).
pub fn load_latest(dir: &Path) -> Result<Option<Checkpoint>> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Ok(None); // no directory yet: a fresh site
    };
    let mut files: Vec<(u64, u64)> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| parse_counter(&e.path()))
        .collect();
    files.sort_unstable();
    for &(counter, base) in files.iter().rev() {
        let Ok(ckpt) = try_load(&checkpoint_path(dir, counter, base)) else {
            continue; // corrupt: fall back to the previous one
        };
        if !ckpt.is_incremental() {
            return Ok(Some(ckpt));
        }
        match try_load(&checkpoint_path(dir, ckpt.base_counter, 0)) {
            Ok(full) if !full.is_incremental() => return Ok(Some(ckpt.merge_onto(full))),
            _ => continue, // orphaned/corrupt base: fall back further
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_common::ids::TableId;
    use dynamast_common::Value;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dynamast-ckpt-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(counter: u64) -> Checkpoint {
        Checkpoint {
            counter,
            site: SiteId::new(1),
            svv: VersionVector::from_counts(vec![3, 7, 0]),
            offsets: vec![3, 7, 0],
            mastered: vec![PartitionId::new(4), PartitionId::new(9)],
            epoch: 12,
            base_counter: 0,
            hosted: Some(vec![PartitionId::new(4), PartitionId::new(7)]),
            image: vec![ImageEntry {
                key: Key::new(TableId::new(0), 42),
                stamp: VersionStamp::new(SiteId::new(1), 7),
                row: Row::new(vec![Value::I64(100)]),
            }],
        }
    }

    fn entry(record: u64, seq: u64, v: i64) -> ImageEntry {
        ImageEntry {
            key: Key::new(TableId::new(0), record),
            stamp: VersionStamp::new(SiteId::new(1), seq),
            row: Row::new(vec![Value::I64(v)]),
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let dir = tmp_dir("roundtrip");
        write(&dir, &sample(1)).unwrap();
        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded, sample(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_checkpoint_wins_and_old_ones_prune() {
        let dir = tmp_dir("prune");
        for c in 1..=5 {
            write(&dir, &sample(c)).unwrap();
        }
        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.counter, 5);
        let kept = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(kept, 2, "only the newest two checkpoints are retained");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_predecessor() {
        let dir = tmp_dir("fallback");
        write(&dir, &sample(1)).unwrap();
        write(&dir, &sample(2)).unwrap();
        // Corrupt the newest file's tail.
        let newest = checkpoint_path(&dir, 2, 0);
        let mut bytes = std::fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 6] ^= 0xFF;
        std::fs::write(&newest, bytes).unwrap();
        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.counter, 1, "corrupt newest must fall back");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_merges_onto_its_base_full() {
        let dir = tmp_dir("inc-merge");
        let mut full = sample(1);
        full.image = vec![entry(1, 1, 10), entry(2, 1, 20)];
        write(&dir, &full).unwrap();
        let mut inc = sample(2);
        inc.base_counter = 1;
        inc.svv = VersionVector::from_counts(vec![3, 9, 0]);
        inc.offsets = vec![3, 9, 0];
        inc.epoch = 14;
        inc.image = vec![entry(2, 9, 99), entry(3, 9, 30)];
        write(&dir, &inc).unwrap();

        let loaded = load_latest(&dir).unwrap().unwrap();
        assert!(!loaded.is_incremental(), "resolved image is self-contained");
        assert_eq!(loaded.counter, 2);
        assert_eq!(loaded.epoch, 14, "cut metadata comes from the incremental");
        assert_eq!(loaded.svv, VersionVector::from_counts(vec![3, 9, 0]));
        assert_eq!(
            loaded.image,
            vec![entry(1, 1, 10), entry(2, 9, 99), entry(3, 9, 30)],
            "incremental entries override the base by key"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphaned_incremental_falls_back_to_older_full() {
        let dir = tmp_dir("inc-orphan");
        write(&dir, &sample(1)).unwrap();
        // An incremental claiming a base that never existed on disk.
        let mut inc = sample(3);
        inc.base_counter = 2;
        write(&dir, &inc).unwrap();
        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.counter, 1, "orphaned incremental must be skipped");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_incrementals_chained_to_retained_fulls() {
        let dir = tmp_dir("inc-prune");
        write(&dir, &sample(1)).unwrap();
        write(&dir, &sample(2)).unwrap();
        let mut inc = sample(3);
        inc.base_counter = 2;
        write(&dir, &inc).unwrap();
        write(&dir, &sample(4)).unwrap();
        // Fulls kept: {2, 4}; inc 3 rides on full 2.
        assert!(checkpoint_path(&dir, 2, 0).exists());
        assert!(checkpoint_path(&dir, 3, 2).exists());
        assert!(!checkpoint_path(&dir, 1, 0).exists());
        write(&dir, &sample(5)).unwrap();
        // Fulls kept: {4, 5}; full 2 and its incremental both go.
        assert!(!checkpoint_path(&dir, 2, 0).exists());
        assert!(!checkpoint_path(&dir, 3, 2).exists());
        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.counter, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_a_fresh_site() {
        let dir = std::env::temp_dir().join("dynamast-ckpt-definitely-missing-xyz");
        assert!(load_latest(&dir).unwrap().is_none());
    }
}
