//! The durable, offset-addressed record log (Kafka substitute).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use dynamast_common::codec::{encode_to_vec, Decode};
use dynamast_common::ids::SiteId;
use dynamast_common::Result;
use parking_lot::{Condvar, Mutex};

use crate::record::LogRecord;

/// An append-only log of encoded [`LogRecord`]s with blocking tail reads.
///
/// Records are stored encoded so the log's byte footprint matches what the
/// paper's Kafka deployment would carry; subscribers decode on read and the
/// byte size is available for traffic accounting.
///
/// Tail reads are event-driven: [`DurableLog::wait_read_from`] parks on a
/// condvar that [`DurableLog::append`] signals, so subscribers wake as soon
/// as a record lands instead of on a polling interval. A blocked tail read
/// is released by its caller-owned cancel flag via
/// [`DurableLog::notify_waiters`].
pub struct DurableLog {
    inner: Mutex<Vec<Bytes>>,
    appended: Condvar,
}

impl Default for DurableLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DurableLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        DurableLog {
            inner: Mutex::new(Vec::new()),
            appended: Condvar::new(),
        }
    }

    /// Appends a record, returning its offset.
    pub fn append(&self, record: &LogRecord) -> u64 {
        let encoded = Bytes::from(encode_to_vec(record));
        let mut log = self.inner.lock();
        log.push(encoded);
        let offset = log.len() as u64 - 1;
        drop(log);
        self.appended.notify_all();
        offset
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.inner.lock().len() as u64
    }

    /// `true` if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes in the log.
    pub fn byte_size(&self) -> u64 {
        self.inner.lock().iter().map(|b| b.len() as u64).sum()
    }

    /// Reads every record at `offset` and beyond that is currently present,
    /// returning `(records, total encoded bytes)`. Returns immediately (an
    /// empty batch if nothing new).
    pub fn read_from(&self, offset: u64) -> Result<(Vec<LogRecord>, usize)> {
        let log = self.inner.lock();
        decode_batch(&log, offset)
    }

    /// Like [`DurableLog::read_from`] but blocks until at least one record
    /// exists at or past `offset`, or `cancel` becomes `true`. Returns an
    /// empty batch only when cancelled.
    ///
    /// `cancel` is re-checked under the log lock on every wakeup, so a
    /// cancellation signalled through [`DurableLog::notify_waiters`] cannot
    /// be lost between the check and the park.
    pub fn wait_read_from(
        &self,
        offset: u64,
        cancel: &AtomicBool,
    ) -> Result<(Vec<LogRecord>, usize)> {
        let mut log = self.inner.lock();
        while (log.len() as u64) <= offset && !cancel.load(Ordering::Relaxed) {
            self.appended.wait(&mut log);
        }
        decode_batch(&log, offset)
    }

    /// Wakes every blocked [`DurableLog::wait_read_from`] so it can observe
    /// its cancel flag. Set the flag before calling this; taking the log
    /// lock here orders the store before any waiter's re-check.
    pub fn notify_waiters(&self) {
        let _log = self.inner.lock();
        self.appended.notify_all();
    }

    /// Reads the single record at `offset`, if present. Used by recovery's
    /// replay scheduler, which needs cheap random access.
    pub fn get(&self, offset: u64) -> Result<Option<LogRecord>> {
        let log = self.inner.lock();
        match log.get(offset as usize) {
            None => Ok(None),
            Some(encoded) => {
                let mut slice = encoded.clone();
                Ok(Some(LogRecord::decode(&mut slice)?))
            }
        }
    }
}

fn decode_batch(log: &[Bytes], offset: u64) -> Result<(Vec<LogRecord>, usize)> {
    let start = (offset as usize).min(log.len());
    let mut records = Vec::with_capacity(log.len() - start);
    let mut bytes = 0;
    for encoded in &log[start..] {
        bytes += encoded.len();
        let mut slice = encoded.clone();
        records.push(LogRecord::decode(&mut slice)?);
    }
    Ok((records, bytes))
}

/// One durable log per site (one Kafka topic per site in the paper).
#[derive(Clone)]
pub struct LogSet {
    logs: Vec<Arc<DurableLog>>,
}

impl LogSet {
    /// Creates `num_sites` empty logs.
    pub fn new(num_sites: usize) -> Self {
        LogSet {
            logs: (0..num_sites)
                .map(|_| Arc::new(DurableLog::new()))
                .collect(),
        }
    }

    /// The log owned by `site`.
    pub fn log(&self, site: SiteId) -> &Arc<DurableLog> {
        &self.logs[site.as_usize()]
    }

    /// Number of sites/logs.
    pub fn num_sites(&self) -> usize {
        self.logs.len()
    }

    /// All logs in site order.
    pub fn logs(&self) -> &[Arc<DurableLog>] {
        &self.logs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_common::VersionVector;
    use std::thread;
    use std::time::Duration;

    fn commit(origin: usize, seq: u64) -> LogRecord {
        let mut tvv = VersionVector::zero(2);
        tvv.set(SiteId::new(origin), seq);
        LogRecord::Commit {
            origin: SiteId::new(origin),
            tvv,
            writes: vec![],
        }
    }

    #[test]
    fn append_assigns_sequential_offsets() {
        let log = DurableLog::new();
        assert_eq!(log.append(&commit(0, 1)), 0);
        assert_eq!(log.append(&commit(0, 2)), 1);
        assert_eq!(log.len(), 2);
        assert!(log.byte_size() > 0);
    }

    #[test]
    fn read_from_returns_suffix() {
        let log = DurableLog::new();
        for i in 1..=5 {
            log.append(&commit(0, i));
        }
        let (records, bytes) = log.read_from(3).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].sequence(), 4);
        assert!(bytes > 0);
        let (empty, b) = log.read_from(99).unwrap();
        assert!(empty.is_empty());
        assert_eq!(b, 0);
    }

    #[test]
    fn wait_read_wakes_on_append() {
        let log = Arc::new(DurableLog::new());
        let log2 = Arc::clone(&log);
        let cancel = Arc::new(AtomicBool::new(false));
        let cancel2 = Arc::clone(&cancel);
        let reader = thread::spawn(move || log2.wait_read_from(0, &cancel2).unwrap().0);
        thread::sleep(Duration::from_millis(20));
        log.append(&commit(1, 1));
        let records = reader.join().unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn wait_read_returns_empty_when_cancelled() {
        let log = Arc::new(DurableLog::new());
        let log2 = Arc::clone(&log);
        let cancel = Arc::new(AtomicBool::new(false));
        let cancel2 = Arc::clone(&cancel);
        let reader = thread::spawn(move || log2.wait_read_from(0, &cancel2).unwrap().0);
        thread::sleep(Duration::from_millis(20));
        cancel.store(true, Ordering::Relaxed);
        log.notify_waiters();
        let records = reader.join().unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn pre_cancelled_wait_read_returns_immediately() {
        let log = DurableLog::new();
        let cancel = AtomicBool::new(true);
        let (records, _) = log.wait_read_from(0, &cancel).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn log_set_gives_each_site_its_own_log() {
        let set = LogSet::new(3);
        set.log(SiteId::new(1)).append(&commit(1, 1));
        assert_eq!(set.log(SiteId::new(0)).len(), 0);
        assert_eq!(set.log(SiteId::new(1)).len(), 1);
        assert_eq!(set.num_sites(), 3);
    }
}
