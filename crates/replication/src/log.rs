//! The durable, offset-addressed record log (Kafka substitute).

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use dynamast_common::codec::{encode_to_vec, Decode};
use dynamast_common::ids::SiteId;
use dynamast_common::Result;
use parking_lot::{Condvar, Mutex};

use crate::record::LogRecord;

/// An append-only log of encoded [`LogRecord`]s with blocking tail reads.
///
/// Records are stored encoded so the log's byte footprint matches what the
/// paper's Kafka deployment would carry; subscribers decode on read and the
/// byte size is available for traffic accounting.
pub struct DurableLog {
    inner: Mutex<Vec<Bytes>>,
    appended: Condvar,
}

impl Default for DurableLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DurableLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        DurableLog {
            inner: Mutex::new(Vec::new()),
            appended: Condvar::new(),
        }
    }

    /// Appends a record, returning its offset.
    pub fn append(&self, record: &LogRecord) -> u64 {
        let encoded = Bytes::from(encode_to_vec(record));
        let mut log = self.inner.lock();
        log.push(encoded);
        let offset = log.len() as u64 - 1;
        drop(log);
        self.appended.notify_all();
        offset
    }

    /// Number of records.
    pub fn len(&self) -> u64 {
        self.inner.lock().len() as u64
    }

    /// `true` if no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes in the log.
    pub fn byte_size(&self) -> u64 {
        self.inner.lock().iter().map(|b| b.len() as u64).sum()
    }

    /// Reads every record at `offset` and beyond that is currently present,
    /// returning `(records, total encoded bytes)`. Returns immediately (an
    /// empty batch if nothing new).
    pub fn read_from(&self, offset: u64) -> Result<(Vec<LogRecord>, usize)> {
        let log = self.inner.lock();
        decode_batch(&log, offset)
    }

    /// Like [`DurableLog::read_from`] but blocks up to `timeout` for at least
    /// one new record.
    pub fn wait_read_from(&self, offset: u64, timeout: Duration) -> Result<(Vec<LogRecord>, usize)> {
        let mut log = self.inner.lock();
        if (log.len() as u64) <= offset {
            let _ = self.appended.wait_for(&mut log, timeout);
        }
        decode_batch(&log, offset)
    }

    /// Reads the single record at `offset`, if present. Used by recovery's
    /// replay scheduler, which needs cheap random access.
    pub fn get(&self, offset: u64) -> Result<Option<LogRecord>> {
        let log = self.inner.lock();
        match log.get(offset as usize) {
            None => Ok(None),
            Some(encoded) => {
                let mut slice = encoded.clone();
                Ok(Some(LogRecord::decode(&mut slice)?))
            }
        }
    }
}

fn decode_batch(log: &[Bytes], offset: u64) -> Result<(Vec<LogRecord>, usize)> {
    let start = (offset as usize).min(log.len());
    let mut records = Vec::with_capacity(log.len() - start);
    let mut bytes = 0;
    for encoded in &log[start..] {
        bytes += encoded.len();
        let mut slice = encoded.clone();
        records.push(LogRecord::decode(&mut slice)?);
    }
    Ok((records, bytes))
}

/// One durable log per site (one Kafka topic per site in the paper).
#[derive(Clone)]
pub struct LogSet {
    logs: Vec<Arc<DurableLog>>,
}

impl LogSet {
    /// Creates `num_sites` empty logs.
    pub fn new(num_sites: usize) -> Self {
        LogSet {
            logs: (0..num_sites).map(|_| Arc::new(DurableLog::new())).collect(),
        }
    }

    /// The log owned by `site`.
    pub fn log(&self, site: SiteId) -> &Arc<DurableLog> {
        &self.logs[site.as_usize()]
    }

    /// Number of sites/logs.
    pub fn num_sites(&self) -> usize {
        self.logs.len()
    }

    /// All logs in site order.
    pub fn logs(&self) -> &[Arc<DurableLog>] {
        &self.logs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_common::VersionVector;
    use std::thread;

    fn commit(origin: usize, seq: u64) -> LogRecord {
        let mut tvv = VersionVector::zero(2);
        tvv.set(SiteId::new(origin), seq);
        LogRecord::Commit {
            origin: SiteId::new(origin),
            tvv,
            writes: vec![],
        }
    }

    #[test]
    fn append_assigns_sequential_offsets() {
        let log = DurableLog::new();
        assert_eq!(log.append(&commit(0, 1)), 0);
        assert_eq!(log.append(&commit(0, 2)), 1);
        assert_eq!(log.len(), 2);
        assert!(log.byte_size() > 0);
    }

    #[test]
    fn read_from_returns_suffix() {
        let log = DurableLog::new();
        for i in 1..=5 {
            log.append(&commit(0, i));
        }
        let (records, bytes) = log.read_from(3).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].sequence(), 4);
        assert!(bytes > 0);
        let (empty, b) = log.read_from(99).unwrap();
        assert!(empty.is_empty());
        assert_eq!(b, 0);
    }

    #[test]
    fn wait_read_wakes_on_append() {
        let log = Arc::new(DurableLog::new());
        let log2 = Arc::clone(&log);
        let reader = thread::spawn(move || {
            log2.wait_read_from(0, Duration::from_secs(5)).unwrap().0
        });
        thread::sleep(Duration::from_millis(20));
        log.append(&commit(1, 1));
        let records = reader.join().unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn wait_read_times_out_empty() {
        let log = DurableLog::new();
        let (records, _) = log
            .wait_read_from(0, Duration::from_millis(10))
            .unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn log_set_gives_each_site_its_own_log() {
        let set = LogSet::new(3);
        set.log(SiteId::new(1)).append(&commit(1, 1));
        assert_eq!(set.log(SiteId::new(0)).len(), 0);
        assert_eq!(set.log(SiteId::new(1)).len(), 1);
        assert_eq!(set.num_sites(), 3);
    }
}
