//! The offset-addressed record log (Kafka substitute) — durable for real
//! when opened on a segment directory, purely in-memory when volatile.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use dynamast_common::codec::{encode_to_vec, Decode};
use dynamast_common::config::FsyncMode;
use dynamast_common::ids::SiteId;
use dynamast_common::{DynaError, Result};
use parking_lot::{Condvar, Mutex};

use crate::record::LogRecord;
use crate::segment::SegmentLog;

/// An append-only log of encoded [`LogRecord`]s with blocking tail reads and
/// a two-phase reserve/fill write protocol.
///
/// Records are stored encoded so the log's byte footprint matches what the
/// paper's Kafka deployment would carry; subscribers decode on read and the
/// byte size is available for traffic accounting.
///
/// **Reserve/fill.** A writer that must hold its slot in a globally agreed
/// order (the commit pipeline: slot order = commit-sequence order) calls
/// [`DurableLog::reserve`] inside its tiny sequencing section, does its
/// expensive work (version installs, record serialization) outside any
/// global lock, then calls [`DurableLog::fill`]. Filled slots become visible
/// to readers only as a contiguous prefix: the fill that closes a gap
/// publishes the whole contiguous run behind it in one step — a group
/// commit — with a single wake-up for tail readers. Readers can therefore
/// never observe a gap or a torn batch. [`DurableLog::append`] is the
/// one-shot convenience (reserve + fill) for writers with no ordering
/// constraint of their own. A reservation whose committer dies is closed
/// with [`DurableLog::abort`], which fills a [`LogRecord::Noop`] tombstone —
/// the sequence space stays gap-free, so an abandoned slot can never wedge
/// the watermark.
///
/// **Persistence.** [`DurableLog::open_persistent`] backs the log with an
/// on-disk [`SegmentLog`]. Frames are written at *publish* time — inside the
/// gap-closing fill, in offset order, which is exactly the order the
/// watermark certifies — so the disk is always a prefix of what readers have
/// seen. Group fsync rides the same publish: one `fsync` per published run
/// ([`FsyncMode::Group`]), or additionally each committer blocks until the
/// sync covers its own offset ([`FsyncMode::Always`]), or frames are written
/// but never synced ([`FsyncMode::Off`], today's behavior for benches).
/// [`DurableLog::new`] keeps no disk state at all.
///
/// Tail reads are event-driven: [`DurableLog::wait_read_from`] parks on a
/// condvar that the publishing fill signals, so subscribers wake as soon as
/// a contiguous run lands instead of on a polling interval. A blocked tail
/// read is released by its caller-owned cancel flag via
/// [`DurableLog::notify_waiters`].
///
/// **Retention.** Persistent logs track a durable floor per consumer site
/// ([`DurableLog::record_consumer_floor`], advanced only once that
/// consumer's checkpoint has durably passed an offset). Whole segments below
/// the minimum floor are deleted and the in-memory window advances its
/// `base` past them; reads below `base` are errors, which the floor protocol
/// makes unreachable for well-behaved consumers.
pub struct DurableLog {
    site: SiteId,
    inner: Mutex<LogInner>,
    appended: Condvar,
    /// Signalled when the durable watermark (`synced`) advances; only
    /// [`FsyncMode::Always`] committers ever wait on it.
    durable: Condvar,
}

struct LogInner {
    /// Absolute log offset of `slots[0]` (0 until truncation discards a
    /// prefix).
    base: u64,
    /// Reserved slots at offsets `base..`; `None` = reserved but not filled.
    slots: Vec<Option<Bytes>>,
    /// Absolute length of the contiguous published prefix (records at
    /// offsets `< visible` are visible to readers).
    visible: u64,
    /// Absolute length of the prefix known durable on disk (`<= visible`;
    /// meaningless for volatile logs).
    synced: u64,
    /// Disk backend; `None` for a volatile log.
    disk: Option<SegmentLog>,
    fsync: FsyncMode,
    /// Per-consumer-site durable floors gating segment truncation.
    floors: Vec<u64>,
}

impl Default for DurableLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DurableLog {
    /// Creates an empty volatile log (no disk state; site 0).
    pub fn new() -> Self {
        Self::for_site(SiteId::new(0))
    }

    /// Creates an empty volatile log owned by `site` (the site id stamps
    /// abort tombstones).
    pub fn for_site(site: SiteId) -> Self {
        DurableLog {
            site,
            inner: Mutex::new(LogInner {
                base: 0,
                slots: Vec::new(),
                visible: 0,
                synced: 0,
                disk: None,
                fsync: FsyncMode::Off,
                floors: Vec::new(),
            }),
            appended: Condvar::new(),
            durable: Condvar::new(),
        }
    }

    /// Opens (or creates) a disk-backed log for `site` rooted at `dir`,
    /// applying the torn-tail rule to whatever segments survive on disk.
    /// Recovered records are published (and considered synced) immediately.
    /// `num_consumers` sizes the truncation floor table (one per site).
    pub fn open_persistent(
        site: SiteId,
        dir: std::path::PathBuf,
        segment_bytes: u64,
        fsync: FsyncMode,
        num_consumers: usize,
    ) -> Result<Self> {
        let recovered = SegmentLog::open(dir, segment_bytes, fsync)?;
        let visible = recovered.base + recovered.records.len() as u64;
        Ok(DurableLog {
            site,
            inner: Mutex::new(LogInner {
                base: recovered.base,
                slots: recovered.records.into_iter().map(Some).collect(),
                visible,
                synced: visible,
                disk: Some(recovered.disk),
                fsync,
                floors: vec![0; num_consumers],
            }),
            appended: Condvar::new(),
            durable: Condvar::new(),
        })
    }

    /// The site whose commit order this log holds.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Reserves the next slot, returning its offset. The caller must
    /// eventually [`DurableLog::fill`] or [`DurableLog::abort`] it; readers
    /// cannot see this slot (or any later one) until every slot up to and
    /// including it is closed.
    pub fn reserve(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.slots.push(None);
        inner.base + inner.slots.len() as u64 - 1
    }

    /// Fills a reserved slot. Serialization happens outside the log lock;
    /// if this fill closes the gap at the visible watermark, the whole
    /// contiguous run of filled slots behind it publishes at once (group
    /// commit) with one reader wake-up. Returns the new visible length when
    /// this fill advanced the watermark (`None` if an earlier slot is still
    /// open), so the gap-closing filler can publish the run downstream.
    pub fn fill(&self, offset: u64, record: &LogRecord) -> Option<u64> {
        self.fill_encoded(offset, Bytes::from(encode_to_vec(record)))
    }

    /// Like [`DurableLog::fill`] with a pre-encoded record (the commit
    /// pipeline serializes outside the log lock while other committers run).
    ///
    /// On a persistent log the gap-closing fill also writes every newly
    /// published frame to the segment file — publication order *is* offset
    /// order, so the disk never holds a record the watermark has not
    /// certified — and syncs per the fsync mode. Under [`FsyncMode::Always`]
    /// the call additionally blocks until the durable watermark covers
    /// `offset` (for a non-gap-closing filler, that sync is performed by
    /// whichever later fill publishes its run).
    pub fn fill_encoded(&self, offset: u64, encoded: Bytes) -> Option<u64> {
        let mut inner = self.inner.lock();
        let idx = (offset - inner.base) as usize;
        let slot = &mut inner.slots[idx];
        debug_assert!(slot.is_none(), "log slot {offset} filled twice");
        *slot = Some(encoded);
        // Advance the visible watermark over the contiguous filled prefix.
        let prev_visible = inner.visible;
        while inner
            .slots
            .get((inner.visible - inner.base) as usize)
            .is_some_and(|s| s.is_some())
        {
            inner.visible += 1;
        }
        let visible = inner.visible;
        let advanced = visible > prev_visible;
        if advanced && inner.disk.is_some() {
            self.persist_run(&mut inner, prev_visible, visible);
        }
        let must_wait_durable =
            inner.disk.is_some() && inner.fsync == FsyncMode::Always && inner.synced <= offset;
        if must_wait_durable {
            // Wait for a later gap-closing fill to sync past us. The
            // reserve/fill-or-abort discipline guarantees that fill comes.
            while inner.synced <= offset {
                self.durable.wait(&mut inner);
            }
        }
        drop(inner);
        if advanced {
            self.appended.notify_all();
            Some(visible)
        } else {
            None
        }
    }

    /// Writes the newly published run `[from, to)` to disk under the log
    /// lock and applies the configured fsync policy — one sync per run for
    /// `Group`/`Always`, none for `Off`.
    fn persist_run(&self, inner: &mut LogInner, from: u64, to: u64) {
        let base = inner.base;
        let disk = inner.disk.as_mut().expect("persist_run on volatile log");
        for off in from..to {
            let payload = inner.slots[(off - base) as usize]
                .as_ref()
                .expect("published slot filled");
            if let Err(err) = disk.append(off, payload) {
                // Losing the disk mid-run makes recovered state a prefix,
                // never a lie; keep serving readers from memory.
                eprintln!("[log] segment append failed at offset {off}: {err}");
                return;
            }
        }
        match inner.fsync {
            FsyncMode::Off => {}
            FsyncMode::Group | FsyncMode::Always => {
                if let Err(err) = disk.sync() {
                    eprintln!("[log] segment fsync failed: {err}");
                    return;
                }
                inner.synced = to;
                self.durable.notify_all();
            }
        }
    }

    /// Closes a reserved slot whose committer died before filling it by
    /// filling a [`LogRecord::Noop`] tombstone carrying the abandoned
    /// sequence (PR 5 invariant: slot `offset` holds sequence `offset + 1`).
    /// The tombstone publishes and propagates like any record — peers and
    /// recovery advance `svv[origin]` over it without installing anything —
    /// so the abandoned reservation can no longer wedge the visibility
    /// watermark, fsync, or remote refresh admission.
    pub fn abort(&self, offset: u64) -> Option<u64> {
        let tombstone = LogRecord::Noop {
            origin: self.site,
            sequence: offset + 1,
        };
        self.fill_encoded(offset, Bytes::from(encode_to_vec(&tombstone)))
    }

    /// Appends a record in one step (reserve + fill), returning its offset.
    ///
    /// With concurrent appenders the record still publishes only when every
    /// earlier reserved slot has filled, so readers always see a gap-free
    /// prefix.
    pub fn append(&self, record: &LogRecord) -> u64 {
        let encoded = Bytes::from(encode_to_vec(record));
        let offset = {
            let mut inner = self.inner.lock();
            inner.slots.push(None);
            inner.base + inner.slots.len() as u64 - 1
        };
        self.fill_encoded(offset, encoded);
        offset
    }

    /// Number of published (visible) records (an absolute offset: truncated
    /// records still count).
    pub fn len(&self) -> u64 {
        self.inner.lock().visible
    }

    /// Number of reserved slots, published or not (tests, diagnostics).
    pub fn reserved_len(&self) -> u64 {
        let inner = self.inner.lock();
        inner.base + inner.slots.len() as u64
    }

    /// Absolute offset of the oldest retained record (0 until truncation).
    pub fn base(&self) -> u64 {
        self.inner.lock().base
    }

    /// Absolute length of the prefix known durable on disk. Tracks `len()`
    /// for `Group`/`Always` persistent logs; 0 for volatile ones.
    pub fn synced_len(&self) -> u64 {
        self.inner.lock().synced
    }

    /// `true` if no records have been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes of retained published records.
    pub fn byte_size(&self) -> u64 {
        let inner = self.inner.lock();
        let visible_retained = (inner.visible - inner.base) as usize;
        inner.slots[..visible_retained]
            .iter()
            .map(|b| b.as_ref().expect("visible slot filled").len() as u64)
            .sum()
    }

    /// Forces the disk durable through everything published, regardless of
    /// fsync mode. Checkpoints call this before claiming an svv cut: a
    /// checkpoint must never reference offsets the disk does not hold
    /// (restart would re-allocate sequences the checkpoint already used).
    pub fn sync_for_checkpoint(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let visible = inner.visible;
        if let Some(disk) = inner.disk.as_mut() {
            disk.sync_for_checkpoint()?;
            inner.synced = visible;
            self.durable.notify_all();
        }
        Ok(())
    }

    /// Records that consumer site `consumer` has durably checkpointed
    /// through `floor` (exclusive offset) of this log, then deletes any
    /// whole segments every consumer has passed. Floors only advance.
    /// No-op for volatile logs.
    pub fn record_consumer_floor(&self, consumer: usize, floor: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.disk.is_none() {
            return Ok(());
        }
        if let Some(slot) = inner.floors.get_mut(consumer) {
            *slot = (*slot).max(floor);
        }
        let min_floor = inner.floors.iter().copied().min().unwrap_or(0);
        if min_floor <= inner.base {
            return Ok(());
        }
        let disk = inner.disk.as_mut().expect("checked above");
        let new_base = disk.truncate_segments_below(min_floor)?;
        if new_base > inner.base {
            let drop_n = (new_base - inner.base) as usize;
            inner.slots.drain(..drop_n);
            inner.base = new_base;
        }
        Ok(())
    }

    /// Reads every published record at `offset` and beyond, returning
    /// `(records, total encoded bytes)`. Returns immediately (an empty batch
    /// if nothing new). Reading below the truncated base is an error.
    pub fn read_from(&self, offset: u64) -> Result<(Vec<LogRecord>, usize)> {
        let inner = self.inner.lock();
        decode_batch(&inner, offset)
    }

    /// Like [`DurableLog::read_from`] but blocks until at least one record
    /// is published at or past `offset`, or `cancel` becomes `true`. Returns
    /// an empty batch only when cancelled.
    ///
    /// `cancel` is re-checked under the log lock on every wakeup, so a
    /// cancellation signalled through [`DurableLog::notify_waiters`] cannot
    /// be lost between the check and the park.
    pub fn wait_read_from(
        &self,
        offset: u64,
        cancel: &AtomicBool,
    ) -> Result<(Vec<LogRecord>, usize)> {
        let mut inner = self.inner.lock();
        while inner.visible <= offset && !cancel.load(Ordering::Relaxed) {
            self.appended.wait(&mut inner);
        }
        decode_batch(&inner, offset)
    }

    /// Wakes every blocked [`DurableLog::wait_read_from`] so it can observe
    /// its cancel flag. Set the flag before calling this; taking the log
    /// lock here orders the store before any waiter's re-check.
    pub fn notify_waiters(&self) {
        let _inner = self.inner.lock();
        self.appended.notify_all();
        self.durable.notify_all();
    }

    /// Reads the single published record at `offset`, if present. Used by
    /// recovery's replay scheduler, which needs cheap random access.
    pub fn get(&self, offset: u64) -> Result<Option<LogRecord>> {
        let inner = self.inner.lock();
        if offset >= inner.visible {
            return Ok(None);
        }
        if offset < inner.base {
            return Err(DynaError::Internal("log read below truncated base"));
        }
        let encoded = inner.slots[(offset - inner.base) as usize]
            .as_ref()
            .expect("visible slot filled");
        let mut slice = encoded.clone();
        Ok(Some(LogRecord::decode(&mut slice)?))
    }
}

fn decode_batch(inner: &LogInner, offset: u64) -> Result<(Vec<LogRecord>, usize)> {
    let start = offset.min(inner.visible);
    if start < inner.base {
        return Err(DynaError::Internal("log read below truncated base"));
    }
    let mut records = Vec::with_capacity((inner.visible - start) as usize);
    let mut bytes = 0;
    let lo = (start - inner.base) as usize;
    let hi = (inner.visible - inner.base) as usize;
    for encoded in &inner.slots[lo..hi] {
        let encoded = encoded.as_ref().expect("visible slot filled");
        bytes += encoded.len();
        let mut slice = encoded.clone();
        records.push(LogRecord::decode(&mut slice)?);
    }
    Ok((records, bytes))
}

/// One log per site (one Kafka topic per site in the paper).
#[derive(Clone)]
pub struct LogSet {
    logs: Vec<Arc<DurableLog>>,
}

impl LogSet {
    /// Creates `num_sites` empty volatile logs.
    pub fn new(num_sites: usize) -> Self {
        LogSet {
            logs: (0..num_sites)
                .map(|i| Arc::new(DurableLog::for_site(SiteId::new(i))))
                .collect(),
        }
    }

    /// Opens `num_sites` disk-backed logs under `root` (one
    /// `site-<id>/` segment directory each), recovering whatever survives
    /// on disk with torn tails truncated.
    pub fn open_persistent(
        num_sites: usize,
        root: &std::path::Path,
        segment_bytes: u64,
        fsync: FsyncMode,
    ) -> Result<Self> {
        let mut logs = Vec::with_capacity(num_sites);
        for i in 0..num_sites {
            logs.push(Arc::new(DurableLog::open_persistent(
                SiteId::new(i),
                root.join(format!("site-{i}")),
                segment_bytes,
                fsync,
                num_sites,
            )?));
        }
        Ok(LogSet { logs })
    }

    /// The log owned by `site`.
    pub fn log(&self, site: SiteId) -> &Arc<DurableLog> {
        &self.logs[site.as_usize()]
    }

    /// Number of sites/logs.
    pub fn num_sites(&self) -> usize {
        self.logs.len()
    }

    /// All logs in site order.
    pub fn logs(&self) -> &[Arc<DurableLog>] {
        &self.logs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_common::VersionVector;
    use std::thread;
    use std::time::Duration;

    fn commit(origin: usize, seq: u64) -> LogRecord {
        let mut tvv = VersionVector::zero(2);
        tvv.set(SiteId::new(origin), seq);
        LogRecord::Commit {
            origin: SiteId::new(origin),
            tvv,
            writes: vec![],
        }
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dynamast-log-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_assigns_sequential_offsets() {
        let log = DurableLog::new();
        assert_eq!(log.append(&commit(0, 1)), 0);
        assert_eq!(log.append(&commit(0, 2)), 1);
        assert_eq!(log.len(), 2);
        assert!(log.byte_size() > 0);
    }

    #[test]
    fn read_from_returns_suffix() {
        let log = DurableLog::new();
        for i in 1..=5 {
            log.append(&commit(0, i));
        }
        let (records, bytes) = log.read_from(3).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].sequence(), 4);
        assert!(bytes > 0);
        let (empty, b) = log.read_from(99).unwrap();
        assert!(empty.is_empty());
        assert_eq!(b, 0);
    }

    #[test]
    fn unfilled_reservation_hides_later_fills() {
        let log = DurableLog::new();
        let s1 = log.reserve();
        let s2 = log.reserve();
        log.fill(s2, &commit(0, 2));
        // Slot 2 is filled but slot 1 is not: nothing is visible.
        assert_eq!(log.len(), 0);
        assert!(log.get(s2).unwrap().is_none());
        assert_eq!(log.reserved_len(), 2);
        // Filling the gap publishes the whole contiguous run at once.
        log.fill(s1, &commit(0, 1));
        assert_eq!(log.len(), 2);
        let (records, _) = log.read_from(0).unwrap();
        let seqs: Vec<u64> = records.iter().map(|r| r.sequence()).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    /// Regression: a reserved-but-never-filled slot used to wedge the
    /// visibility watermark forever — every later commit stayed invisible.
    /// `abort` closes the slot with a Noop tombstone that publishes like any
    /// record, so the run behind it unblocks.
    #[test]
    fn aborted_reservation_no_longer_blocks_publication() {
        let log = DurableLog::for_site(SiteId::new(1));
        let dead = log.reserve();
        let live = log.reserve();
        log.fill(live, &commit(1, 2));
        assert_eq!(log.len(), 0, "open reservation blocks the run");
        let visible = log.abort(dead);
        assert_eq!(visible, Some(2), "abort publishes the whole run");
        let (records, _) = log.read_from(0).unwrap();
        assert_eq!(
            records[0],
            LogRecord::Noop {
                origin: SiteId::new(1),
                sequence: dead + 1,
            },
            "tombstone carries the abandoned sequence (slot i = seq i+1)"
        );
        assert_eq!(records[1].sequence(), 2);
    }

    #[test]
    fn gap_fill_wakes_reader_with_whole_run() {
        let log = Arc::new(DurableLog::new());
        let s1 = log.reserve();
        let s2 = log.reserve();
        let s3 = log.reserve();
        log.fill(s2, &commit(0, 2));
        log.fill(s3, &commit(0, 3));
        let log2 = Arc::clone(&log);
        let reader = thread::spawn(move || {
            let cancel = AtomicBool::new(false);
            log2.wait_read_from(0, &cancel).unwrap().0
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!reader.is_finished(), "gapped log must not deliver");
        log.fill(s1, &commit(0, 1));
        let records = reader.join().unwrap();
        assert_eq!(records.len(), 3, "one group publish delivers the run");
    }

    #[test]
    fn wait_read_wakes_on_append() {
        let log = Arc::new(DurableLog::new());
        let log2 = Arc::clone(&log);
        let cancel = Arc::new(AtomicBool::new(false));
        let cancel2 = Arc::clone(&cancel);
        let reader = thread::spawn(move || log2.wait_read_from(0, &cancel2).unwrap().0);
        thread::sleep(Duration::from_millis(20));
        log.append(&commit(1, 1));
        let records = reader.join().unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn wait_read_returns_empty_when_cancelled() {
        let log = Arc::new(DurableLog::new());
        let log2 = Arc::clone(&log);
        let cancel = Arc::new(AtomicBool::new(false));
        let cancel2 = Arc::clone(&cancel);
        let reader = thread::spawn(move || log2.wait_read_from(0, &cancel2).unwrap().0);
        thread::sleep(Duration::from_millis(20));
        cancel.store(true, Ordering::Relaxed);
        log.notify_waiters();
        let records = reader.join().unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn pre_cancelled_wait_read_returns_immediately() {
        let log = DurableLog::new();
        let cancel = AtomicBool::new(true);
        let (records, _) = log.wait_read_from(0, &cancel).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn log_set_gives_each_site_its_own_log() {
        let set = LogSet::new(3);
        set.log(SiteId::new(1)).append(&commit(1, 1));
        assert_eq!(set.log(SiteId::new(0)).len(), 0);
        assert_eq!(set.log(SiteId::new(1)).len(), 1);
        assert_eq!(set.num_sites(), 3);
    }

    #[test]
    fn persistent_log_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let log = DurableLog::open_persistent(
                SiteId::new(0),
                dir.clone(),
                1 << 16,
                FsyncMode::Group,
                1,
            )
            .unwrap();
            for i in 1..=10 {
                log.append(&commit(0, i));
            }
            assert_eq!(log.synced_len(), 10, "group mode syncs each run");
        }
        let log =
            DurableLog::open_persistent(SiteId::new(0), dir.clone(), 1 << 16, FsyncMode::Group, 1)
                .unwrap();
        assert_eq!(log.len(), 10);
        let (records, _) = log.read_from(0).unwrap();
        let seqs: Vec<u64> = records.iter().map(|r| r.sequence()).collect();
        assert_eq!(seqs, (1..=10).collect::<Vec<_>>());
        // Reserve after recovery continues the offset space.
        assert_eq!(log.reserve(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_group_fsync_covers_published_runs_only() {
        let dir = tmp_dir("group");
        let log =
            DurableLog::open_persistent(SiteId::new(0), dir.clone(), 1 << 16, FsyncMode::Group, 1)
                .unwrap();
        let s1 = log.reserve();
        let s2 = log.reserve();
        log.fill(s2, &commit(0, 2));
        assert_eq!(log.synced_len(), 0, "unpublished run is not on disk");
        log.fill(s1, &commit(0, 1));
        assert_eq!(log.synced_len(), 2, "gap-closing fill syncs the run");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn always_mode_blocks_filler_until_durable() {
        let dir = tmp_dir("always");
        let log = Arc::new(
            DurableLog::open_persistent(SiteId::new(0), dir.clone(), 1 << 16, FsyncMode::Always, 1)
                .unwrap(),
        );
        let s1 = log.reserve();
        let s2 = log.reserve();
        let log2 = Arc::clone(&log);
        let filler = thread::spawn(move || log2.fill(s2, &commit(0, 2)));
        thread::sleep(Duration::from_millis(20));
        assert!(
            !filler.is_finished(),
            "always-mode filler must wait for the sync that covers it"
        );
        log.fill(s1, &commit(0, 1));
        filler.join().unwrap();
        assert_eq!(log.synced_len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn consumer_floors_gate_truncation() {
        let dir = tmp_dir("floors");
        // Tiny segments so truncation has something to delete.
        let log = DurableLog::open_persistent(SiteId::new(0), dir.clone(), 64, FsyncMode::Group, 2)
            .unwrap();
        for i in 1..=30 {
            log.append(&commit(0, i));
        }
        // Only one consumer advanced: min floor is 0, nothing truncates.
        log.record_consumer_floor(0, 25).unwrap();
        assert_eq!(log.base(), 0);
        // Both past offset 20: segments wholly below 20 go.
        log.record_consumer_floor(1, 20).unwrap();
        let base = log.base();
        assert!(base > 0, "truncation must discard passed segments");
        assert!(base <= 20, "floor record must stay retained");
        // Reads at/above the base still work; below it error.
        let (records, _) = log.read_from(base).unwrap();
        assert_eq!(records.len() as u64, 30 - base);
        assert!(log.read_from(0).is_err());
        assert!(log.get(0).is_err());
        // Floors never regress.
        log.record_consumer_floor(1, 5).unwrap();
        assert_eq!(log.base(), base);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
