//! The durable, offset-addressed record log (Kafka substitute).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use dynamast_common::codec::{encode_to_vec, Decode};
use dynamast_common::ids::SiteId;
use dynamast_common::Result;
use parking_lot::{Condvar, Mutex};

use crate::record::LogRecord;

/// An append-only log of encoded [`LogRecord`]s with blocking tail reads and
/// a two-phase reserve/fill write protocol.
///
/// Records are stored encoded so the log's byte footprint matches what the
/// paper's Kafka deployment would carry; subscribers decode on read and the
/// byte size is available for traffic accounting.
///
/// **Reserve/fill.** A writer that must hold its slot in a globally agreed
/// order (the commit pipeline: slot order = commit-sequence order) calls
/// [`DurableLog::reserve`] inside its tiny sequencing section, does its
/// expensive work (version installs, record serialization) outside any
/// global lock, then calls [`DurableLog::fill`]. Filled slots become visible
/// to readers only as a contiguous prefix: the fill that closes a gap
/// publishes the whole contiguous run behind it in one step — a group
/// commit — with a single wake-up for tail readers. Readers can therefore
/// never observe a gap or a torn batch. [`DurableLog::append`] is the
/// one-shot convenience (reserve + fill) for writers with no ordering
/// constraint of their own.
///
/// Tail reads are event-driven: [`DurableLog::wait_read_from`] parks on a
/// condvar that the publishing fill signals, so subscribers wake as soon as
/// a contiguous run lands instead of on a polling interval. A blocked tail
/// read is released by its caller-owned cancel flag via
/// [`DurableLog::notify_waiters`].
pub struct DurableLog {
    inner: Mutex<LogInner>,
    appended: Condvar,
}

struct LogInner {
    /// Reserved slots; `None` = reserved but not yet filled.
    slots: Vec<Option<Bytes>>,
    /// Length of the contiguous filled prefix visible to readers.
    visible: usize,
}

impl Default for DurableLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DurableLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        DurableLog {
            inner: Mutex::new(LogInner {
                slots: Vec::new(),
                visible: 0,
            }),
            appended: Condvar::new(),
        }
    }

    /// Reserves the next slot, returning its offset. The caller must
    /// eventually [`DurableLog::fill`] it; readers cannot see this slot (or
    /// any later one) until every slot up to and including it is filled.
    pub fn reserve(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.slots.push(None);
        inner.slots.len() as u64 - 1
    }

    /// Fills a reserved slot. Serialization happens outside the log lock;
    /// if this fill closes the gap at the visible watermark, the whole
    /// contiguous run of filled slots behind it publishes at once (group
    /// commit) with one reader wake-up. Returns the new visible length when
    /// this fill advanced the watermark (`None` if an earlier slot is still
    /// open), so the gap-closing filler can publish the run downstream.
    pub fn fill(&self, offset: u64, record: &LogRecord) -> Option<u64> {
        self.fill_encoded(offset, Bytes::from(encode_to_vec(record)))
    }

    /// Like [`DurableLog::fill`] with a pre-encoded record (the commit
    /// pipeline serializes outside the log lock while other committers run).
    pub fn fill_encoded(&self, offset: u64, encoded: Bytes) -> Option<u64> {
        let mut inner = self.inner.lock();
        let slot = &mut inner.slots[offset as usize];
        debug_assert!(slot.is_none(), "log slot {offset} filled twice");
        *slot = Some(encoded);
        // Advance the visible watermark over the contiguous filled prefix.
        let mut advanced = false;
        while inner.slots.get(inner.visible).is_some_and(|s| s.is_some()) {
            inner.visible += 1;
            advanced = true;
        }
        let visible = inner.visible as u64;
        drop(inner);
        if advanced {
            self.appended.notify_all();
            Some(visible)
        } else {
            None
        }
    }

    /// Appends a record in one step (reserve + fill), returning its offset.
    ///
    /// With concurrent appenders the record still publishes only when every
    /// earlier reserved slot has filled, so readers always see a gap-free
    /// prefix.
    pub fn append(&self, record: &LogRecord) -> u64 {
        let encoded = Bytes::from(encode_to_vec(record));
        let offset = {
            let mut inner = self.inner.lock();
            inner.slots.push(None);
            inner.slots.len() as u64 - 1
        };
        self.fill_encoded(offset, encoded);
        offset
    }

    /// Number of published (visible) records.
    pub fn len(&self) -> u64 {
        self.inner.lock().visible as u64
    }

    /// Number of reserved slots, published or not (tests, diagnostics).
    pub fn reserved_len(&self) -> u64 {
        self.inner.lock().slots.len() as u64
    }

    /// `true` if no records have been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total encoded bytes published.
    pub fn byte_size(&self) -> u64 {
        let inner = self.inner.lock();
        inner.slots[..inner.visible]
            .iter()
            .map(|b| b.as_ref().expect("visible slot filled").len() as u64)
            .sum()
    }

    /// Reads every published record at `offset` and beyond, returning
    /// `(records, total encoded bytes)`. Returns immediately (an empty batch
    /// if nothing new).
    pub fn read_from(&self, offset: u64) -> Result<(Vec<LogRecord>, usize)> {
        let inner = self.inner.lock();
        decode_batch(&inner, offset)
    }

    /// Like [`DurableLog::read_from`] but blocks until at least one record
    /// is published at or past `offset`, or `cancel` becomes `true`. Returns
    /// an empty batch only when cancelled.
    ///
    /// `cancel` is re-checked under the log lock on every wakeup, so a
    /// cancellation signalled through [`DurableLog::notify_waiters`] cannot
    /// be lost between the check and the park.
    pub fn wait_read_from(
        &self,
        offset: u64,
        cancel: &AtomicBool,
    ) -> Result<(Vec<LogRecord>, usize)> {
        let mut inner = self.inner.lock();
        while (inner.visible as u64) <= offset && !cancel.load(Ordering::Relaxed) {
            self.appended.wait(&mut inner);
        }
        decode_batch(&inner, offset)
    }

    /// Wakes every blocked [`DurableLog::wait_read_from`] so it can observe
    /// its cancel flag. Set the flag before calling this; taking the log
    /// lock here orders the store before any waiter's re-check.
    pub fn notify_waiters(&self) {
        let _inner = self.inner.lock();
        self.appended.notify_all();
    }

    /// Reads the single published record at `offset`, if present. Used by
    /// recovery's replay scheduler, which needs cheap random access.
    pub fn get(&self, offset: u64) -> Result<Option<LogRecord>> {
        let inner = self.inner.lock();
        if (offset as usize) >= inner.visible {
            return Ok(None);
        }
        let encoded = inner.slots[offset as usize]
            .as_ref()
            .expect("visible slot filled");
        let mut slice = encoded.clone();
        Ok(Some(LogRecord::decode(&mut slice)?))
    }
}

fn decode_batch(inner: &LogInner, offset: u64) -> Result<(Vec<LogRecord>, usize)> {
    let start = (offset as usize).min(inner.visible);
    let mut records = Vec::with_capacity(inner.visible - start);
    let mut bytes = 0;
    for encoded in &inner.slots[start..inner.visible] {
        let encoded = encoded.as_ref().expect("visible slot filled");
        bytes += encoded.len();
        let mut slice = encoded.clone();
        records.push(LogRecord::decode(&mut slice)?);
    }
    Ok((records, bytes))
}

/// One durable log per site (one Kafka topic per site in the paper).
#[derive(Clone)]
pub struct LogSet {
    logs: Vec<Arc<DurableLog>>,
}

impl LogSet {
    /// Creates `num_sites` empty logs.
    pub fn new(num_sites: usize) -> Self {
        LogSet {
            logs: (0..num_sites)
                .map(|_| Arc::new(DurableLog::new()))
                .collect(),
        }
    }

    /// The log owned by `site`.
    pub fn log(&self, site: SiteId) -> &Arc<DurableLog> {
        &self.logs[site.as_usize()]
    }

    /// Number of sites/logs.
    pub fn num_sites(&self) -> usize {
        self.logs.len()
    }

    /// All logs in site order.
    pub fn logs(&self) -> &[Arc<DurableLog>] {
        &self.logs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamast_common::VersionVector;
    use std::thread;
    use std::time::Duration;

    fn commit(origin: usize, seq: u64) -> LogRecord {
        let mut tvv = VersionVector::zero(2);
        tvv.set(SiteId::new(origin), seq);
        LogRecord::Commit {
            origin: SiteId::new(origin),
            tvv,
            writes: vec![],
        }
    }

    #[test]
    fn append_assigns_sequential_offsets() {
        let log = DurableLog::new();
        assert_eq!(log.append(&commit(0, 1)), 0);
        assert_eq!(log.append(&commit(0, 2)), 1);
        assert_eq!(log.len(), 2);
        assert!(log.byte_size() > 0);
    }

    #[test]
    fn read_from_returns_suffix() {
        let log = DurableLog::new();
        for i in 1..=5 {
            log.append(&commit(0, i));
        }
        let (records, bytes) = log.read_from(3).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].sequence(), 4);
        assert!(bytes > 0);
        let (empty, b) = log.read_from(99).unwrap();
        assert!(empty.is_empty());
        assert_eq!(b, 0);
    }

    #[test]
    fn unfilled_reservation_hides_later_fills() {
        let log = DurableLog::new();
        let s1 = log.reserve();
        let s2 = log.reserve();
        log.fill(s2, &commit(0, 2));
        // Slot 2 is filled but slot 1 is not: nothing is visible.
        assert_eq!(log.len(), 0);
        assert!(log.get(s2).unwrap().is_none());
        assert_eq!(log.reserved_len(), 2);
        // Filling the gap publishes the whole contiguous run at once.
        log.fill(s1, &commit(0, 1));
        assert_eq!(log.len(), 2);
        let (records, _) = log.read_from(0).unwrap();
        let seqs: Vec<u64> = records.iter().map(|r| r.sequence()).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn gap_fill_wakes_reader_with_whole_run() {
        let log = Arc::new(DurableLog::new());
        let s1 = log.reserve();
        let s2 = log.reserve();
        let s3 = log.reserve();
        log.fill(s2, &commit(0, 2));
        log.fill(s3, &commit(0, 3));
        let log2 = Arc::clone(&log);
        let reader = thread::spawn(move || {
            let cancel = AtomicBool::new(false);
            log2.wait_read_from(0, &cancel).unwrap().0
        });
        thread::sleep(Duration::from_millis(20));
        assert!(!reader.is_finished(), "gapped log must not deliver");
        log.fill(s1, &commit(0, 1));
        let records = reader.join().unwrap();
        assert_eq!(records.len(), 3, "one group publish delivers the run");
    }

    #[test]
    fn wait_read_wakes_on_append() {
        let log = Arc::new(DurableLog::new());
        let log2 = Arc::clone(&log);
        let cancel = Arc::new(AtomicBool::new(false));
        let cancel2 = Arc::clone(&cancel);
        let reader = thread::spawn(move || log2.wait_read_from(0, &cancel2).unwrap().0);
        thread::sleep(Duration::from_millis(20));
        log.append(&commit(1, 1));
        let records = reader.join().unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn wait_read_returns_empty_when_cancelled() {
        let log = Arc::new(DurableLog::new());
        let log2 = Arc::clone(&log);
        let cancel = Arc::new(AtomicBool::new(false));
        let cancel2 = Arc::clone(&cancel);
        let reader = thread::spawn(move || log2.wait_read_from(0, &cancel2).unwrap().0);
        thread::sleep(Duration::from_millis(20));
        cancel.store(true, Ordering::Relaxed);
        log.notify_waiters();
        let records = reader.join().unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn pre_cancelled_wait_read_returns_immediately() {
        let log = DurableLog::new();
        let cancel = AtomicBool::new(true);
        let (records, _) = log.wait_read_from(0, &cancel).unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn log_set_gives_each_site_its_own_log() {
        let set = LogSet::new(3);
        set.log(SiteId::new(1)).append(&commit(1, 1));
        assert_eq!(set.log(SiteId::new(0)).len(), 0);
        assert_eq!(set.log(SiteId::new(1)).len(), 1);
        assert_eq!(set.num_sites(), 3);
    }
}
