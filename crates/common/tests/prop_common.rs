//! Property-based tests for the foundation types: version-vector algebra,
//! the update application rule, and codec roundtrips.

use bytes::BytesMut;
use dynamast_common::codec::{Decode, Encode};
use dynamast_common::ids::SiteId;
use dynamast_common::{Row, Value, VersionVector};
use proptest::prelude::*;

fn vv_strategy(dims: usize) -> impl Strategy<Value = VersionVector> {
    prop::collection::vec(0u64..1000, dims).prop_map(VersionVector::from_counts)
}

proptest! {
    #[test]
    fn merge_max_is_commutative(a in vv_strategy(4), b in vv_strategy(4)) {
        prop_assert_eq!(a.max_with(&b), b.max_with(&a));
    }

    #[test]
    fn merge_max_is_associative(
        a in vv_strategy(4),
        b in vv_strategy(4),
        c in vv_strategy(4),
    ) {
        prop_assert_eq!(a.max_with(&b).max_with(&c), a.max_with(&b.max_with(&c)));
    }

    #[test]
    fn merge_max_is_idempotent_and_dominating(a in vv_strategy(4), b in vv_strategy(4)) {
        let m = a.max_with(&b);
        prop_assert_eq!(m.max_with(&a), m.clone());
        prop_assert!(m.dominates(&a));
        prop_assert!(m.dominates(&b));
    }

    #[test]
    fn dominance_is_antisymmetric(a in vv_strategy(4), b in vv_strategy(4)) {
        if a.dominates(&b) && b.dominates(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn dominance_is_transitive(
        a in vv_strategy(3),
        b in vv_strategy(3),
        c in vv_strategy(3),
    ) {
        let ab = a.max_with(&b); // ab dominates b
        let abc = ab.max_with(&c); // abc dominates ab
        prop_assert!(abc.dominates(&b));
    }

    /// Eq. 1 admits exactly one record per origin at a time: the rule can
    /// hold for at most one sequence number per origin given a fixed state.
    #[test]
    fn update_application_rule_is_deterministic(
        svv in vv_strategy(3),
        origin in 0usize..3,
        deps in vv_strategy(3),
    ) {
        let origin = SiteId::new(origin);
        let mut admissible = 0;
        for seq_offset in 0..4u64 {
            let mut tvv = deps.clone();
            tvv.set(origin, svv.get(origin) + seq_offset);
            if svv.can_apply_refresh(&tvv, origin) {
                admissible += 1;
                // Only the next-in-order sequence is admissible.
                prop_assert_eq!(tvv.get(origin), svv.get(origin) + 1);
            }
        }
        prop_assert!(admissible <= 1);
    }

    #[test]
    fn lag_behind_is_zero_iff_dominating(a in vv_strategy(4), b in vv_strategy(4)) {
        prop_assert_eq!(a.lag_behind(&b) == 0, a.dominates(&b));
    }

    #[test]
    fn version_vector_codec_roundtrips(a in vv_strategy(8)) {
        let mut buf = BytesMut::new();
        a.encode(&mut buf);
        prop_assert_eq!(buf.len(), a.encoded_len());
        let mut bytes = buf.freeze();
        prop_assert_eq!(VersionVector::decode(&mut bytes).unwrap(), a);
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        ".{0,40}".prop_map(Value::Str),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
    ]
}

proptest! {
    #[test]
    fn row_codec_roundtrips(cells in prop::collection::vec(value_strategy(), 0..6)) {
        let row = Row::new(cells);
        let mut buf = BytesMut::new();
        row.encode(&mut buf);
        prop_assert_eq!(buf.len(), row.encoded_len());
        let mut bytes = buf.freeze();
        prop_assert_eq!(Row::decode(&mut bytes).unwrap(), row);
    }

    /// Truncated encodings must error, never panic or return garbage Ok.
    #[test]
    fn truncated_rows_fail_cleanly(
        cells in prop::collection::vec(value_strategy(), 1..4),
        cut in 0usize..32,
    ) {
        let row = Row::new(cells);
        let mut buf = BytesMut::new();
        row.encode(&mut buf);
        let len = buf.len();
        if cut < len {
            let mut truncated = buf.freeze().slice(0..len - cut - 1);
            // Either an error, or a valid prefix decode that consumed
            // everything it needed (impossible for a strict prefix of a
            // canonical encoding unless cut lands on a suffix of padding —
            // our codec has none, so decode must fail).
            prop_assert!(Row::decode(&mut truncated).is_err());
        }
    }
}

proptest! {
    /// A latency can never be reported above its own bucket's upper bound:
    /// `bucket_for` and `bucket_upper_micros` must agree at every boundary
    /// (except the final catch-all bucket, which is open-ended).
    #[test]
    fn histogram_bucket_bounds_contain_their_values(micros in 1u64..100_000_000) {
        use dynamast_common::metrics::{bucket_for, bucket_upper_micros, BUCKETS};
        let bucket = bucket_for(micros);
        prop_assert!(bucket < BUCKETS);
        if bucket + 1 < BUCKETS {
            prop_assert!(
                micros <= bucket_upper_micros(bucket),
                "{micros}us lands in bucket {bucket} whose upper bound is {}us",
                bucket_upper_micros(bucket)
            );
        }
        // The bucket below (if any) must end strictly before this value.
        if bucket > 0 {
            prop_assert!(bucket_upper_micros(bucket - 1) < micros);
        }
    }

    /// Larger latencies never land in smaller buckets, and bucket upper
    /// bounds never decrease.
    #[test]
    fn histogram_bucketing_is_monotone(a in 1u64..100_000_000, b in 1u64..100_000_000) {
        use dynamast_common::metrics::{bucket_for, bucket_upper_micros};
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_for(lo) <= bucket_for(hi));
        prop_assert!(bucket_upper_micros(bucket_for(lo)) <= bucket_upper_micros(bucket_for(hi)));
    }

    /// Quantiles are monotone in `q`, bounded by the recorded maximum, and
    /// `quantile(1.0)` reports exactly `max()`.
    #[test]
    fn histogram_quantiles_are_monotone_and_meet_max(
        samples in prop::collection::vec(1u64..50_000_000, 1..200),
        qa in 0u32..=100,
        qb in 0u32..=100,
    ) {
        use dynamast_common::metrics::LatencyHistogram;
        use std::time::Duration;
        let hist = LatencyHistogram::new();
        for &micros in &samples {
            hist.record(Duration::from_micros(micros));
        }
        prop_assert_eq!(hist.count(), samples.len() as u64);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let q_lo = hist.quantile(f64::from(lo) / 100.0);
        let q_hi = hist.quantile(f64::from(hi) / 100.0);
        prop_assert!(q_lo <= q_hi, "quantile({lo}%) {q_lo:?} > quantile({hi}%) {q_hi:?}");
        prop_assert!(q_hi <= hist.max());
        prop_assert_eq!(hist.quantile(1.0), hist.max());
    }
}

proptest! {
    /// The Zipfian sampler is a valid distribution over its domain and
    /// monotonically favours lower ranks.
    #[test]
    fn zipfian_head_beats_tail(seed in any::<u64>()) {
        use dynamast_common::dist::Zipfian;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let z = Zipfian::new(1000, 0.75);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut head = 0u32;
        let mut tail = 0u32;
        for _ in 0..2000 {
            let v = z.sample(&mut rng);
            prop_assert!(v < 1000);
            if v < 100 {
                head += 1;
            } else if v >= 900 {
                tail += 1;
            }
        }
        prop_assert!(head > tail, "head {head} vs tail {tail}");
    }
}
