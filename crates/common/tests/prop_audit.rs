//! Property tests for the audit plane's foundation: draining the flight
//! recorder's per-thread rings and merging by timestamp must yield
//! per-partition write histories ordered by commit stamp for every origin,
//! and ring-wrap loss must degrade the audit to "incomplete" — never to a
//! fabricated violation — while a lossless run over a clean schedule stays
//! both complete and silent.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;

use dynamast_common::audit::{emit_write_effect, AuditConfig, AuditSink};
use dynamast_common::{FlightRecorder, TracePayload};
use proptest::prelude::*;

const ORIGINS: u32 = 2;
const KEYS_PER_ORIGIN: u64 = 8;

/// One transfer commit at an origin: move `delta` from key `a` to key `b`
/// (indices into the origin's private key range, so the per-key version
/// chains never cross threads).
#[derive(Debug, Clone)]
struct Commit {
    a: u64,
    b: u64,
    delta: i64,
}

fn commit_strategy() -> impl Strategy<Value = Commit> {
    (0..KEYS_PER_ORIGIN, 0..KEYS_PER_ORIGIN - 1, 1i64..50).prop_map(|(a, off, delta)| {
        let b = (a + 1 + off) % KEYS_PER_ORIGIN;
        Commit { a, b, delta }
    })
}

fn partition_of(origin: u32, key: u64) -> u64 {
    origin as u64 * 100 + key / 4
}

fn record_of(origin: u32, key: u64) -> u64 {
    origin as u64 * 1_000 + key
}

/// Emits each origin's commit schedule from its own thread — transfers are
/// zero-sum and every install claims the exact version it overwrote, i.e. a
/// violation-free history by construction.
fn emit_schedule(recorder: &Arc<FlightRecorder>, schedules: &[Vec<Commit>]) {
    let handles: Vec<_> = schedules
        .iter()
        .enumerate()
        .map(|(o, commits)| {
            let origin = o as u32;
            let recorder = Arc::clone(recorder);
            let commits = commits.clone();
            thread::spawn(move || {
                // Populated balances stand in as commit (origin, 0).
                let mut chain: HashMap<u64, (i64, u64)> =
                    (0..KEYS_PER_ORIGIN).map(|k| (k, (1_000, 0))).collect();
                for (i, c) in commits.iter().enumerate() {
                    let seq = i as u64 + 1;
                    for (key, delta) in [(c.a, -c.delta), (c.b, c.delta)] {
                        let (prev_value, prev_seq) = chain[&key];
                        let value = prev_value + delta;
                        emit_write_effect(
                            &recorder,
                            seq,
                            origin,
                            partition_of(origin, key),
                            7,
                            record_of(origin, key),
                            Some((prev_value, origin, prev_seq)),
                            value,
                            origin,
                            seq,
                            1,
                            0,
                            false,
                        );
                        chain.insert(key, (value, seq));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Drain + merge yields, for every (partition, origin), a history in
    /// commit-stamp order — whether or not the ring wrapped (a wrap loses a
    /// prefix of a thread's history, never reorders its suffix). Feeding
    /// the same drain through the auditor: a lossless run is complete and
    /// silent, a wrapped run degrades to incomplete and stays silent.
    #[test]
    fn drained_histories_are_stamp_ordered_and_loss_never_fabricates(
        schedules in prop::collection::vec(
            prop::collection::vec(commit_strategy(), 1..40),
            ORIGINS as usize..=ORIGINS as usize,
        ),
        small_ring in any::<bool>(),
    ) {
        let capacity = if small_ring { 16 } else { 4_096 };
        let recorder = FlightRecorder::new(capacity);
        recorder.set_audit(true);
        emit_schedule(&recorder, &schedules);

        let (events, wrapped) = recorder.drain_accounted();

        // Per-(partition, origin) histories must be ordered by commit stamp
        // after the cross-thread merge.
        let mut last_seq: HashMap<(u64, u32), u64> = HashMap::new();
        for ev in &events {
            if let TracePayload::WriteEffect { partition, origin, sequence, .. } = ev.payload {
                let prev = last_seq.entry((partition, origin)).or_insert(0);
                prop_assert!(
                    sequence >= *prev,
                    "partition {partition} history out of stamp order for origin \
                     {origin}: {sequence} after {prev}"
                );
                *prev = sequence;
            }
        }

        let sink = AuditSink::offline(
            Arc::clone(&recorder),
            AuditConfig { conservation: true, ..AuditConfig::default() },
        );
        sink.ingest(&events, wrapped > 0);
        let report = sink.finish();
        prop_assert!(
            report.violations.is_empty(),
            "clean schedule flagged (wrapped={wrapped}): {:?}",
            report.violations
        );
        if wrapped == 0 {
            prop_assert!(!report.incomplete, "lossless run must be complete");
            let expected: u64 = schedules.iter().map(|s| s.len() as u64 * 2).sum();
            prop_assert_eq!(report.events, expected);
        } else {
            prop_assert!(report.incomplete, "wrap must degrade to incomplete");
        }
    }
}
