//! Invariant audit plane: streaming checkers over the flight recorder.
//!
//! DynaMast's correctness rests on invariants the rest of the system takes
//! as axioms: exactly one master writes a partition at any instant, and
//! remastering hands mastership off without losing or duplicating any
//! update. The tests assert these *post hoc* (final balances, mastership
//! maps); this module checks them *online* while the run is in flight, so
//! a violation is pinned to the exact overwritten write the moment it
//! happens instead of 100+ runs later at the final sum.
//!
//! The plane has three pieces:
//!
//! 1. **Events** — [`TracePayload::WriteEffect`] emitted at every version
//!    install (commit-side and refresh-side) and [`TracePayload::Ownership`]
//!    at every release/grant, both behind the recorder's
//!    [`FlightRecorder::set_audit`] arm flag so an unarmed run pays nothing.
//! 2. **The sink** — [`AuditSink`] drains the per-thread recorder rings on a
//!    background thread, merges them, and runs the online checkers below.
//! 3. **Black-box bundles** — on violation, a bounded repro bundle (seed,
//!    crash detail, the exact offending `(partition, key, (origin, seq))`
//!    tuple, and the causal timelines of the recent event tail) is written
//!    to disk with keep-newest-N rotation.
//!
//! ## Checkers
//!
//! * **Double master** — per `(site, partition)` the site's own
//!   release/grant records and commit-side writes all carry that site's
//!   pipeline commit sequence, a total order. A write sequenced after a
//!   release with no intervening grant means the site wrote a partition it
//!   had handed off. Verdicts are deferred one poll so cross-thread drain
//!   races can't misorder a grant behind a later write.
//! * **Lost update** — every commit-side install captures the stamp of the
//!   version it overwrote (read under the held write locks, so it *is* the
//!   replaced version). Two writes claiming the same parent stamp on one
//!   key is a lost update, order-independently and with zero false
//!   positives.
//! * **Exactly-once install** — duplicate `(origin, seq, key)` commit-side,
//!   or duplicate `(site, origin, seq, key)` refresh-side.
//! * **svv monotonicity** — per `(site, origin)` the refresh frontier
//!   (`thru_seq` of applied batches) must never regress.
//! * **Refresh completeness** — the keys each origin commit wrote are
//!   remembered in a bounded window; when a replica's refresh frontier for
//!   that origin passes a sequence without having installed its keys, the
//!   missing `(partition, key, (origin, seq))` is reported.
//! * **Conservation** — (opt-in) commit-side deltas (`value - prev`) are
//!   grouped by `(origin, seq)`; a transfer workload's groups must each be
//!   zero-sum, even under at-least-once re-execution (a re-executed
//!   transfer is a fresh commit group, itself zero-sum).
//!
//! ## Loss handling
//!
//! Ring wrap and drop-on-contention lose events. Every checker degrades to
//! "audit incomplete" under loss rather than reporting a false violation:
//! checkers where loss can only *hide* a violation (lost update,
//! exactly-once, svv regression, conservation-within-a-lossless-window)
//! stay active; checkers where loss could *fabricate* one (double master,
//! refresh completeness) reset or disarm.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::metrics::Counter;
use crate::trace::{
    render_timelines, FlightRecorder, TraceEvent, TraceKind, TracePayload, TraceSite,
};
use crate::value::{Row, Value};

/// How many recent events the sink retains for black-box bundles. The sink
/// drains the recorder rings, so it must keep its own bounded tail to have
/// any history to render when a violation fires.
const TAIL_CAPACITY: usize = 4096;

/// Per-origin window (in commit sequences) of remembered write sets and
/// install stamps. Older state is pruned; a check that would need pruned
/// state is skipped (coverage loss, never a false positive).
const SEQ_WINDOW: u64 = 4096;

/// Per-key cap on remembered parent stamps for the lost-update checker.
const PARENT_CAP: usize = 8192;

/// Configuration for an [`AuditSink`].
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Check per-commit zero-sum conservation (transfer-only workloads).
    pub conservation: bool,
    /// Where to write black-box repro bundles; `None` disables bundles.
    pub bundle_dir: Option<PathBuf>,
    /// Keep at most this many bundles in `bundle_dir` (oldest pruned).
    pub bundle_keep: usize,
    /// Reproduction seed recorded in bundles.
    pub seed: u64,
    /// Free-form run detail (crash point, fault plan) recorded in bundles.
    pub detail: String,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            conservation: false,
            bundle_dir: None,
            bundle_keep: 8,
            seed: 0,
            detail: String::new(),
        }
    }
}

/// What invariant a [`Violation`] breaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A site wrote a partition after releasing it and before any grant.
    DoubleMaster,
    /// Two writes overwrote the same parent version of one key.
    LostUpdate,
    /// The same `(origin, seq)` installed a key twice.
    DuplicateInstall,
    /// A replica's refresh frontier for an origin moved backwards.
    SvvRegression,
    /// A replica's refresh frontier passed a commit without installing
    /// one of its keys.
    MissingInstall,
    /// A commit group's value deltas did not sum to zero.
    ConservationBreach,
}

impl ViolationKind {
    /// Short slug used in bundle file names.
    pub fn slug(&self) -> &'static str {
        match self {
            ViolationKind::DoubleMaster => "double-master",
            ViolationKind::LostUpdate => "lost-update",
            ViolationKind::DuplicateInstall => "duplicate-install",
            ViolationKind::SvvRegression => "svv-regression",
            ViolationKind::MissingInstall => "missing-install",
            ViolationKind::ConservationBreach => "conservation-breach",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

/// One confirmed invariant violation, naming the exact offending
/// `(partition, key, (origin, seq))`.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Partition of the offending key.
    pub partition: u64,
    /// Table component of the offending key.
    pub table: u32,
    /// Record component of the offending key.
    pub record: u64,
    /// Origin site of the offending commit stamp.
    pub origin: u32,
    /// Commit sequence of the offending stamp.
    pub sequence: u64,
    /// Human-readable detail (both writers, sums, frontiers).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: p{} key=({},{}) stamp=(site{},{}) — {}",
            self.kind,
            self.partition,
            self.table,
            self.record,
            self.origin,
            self.sequence,
            self.detail
        )
    }
}

/// The outcome of an audited run, returned by [`AuditSink::finish`].
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Audit-relevant events processed (write/ownership/refresh).
    pub events: u64,
    /// Confirmed violations, in detection order.
    pub violations: Vec<Violation>,
    /// `true` if any ring wrap or drop forced a checker to degrade: the
    /// run's clean bill of health is then partial, not total.
    pub incomplete: bool,
    /// Events lost to ring wrap across the run.
    pub ring_wraps: u64,
}

/// A commit-side write pending double-master confirmation.
struct OwnCandidate {
    site: u32,
    partition: u64,
    seq: u64,
    table: u32,
    record: u64,
    value: i64,
    release_seq: u64,
    release_epoch: u64,
    seen_poll: u64,
}

/// First commit-side claim of a parent version stamp.
#[derive(Clone, Copy)]
struct WriteClaim {
    origin: u32,
    sequence: u64,
    value: i64,
    partition: u64,
}

/// One (origin, seq) commit group accumulating conservation deltas.
struct Group {
    sum: i64,
    members: Vec<(u64, u32, u64, i64)>,
    first_poll: u64,
    last_poll: u64,
    prev_missing: bool,
}

/// One site+partition's ownership transitions, keyed by the site's commit
/// sequence: `(acquired, epoch, suspect)`.
type TransitionLog = BTreeMap<u64, (bool, u64, bool)>;

/// The keys one origin commit wrote, as `(partition, table, record)`.
type WriteSet = Vec<(u64, u32, u64)>;

#[derive(Default)]
struct AuditState {
    poll_no: u64,
    incomplete: bool,
    lossy_ever: bool,
    violations: Vec<Violation>,
    /// Bounded recent-event tail for bundle timelines.
    tail: VecDeque<TraceEvent>,
    /// Double master: per (site, partition), ownership transitions keyed by
    /// the site's commit sequence: `(acquired, epoch, suspect)`. A release
    /// is `suspect` when recorded inside the straggler window after a lossy
    /// drain — it may precede a grant that was lost, so it never grounds a
    /// double-master verdict.
    transitions: HashMap<(u32, u64), TransitionLog>,
    own_candidates: Vec<OwnCandidate>,
    /// Polls at or before this index sit in the post-loss straggler window.
    suspect_until_poll: u64,
    /// Lost update: per key, parent stamp -> first claiming write.
    parents: HashMap<(u32, u64), BTreeMap<(u32, u64), WriteClaim>>,
    /// Exactly-once: commit-side installs seen, (origin, seq, table, record).
    installed: HashSet<(u32, u64, u32, u64)>,
    /// Exactly-once: refresh installs seen, (site, origin, seq, table, record).
    refresh_installed: HashSet<(u32, u32, u64, u32, u64)>,
    /// Skips declared by the partial-replication subscription filter,
    /// (site, origin, seq, table, record): the record was deliberately not
    /// installed because the site does not host its partition. Satisfies
    /// the refresh-completeness obligation for that key.
    refresh_skips: HashSet<(u32, u32, u64, u32, u64)>,
    /// svv monotonicity: (site, origin) -> highest refresh frontier seen.
    refresh_frontier: HashMap<(u32, u32), u64>,
    /// Refresh completeness: origin -> seq -> keys written at that commit.
    origin_writes: HashMap<u32, BTreeMap<u64, WriteSet>>,
    /// Pending frontier checks: (site, origin) -> (thru_seq, seen_poll).
    refresh_checks: HashMap<(u32, u32), (u64, u64)>,
    /// Refresh completeness verified up to this seq per (site, origin).
    refresh_checked: HashMap<(u32, u32), u64>,
    /// Highest commit sequence seen per origin (window pruning).
    origin_max_seq: HashMap<u32, u64>,
    /// Conservation groups pending finalization.
    groups: HashMap<(u32, u64), Group>,
    /// Groups first seen at or before this poll are conservation-tainted
    /// (a lossy drain may have swallowed members).
    tainted_until_poll: u64,
    /// Sites whose stores were rebuilt by unaudited crash-recovery replay:
    /// the first refresh frontier per (site, origin) after a restart
    /// re-baselines completeness instead of checking across the replay
    /// window.
    restarted: HashSet<u32>,
}

/// Streaming invariant auditor over a [`FlightRecorder`].
///
/// Create with [`AuditSink::arm`] for live runs (spawns a background drain
/// thread and arms the recorder), or [`AuditSink::offline`] plus
/// [`AuditSink::ingest`] for deterministic detector self-tests.
pub struct AuditSink {
    recorder: Arc<FlightRecorder>,
    config: AuditConfig,
    state: Mutex<AuditState>,
    events: Arc<Counter>,
    violations: Arc<Counter>,
    ring_wraps: Arc<Counter>,
    stop: Arc<AtomicBool>,
    worker: Mutex<Option<JoinHandle<()>>>,
    dropped_floor: AtomicU64,
    bundle_counter: AtomicU64,
}

impl AuditSink {
    /// Creates a sink without arming the recorder or spawning the drain
    /// thread — events are supplied directly via [`AuditSink::ingest`].
    pub fn offline(recorder: Arc<FlightRecorder>, config: AuditConfig) -> Arc<AuditSink> {
        Arc::new(AuditSink {
            dropped_floor: AtomicU64::new(recorder.dropped()),
            recorder,
            config,
            state: Mutex::new(AuditState::default()),
            events: Arc::new(Counter::new()),
            violations: Arc::new(Counter::new()),
            ring_wraps: Arc::new(Counter::new()),
            stop: Arc::new(AtomicBool::new(false)),
            worker: Mutex::new(None),
            bundle_counter: AtomicU64::new(0),
        })
    }

    /// Arms audit-event emission on the recorder and starts a background
    /// thread draining it every couple of milliseconds.
    pub fn arm(recorder: Arc<FlightRecorder>, config: AuditConfig) -> Arc<AuditSink> {
        let sink = Self::offline(recorder, config);
        // Value signatures only cost something when a checker consumes
        // them: the conservation checker sums signature deltas, the
        // ownership/exactly-once checkers run on stamps alone.
        sink.recorder.set_audit_values(sink.config.conservation);
        sink.recorder.set_audit(true);
        let worker_sink = Arc::clone(&sink);
        let stop = Arc::clone(&sink.stop);
        let handle = std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                worker_sink.poll();
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        *sink.worker.lock() = Some(handle);
        sink
    }

    /// Counter of audit-relevant events processed.
    pub fn events_counter(&self) -> Arc<Counter> {
        Arc::clone(&self.events)
    }

    /// Counter of confirmed violations.
    pub fn violations_counter(&self) -> Arc<Counter> {
        Arc::clone(&self.violations)
    }

    /// Counter of events lost to ring wrap while audited.
    pub fn ring_wraps_counter(&self) -> Arc<Counter> {
        Arc::clone(&self.ring_wraps)
    }

    /// Drains the recorder once and runs the checkers over the batch.
    pub fn poll(&self) {
        let (events, wrapped) = self.recorder.drain_accounted();
        let dropped_now = self.recorder.dropped();
        let dropped_prev = self.dropped_floor.swap(dropped_now, Ordering::Relaxed);
        let lost = wrapped + dropped_now.saturating_sub(dropped_prev);
        if wrapped > 0 {
            self.ring_wraps.add(wrapped);
        }
        self.ingest(&events, lost > 0);
    }

    /// Feeds one batch of events through the checkers. `lossy` marks the
    /// batch as having lost events (ring wrap / drop) since the previous
    /// batch; checkers degrade rather than risk a false violation.
    pub fn ingest(&self, events: &[TraceEvent], lossy: bool) {
        let mut state = self.state.lock();
        let state = &mut *state;
        state.poll_no += 1;
        let now = state.poll_no;
        if lossy {
            state.incomplete = true;
            state.lossy_ever = true;
            // A missing grant could make an honest write look masterless:
            // reset ownership knowledge, drop unconfirmed candidates, and
            // treat releases recorded in the next poll as suspect (their
            // matching grant may be among the lost events).
            state.transitions.clear();
            state.own_candidates.clear();
            state.suspect_until_poll = now + 1;
            // A missing member could make an honest group look unbalanced.
            state.groups.clear();
            state.tainted_until_poll = now + 1;
        }

        let mut fresh: Vec<Violation> = Vec::new();
        let mut relevant = 0u64;
        for ev in events {
            match &ev.payload {
                TracePayload::None if ev.kind == TraceKind::SiteRestart => {
                    relevant += 1;
                    if let TraceSite::Site(site) = ev.site {
                        Self::forget_site(state, site);
                    }
                }
                TracePayload::WriteEffect {
                    table,
                    record,
                    origin,
                    sequence,
                    ..
                } if ev.kind == TraceKind::RefreshSkip => {
                    relevant += 1;
                    if let TraceSite::Site(site) = ev.site {
                        state
                            .refresh_skips
                            .insert((site, *origin, *sequence, *table, *record));
                    }
                }
                TracePayload::WriteEffect { .. } => {
                    relevant += 1;
                    Self::ingest_write(state, ev, now, &mut fresh, &self.config);
                }
                TracePayload::Ownership {
                    partition,
                    site,
                    sequence,
                    epoch,
                    acquired,
                } => {
                    relevant += 1;
                    let suspect = !acquired && now <= state.suspect_until_poll;
                    state
                        .transitions
                        .entry((*site, *partition))
                        .or_default()
                        .insert(*sequence, (*acquired, *epoch, suspect));
                }
                TracePayload::Refresh {
                    origin, sequence, ..
                } => {
                    relevant += 1;
                    let site = match ev.site {
                        TraceSite::Site(s) => s,
                        _ => continue,
                    };
                    let key = (site, *origin);
                    let prev = state.refresh_frontier.get(&key).copied().unwrap_or(0);
                    if *sequence < prev && !lossy {
                        fresh.push(Violation {
                            kind: ViolationKind::SvvRegression,
                            partition: 0,
                            table: 0,
                            record: 0,
                            origin: *origin,
                            sequence: *sequence,
                            detail: format!(
                                "site{site} refresh frontier for origin site{origin} \
                                 regressed {prev} -> {sequence}"
                            ),
                        });
                    }
                    if *sequence > prev {
                        state.refresh_frontier.insert(key, *sequence);
                    }
                    // Queue a completeness check (deferred one poll so the
                    // origin's own write events have certainly arrived).
                    if site != *origin {
                        if state.restarted.contains(&site)
                            && !state.refresh_checked.contains_key(&key)
                        {
                            // First frontier after a restart: everything at
                            // or below it may have been installed by the
                            // unaudited recovery replay. Baseline, don't
                            // check.
                            state.refresh_checked.insert(key, *sequence);
                        } else {
                            let entry = state.refresh_checks.entry(key).or_insert((0, now));
                            if *sequence > entry.0 {
                                *entry = (*sequence, now);
                            }
                        }
                    }
                }
                _ => {}
            }
            state.tail.push_back(ev.clone());
            while state.tail.len() > TAIL_CAPACITY {
                state.tail.pop_front();
            }
        }
        self.events.add(relevant);

        Self::confirm_pending(state, &self.config, &mut fresh);
        Self::prune(state);
        for v in fresh {
            self.report(state, v);
        }
    }

    /// Stops the drain thread, runs the final confirmation rounds, disarms
    /// the recorder, and returns the run's report.
    pub fn finish(&self) -> AuditReport {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        self.poll();
        // One empty round so every deferred candidate becomes confirmable.
        self.ingest(&[], false);
        self.recorder.set_audit(false);
        self.recorder.set_audit_values(false);
        let state = self.state.lock();
        AuditReport {
            events: self.events.get(),
            violations: state.violations.clone(),
            incomplete: state.incomplete,
            ring_wraps: self.ring_wraps.get(),
        }
    }

    /// A site restart rebuilt that site's store by direct log replay — an
    /// unaudited path — and may have reset its volatile counters. Forget
    /// everything the checkers believed about the site so stale pre-crash
    /// knowledge cannot fabricate violations; each checker re-baselines
    /// from the site's next events. This mirrors the loss-soundness rule:
    /// forgetting can only hide evidence, never invent it.
    fn forget_site(state: &mut AuditState, site: u32) {
        state.restarted.insert(site);
        // Ownership: the rebuilt site re-derives mastership from the logs
        // without re-emitting transitions, so a pre-crash release would
        // read as "still released" against its post-restart writes.
        state.transitions.retain(|&(s, _), _| s != site);
        state.own_candidates.retain(|c| c.site != site);
        // Refresh (site as replica): replication resumes from recovered
        // offsets, so the first post-restart frontier may regress or span
        // replayed-but-unaudited installs.
        state.refresh_frontier.retain(|&(s, _), _| s != site);
        state.refresh_checks.retain(|&(s, _), _| s != site);
        state.refresh_checked.retain(|&(s, _), _| s != site);
        state.refresh_installed.retain(|&(s, _, _, _, _)| s != site);
        state.refresh_skips.retain(|&(s, _, _, _, _)| s != site);
        // Commit side (site as origin): a commit that installed and was
        // audited but missed the log is rolled back by the replay, so its
        // sequence can be legitimately reused; drop the origin's write
        // history rather than risk false duplicates or false missing
        // installs against it.
        state.installed.retain(|&(o, _, _, _)| o != site);
        state.origin_writes.remove(&site);
        state.origin_max_seq.remove(&site);
        state.groups.retain(|&(o, _), _| o != site);
        for claims in state.parents.values_mut() {
            claims.retain(|_, c| c.origin != site);
        }
    }

    fn ingest_write(
        state: &mut AuditState,
        ev: &TraceEvent,
        now: u64,
        fresh: &mut Vec<Violation>,
        config: &AuditConfig,
    ) {
        let TracePayload::WriteEffect {
            partition,
            table,
            record,
            prev,
            value,
            prev_origin,
            prev_seq,
            origin,
            sequence,
            epoch: _,
            generation: _,
            refresh,
        } = ev.payload
        else {
            return;
        };
        let installer = match ev.site {
            TraceSite::Site(s) => s,
            _ => origin,
        };

        if refresh {
            // Exactly-once per replica: the same origin commit must not
            // install the same key twice at one site. Loss can only hide a
            // duplicate, never fabricate one.
            if !state
                .refresh_installed
                .insert((installer, origin, sequence, table, record))
            {
                fresh.push(Violation {
                    kind: ViolationKind::DuplicateInstall,
                    partition,
                    table,
                    record,
                    origin,
                    sequence,
                    detail: format!(
                        "site{installer} refresh-installed key ({table},{record}) twice \
                         for commit (site{origin},{sequence})"
                    ),
                });
            }
            return;
        }

        let max = state.origin_max_seq.entry(origin).or_insert(0);
        if sequence > *max {
            *max = sequence;
        }

        // Exactly-once at the origin.
        if !state.installed.insert((origin, sequence, table, record)) {
            fresh.push(Violation {
                kind: ViolationKind::DuplicateInstall,
                partition,
                table,
                record,
                origin,
                sequence,
                detail: format!(
                    "origin site{origin} installed key ({table},{record}) twice \
                     at sequence {sequence}"
                ),
            });
        }

        // Remember the write set for the refresh-completeness checker.
        state
            .origin_writes
            .entry(origin)
            .or_default()
            .entry(sequence)
            .or_default()
            .push((partition, table, record));

        // Lost update: a second claim of the same parent version. The
        // parent stamp was read under the held write locks, so it is
        // exactly the version this install replaced; two claimants means
        // one of them never saw the other's write. Order-independent, and
        // loss can only hide a claimant.
        if prev_origin != u32::MAX {
            let claims = state.parents.entry((table, record)).or_default();
            match claims.get(&(prev_origin, prev_seq)) {
                Some(first) => {
                    let first = *first;
                    fresh.push(Violation {
                        kind: ViolationKind::LostUpdate,
                        partition,
                        table,
                        record,
                        origin,
                        sequence,
                        detail: format!(
                            "write (site{origin},{sequence}) value={value} overwrote parent \
                             (site{prev_origin},{prev_seq}) already claimed by \
                             (site{},{}) value={} on p{}",
                            first.origin, first.sequence, first.value, first.partition
                        ),
                    });
                }
                None => {
                    claims.insert(
                        (prev_origin, prev_seq),
                        WriteClaim {
                            origin,
                            sequence,
                            value,
                            partition,
                        },
                    );
                    while claims.len() > PARENT_CAP {
                        claims.pop_first();
                    }
                }
            }
        }

        // Double master: the write's predecessor in the site's own commit
        // order must not be an unmatched release. Defer the verdict one
        // poll in case a grant's event is still in another thread's ring;
        // skip entirely inside the post-loss straggler window.
        if now > state.suspect_until_poll {
            if let Some(trans) = state.transitions.get(&(installer, partition)) {
                if let Some((&rel_seq, &(acquired, rel_epoch, suspect))) =
                    trans.range(..sequence).next_back()
                {
                    if !acquired && !suspect {
                        state.own_candidates.push(OwnCandidate {
                            site: installer,
                            partition,
                            seq: sequence,
                            table,
                            record,
                            value,
                            release_seq: rel_seq,
                            release_epoch: rel_epoch,
                            seen_poll: now,
                        });
                    }
                }
            }
        }

        // Conservation: accumulate the commit group's delta.
        if config.conservation {
            let group = state.groups.entry((origin, sequence)).or_insert(Group {
                sum: 0,
                members: Vec::new(),
                first_poll: now,
                last_poll: now,
                prev_missing: false,
            });
            group.last_poll = now;
            if prev_origin == u32::MAX {
                group.prev_missing = true;
            } else {
                let delta = value.wrapping_sub(prev);
                group.sum = group.sum.wrapping_add(delta);
                group.members.push((partition, table, record, delta));
            }
        }
    }

    /// Confirms deferred verdicts whose grace poll has elapsed.
    fn confirm_pending(state: &mut AuditState, config: &AuditConfig, fresh: &mut Vec<Violation>) {
        let now = state.poll_no;

        // Double-master candidates: still release-preceded after the grace
        // poll means the write really ran without mastership.
        let mut kept = Vec::new();
        for cand in state.own_candidates.drain(..) {
            if cand.seen_poll >= now {
                kept.push(cand);
                continue;
            }
            let confirmed = state
                .transitions
                .get(&(cand.site, cand.partition))
                .and_then(|t| t.range(..cand.seq).next_back())
                .is_some_and(|(_, &(acquired, _, suspect))| !acquired && !suspect);
            if confirmed {
                fresh.push(Violation {
                    kind: ViolationKind::DoubleMaster,
                    partition: cand.partition,
                    table: cand.table,
                    record: cand.record,
                    origin: cand.site,
                    sequence: cand.seq,
                    detail: format!(
                        "site{} wrote key ({},{}) value={} at sequence {} after releasing \
                         p{} at sequence {} (epoch {}) with no intervening grant",
                        cand.site,
                        cand.table,
                        cand.record,
                        cand.value,
                        cand.seq,
                        cand.partition,
                        cand.release_seq,
                        cand.release_epoch
                    ),
                });
            }
        }
        state.own_candidates = kept;

        // Refresh completeness: a replica frontier that passed an origin
        // sequence must have installed every key that commit wrote. Any
        // loss ever disarms this checker — a swallowed install event would
        // otherwise read as a missing install.
        if !state.lossy_ever {
            let due: Vec<((u32, u32), u64)> = state
                .refresh_checks
                .iter()
                .filter(|(_, (_, seen))| *seen < now)
                .map(|(k, (thru, _))| (*k, *thru))
                .collect();
            for ((site, origin), thru) in due {
                state.refresh_checks.remove(&(site, origin));
                let from = state
                    .refresh_checked
                    .get(&(site, origin))
                    .copied()
                    .unwrap_or(0);
                let floor = state
                    .origin_max_seq
                    .get(&origin)
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(SEQ_WINDOW);
                if let Some(writes) = state.origin_writes.get(&origin) {
                    for (&seq, keys) in writes.range(from.max(floor) + 1..=thru) {
                        for &(partition, table, record) in keys {
                            if !state
                                .refresh_installed
                                .contains(&(site, origin, seq, table, record))
                                && !state
                                    .refresh_skips
                                    .contains(&(site, origin, seq, table, record))
                            {
                                fresh.push(Violation {
                                    kind: ViolationKind::MissingInstall,
                                    partition,
                                    table,
                                    record,
                                    origin,
                                    sequence: seq,
                                    detail: format!(
                                        "site{site} refresh frontier for origin site{origin} \
                                         passed sequence {thru} without installing key \
                                         ({table},{record}) of commit (site{origin},{seq})"
                                    ),
                                });
                            }
                        }
                    }
                }
                let checked = state.refresh_checked.entry((site, origin)).or_insert(0);
                if thru > *checked {
                    *checked = thru;
                }
            }
        } else {
            state.refresh_checks.clear();
        }

        // Conservation groups: a group whose last member arrived before
        // this poll is complete (a commit's install loop is one thread, so
        // a drain can split it across at most adjacent polls).
        if config.conservation {
            let due: Vec<(u32, u64)> = state
                .groups
                .iter()
                .filter(|(_, g)| g.last_poll < now)
                .map(|(k, _)| *k)
                .collect();
            for key in due {
                let group = state.groups.remove(&key).expect("group present");
                if group.first_poll <= state.tainted_until_poll {
                    state.incomplete = true;
                    continue;
                }
                if group.prev_missing {
                    state.incomplete = true;
                    continue;
                }
                if group.sum != 0 && !group.members.is_empty() {
                    let (origin, sequence) = key;
                    let (partition, table, record, _) = group.members[0];
                    let members = group
                        .members
                        .iter()
                        .map(|(p, t, r, d)| format!("p{p} ({t},{r}) delta={d}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    fresh.push(Violation {
                        kind: ViolationKind::ConservationBreach,
                        partition,
                        table,
                        record,
                        origin,
                        sequence,
                        detail: format!(
                            "commit (site{origin},{sequence}) deltas sum to {} — [{members}]",
                            group.sum
                        ),
                    });
                }
            }
        }
    }

    /// Bounds the sink's memory: old sequences fall out of the per-origin
    /// windows; checks that would have needed them are silently skipped.
    fn prune(state: &mut AuditState) {
        let floors: Vec<(u32, u64)> = state
            .origin_max_seq
            .iter()
            .map(|(o, max)| (*o, max.saturating_sub(SEQ_WINDOW)))
            .collect();
        for (origin, floor) in &floors {
            if let Some(writes) = state.origin_writes.get_mut(origin) {
                while writes
                    .first_key_value()
                    .is_some_and(|(&seq, _)| seq < *floor)
                {
                    writes.pop_first();
                }
            }
        }
        let cap = SEQ_WINDOW as usize * 8;
        if state.installed.len() > cap * 4 {
            let floor_of = |origin: u32| {
                floors
                    .iter()
                    .find(|(o, _)| *o == origin)
                    .map(|(_, f)| *f)
                    .unwrap_or(0)
            };
            state
                .installed
                .retain(|&(origin, seq, _, _)| seq >= floor_of(origin));
            state
                .refresh_installed
                .retain(|&(_, origin, seq, _, _)| seq >= floor_of(origin));
            state
                .refresh_skips
                .retain(|&(_, origin, seq, _, _)| seq >= floor_of(origin));
        }
    }

    /// Records a confirmed violation and writes its black-box bundle.
    fn report(&self, state: &mut AuditState, violation: Violation) {
        self.violations.inc();
        if let Some(dir) = &self.config.bundle_dir {
            let n = self.bundle_counter.fetch_add(1, Ordering::Relaxed);
            if let Err(err) = self.write_bundle(dir, n, &violation, state) {
                eprintln!("[audit] failed to write repro bundle: {err}");
            }
        }
        eprintln!("[audit] VIOLATION {violation}");
        state.violations.push(violation);
    }

    fn write_bundle(
        &self,
        dir: &Path,
        n: u64,
        violation: &Violation,
        state: &AuditState,
    ) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let name = format!("audit-{n:06}-{}.txt", violation.kind.slug());
        let path = dir.join(&name);
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(out, "DynaMast audit black box");
        let _ = writeln!(out, "seed: {:#x}", self.config.seed);
        if !self.config.detail.is_empty() {
            let _ = writeln!(out, "detail: {}", self.config.detail);
        }
        let _ = writeln!(out, "violation: {}", violation.kind);
        let _ = writeln!(
            out,
            "offending: p{} key=({},{}) stamp=(site{},{})",
            violation.partition,
            violation.table,
            violation.record,
            violation.origin,
            violation.sequence
        );
        let _ = writeln!(out, "{}", violation.detail);
        let tail: Vec<TraceEvent> = state.tail.iter().cloned().collect();
        let _ = writeln!(out, "\n--- recent events ({} retained) ---", tail.len());
        for ev in tail.iter().rev().take(256).rev() {
            let _ = writeln!(out, "{ev}");
        }
        let _ = writeln!(out, "\n--- causal timelines ---");
        let _ = writeln!(out, "{}", render_timelines(&tail, 8));
        let mut file = fs::File::create(&path)?;
        file.write_all(out.as_bytes())?;
        file.sync_all()?;
        prune_bundles(dir, self.config.bundle_keep)?;
        Ok(())
    }
}

/// Deletes the oldest `audit-*` bundles beyond `keep` (bundle names embed a
/// monotonically increasing counter, so lexicographic order is age order).
pub fn prune_bundles(dir: &Path, keep: usize) -> std::io::Result<()> {
    let mut bundles: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("audit-") && n.ends_with(".txt"))
        })
        .collect();
    bundles.sort();
    while bundles.len() > keep {
        let victim = bundles.remove(0);
        let _ = fs::remove_file(victim);
    }
    Ok(())
}

/// Signed signature of a row's value: numeric cells contribute their value,
/// string/byte cells a small order-sensitive hash. Equal rows have equal
/// signatures; for single-column numeric rows (SmallBank balances) the
/// signature *is* the value, so deltas are real debits/credits.
pub fn value_signature(row: &Row) -> i64 {
    let mut sig: i64 = 0;
    for cell in row.cells() {
        let part = match cell {
            Value::I64(v) => *v,
            Value::U64(v) => *v as i64,
            Value::Str(s) => fnv(s.as_bytes()),
            Value::Bytes(b) => fnv(b),
        };
        sig = sig.wrapping_mul(31).wrapping_add(part);
    }
    sig
}

/// FNV-style mix over four independent u64 lanes: signatures sit on the
/// commit hot path (two per audited install) and rows can be KB-sized, so
/// both a byte-at-a-time hash and a single serially-dependent multiply
/// chain would dominate the emission cost. Four lanes keep the multiplier
/// pipeline busy (~4 in-flight products instead of 1). Only determinism
/// matters — every site computes the same signature for the same bytes —
/// not compatibility with reference FNV.
fn fnv(bytes: &[u8]) -> i64 {
    const PRIME: u64 = 0x1000_0000_01b3;
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lanes = [
        SEED,
        SEED ^ 0x9e37_79b9_7f4a_7c15,
        SEED ^ 0xc2b2_ae3d_27d4_eb4f,
        SEED ^ 0x1656_67b1_9e37_79f9,
    ];
    let mut blocks = bytes.chunks_exact(32);
    for block in &mut blocks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane ^= u64::from_le_bytes(block[i * 8..i * 8 + 8].try_into().expect("8-byte lane"));
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    let mut hash = lanes[0];
    for lane in &lanes[1..] {
        hash = (hash ^ lane).wrapping_mul(PRIME);
    }
    let mut chunks = blocks.remainder().chunks_exact(8);
    for chunk in &mut chunks {
        hash ^= u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        hash = hash.wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash as i64
}

/// Accumulates write-effect events for one batched ring push: one clock
/// read and one ring acquisition cover a whole commit's installs (or a
/// chunk of a refresh batch) instead of paying both per event. Fill with
/// [`EffectBatch::write_effect`], then [`EffectBatch::flush`].
#[derive(Default)]
pub struct EffectBatch {
    events: Vec<TraceEvent>,
}

impl EffectBatch {
    pub fn with_capacity(n: usize) -> Self {
        EffectBatch {
            events: Vec::with_capacity(n),
        }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Queues one version-install event (same fields as
    /// [`emit_write_effect`]); the timestamp is assigned at flush.
    #[allow(clippy::too_many_arguments)]
    pub fn write_effect(
        &mut self,
        txn_id: u64,
        site: u32,
        partition: u64,
        table: u32,
        record: u64,
        prev: Option<(i64, u32, u64)>,
        value: i64,
        origin: u32,
        sequence: u64,
        generation: u64,
        epoch: u64,
        refresh: bool,
    ) {
        let (prev_sig, prev_origin, prev_seq) = prev.unwrap_or((0, u32::MAX, 0));
        self.events.push(TraceEvent {
            txn_id,
            site: TraceSite::Site(site),
            kind: TraceKind::WriteEffect,
            micros: 0,
            payload: TracePayload::WriteEffect {
                partition,
                table,
                record,
                prev: prev_sig,
                value,
                prev_origin,
                prev_seq,
                origin,
                sequence,
                generation,
                epoch,
                refresh,
            },
        });
    }

    /// Queues one refresh-skip declaration: the partial-replication filter
    /// stripped this key's write because the site does not host its
    /// partition. Satisfies the completeness checker's install obligation.
    pub fn refresh_skip(
        &mut self,
        site: u32,
        partition: u64,
        table: u32,
        record: u64,
        origin: u32,
        sequence: u64,
    ) {
        self.events.push(TraceEvent {
            txn_id: 0,
            site: TraceSite::Site(site),
            kind: TraceKind::RefreshSkip,
            micros: 0,
            payload: TracePayload::WriteEffect {
                partition,
                table,
                record,
                prev: 0,
                value: 0,
                prev_origin: u32::MAX,
                prev_seq: 0,
                origin,
                sequence,
                generation: 0,
                epoch: 0,
                refresh: true,
            },
        });
    }

    /// Pushes the queued events and leaves the batch empty, retaining its
    /// allocation for reuse.
    pub fn flush(&mut self, recorder: &FlightRecorder) {
        if !self.events.is_empty() {
            recorder.record_batch(self.events.drain(..));
        }
    }
}

/// Emits one version-install event, if auditing is armed. Shared by the
/// commit pipeline's install loop, the refresh applier, and the bench's
/// audited committer so the overhead rider measures the production path.
#[allow(clippy::too_many_arguments)]
pub fn emit_write_effect(
    recorder: &FlightRecorder,
    txn_id: u64,
    site: u32,
    partition: u64,
    table: u32,
    record: u64,
    prev: Option<(i64, u32, u64)>,
    value: i64,
    origin: u32,
    sequence: u64,
    generation: u64,
    epoch: u64,
    refresh: bool,
) {
    let (prev_sig, prev_origin, prev_seq) = prev.unwrap_or((0, u32::MAX, 0));
    recorder.record(
        txn_id,
        TraceSite::Site(site),
        TraceKind::WriteEffect,
        TracePayload::WriteEffect {
            partition,
            table,
            record,
            prev: prev_sig,
            value,
            prev_origin,
            prev_seq,
            origin,
            sequence,
            generation,
            epoch,
            refresh,
        },
    );
}

/// Emits a site-restart marker, if auditing is armed. Crash recovery
/// rebuilds the site's store by log replay that never passes the audited
/// install hooks, so the sink forgets the site's per-site knowledge and
/// re-baselines its refresh-completeness at the next frontier it sees.
pub fn emit_site_restart(recorder: &FlightRecorder, site: u32) {
    if !recorder.audit_enabled() {
        return;
    }
    recorder.record(
        0,
        TraceSite::Site(site),
        TraceKind::SiteRestart,
        TracePayload::None,
    );
}

/// Emits one ownership-transition event, if auditing is armed.
pub fn emit_ownership(
    recorder: &FlightRecorder,
    site: u32,
    partition: u64,
    sequence: u64,
    epoch: u64,
    acquired: bool,
) {
    recorder.record(
        0,
        TraceSite::Site(site),
        TraceKind::OwnEffect,
        TracePayload::Ownership {
            partition,
            site,
            sequence,
            epoch,
            acquired,
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_event(
        site: u32,
        partition: u64,
        record: u64,
        prev: Option<(i64, u32, u64)>,
        value: i64,
        origin: u32,
        sequence: u64,
        refresh: bool,
        micros: u64,
    ) -> TraceEvent {
        let (prev_sig, prev_origin, prev_seq) = prev.unwrap_or((0, u32::MAX, 0));
        TraceEvent {
            txn_id: sequence,
            site: TraceSite::Site(site),
            kind: TraceKind::WriteEffect,
            micros,
            payload: TracePayload::WriteEffect {
                partition,
                table: 0,
                record,
                prev: prev_sig,
                value,
                prev_origin,
                prev_seq,
                origin,
                sequence,
                generation: 1,
                epoch: 0,
                refresh,
            },
        }
    }

    fn own_event(site: u32, partition: u64, sequence: u64, acquired: bool) -> TraceEvent {
        TraceEvent {
            txn_id: 0,
            site: TraceSite::Site(site),
            kind: TraceKind::OwnEffect,
            micros: sequence,
            payload: TracePayload::Ownership {
                partition,
                site,
                sequence,
                epoch: 1,
                acquired,
            },
        }
    }

    fn frontier_event(site: u32, origin: u32, sequence: u64, micros: u64) -> TraceEvent {
        TraceEvent {
            txn_id: 0,
            site: TraceSite::Site(site),
            kind: TraceKind::RefreshApply,
            micros,
            payload: TracePayload::Refresh {
                origin,
                sequence,
                records: 1,
                lag_us: 0,
            },
        }
    }

    fn restart_event(site: u32, micros: u64) -> TraceEvent {
        TraceEvent {
            txn_id: 0,
            site: TraceSite::Site(site),
            kind: TraceKind::SiteRestart,
            micros,
            payload: TracePayload::None,
        }
    }

    fn sink(conservation: bool) -> Arc<AuditSink> {
        AuditSink::offline(
            FlightRecorder::new(64),
            AuditConfig {
                conservation,
                ..AuditConfig::default()
            },
        )
    }

    #[test]
    fn clean_commit_stream_reports_no_violations() {
        let sink = sink(true);
        sink.ingest(
            &[
                write_event(0, 1, 10, Some((100, 0, 0)), 90, 0, 1, false, 1),
                write_event(0, 2, 20, Some((100, 0, 0)), 110, 0, 1, false, 2),
                write_event(0, 1, 10, Some((90, 0, 1)), 80, 0, 2, false, 3),
                write_event(0, 2, 20, Some((110, 0, 1)), 120, 0, 2, false, 4),
            ],
            false,
        );
        let report = sink.finish();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(!report.incomplete);
        assert_eq!(report.events, 4);
    }

    #[test]
    fn duplicate_parent_claim_is_a_lost_update() {
        let sink = sink(false);
        sink.ingest(
            &[
                write_event(0, 1, 10, Some((100, 0, 0)), 90, 0, 1, false, 1),
                write_event(1, 1, 10, Some((100, 0, 0)), 110, 1, 7, false, 2),
            ],
            false,
        );
        let report = sink.finish();
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.kind, ViolationKind::LostUpdate);
        assert_eq!((v.partition, v.record), (1, 10));
        assert_eq!((v.origin, v.sequence), (1, 7));
    }

    #[test]
    fn write_after_release_without_grant_is_double_master() {
        let sink = sink(false);
        sink.ingest(
            &[
                own_event(0, 1, 5, false),
                write_event(0, 1, 10, Some((100, 0, 0)), 90, 0, 8, false, 10),
            ],
            false,
        );
        let report = sink.finish();
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].kind, ViolationKind::DoubleMaster);
        assert_eq!(report.violations[0].sequence, 8);
    }

    #[test]
    fn late_arriving_grant_clears_the_candidate() {
        let sink = sink(false);
        sink.ingest(
            &[
                own_event(0, 1, 5, false),
                write_event(0, 1, 10, Some((100, 0, 0)), 90, 0, 8, false, 10),
            ],
            false,
        );
        // The grant between release(5) and write(8) arrives one poll late,
        // as a cross-thread drain race would deliver it.
        sink.ingest(&[own_event(0, 1, 6, true)], false);
        let report = sink.finish();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn lossy_batch_degrades_to_incomplete_not_violation() {
        let sink = sink(true);
        sink.ingest(
            &[
                own_event(0, 1, 5, false),
                write_event(0, 1, 10, Some((100, 0, 0)), 90, 0, 8, false, 10),
            ],
            true,
        );
        let report = sink.finish();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.incomplete);
    }

    #[test]
    fn unbalanced_commit_group_breaches_conservation() {
        let sink = sink(true);
        sink.ingest(
            &[
                write_event(0, 1, 10, Some((100, 0, 0)), 50, 0, 3, false, 1),
                write_event(0, 2, 20, Some((100, 0, 0)), 120, 0, 3, false, 2),
            ],
            false,
        );
        let report = sink.finish();
        assert_eq!(report.violations.len(), 1);
        let v = &report.violations[0];
        assert_eq!(v.kind, ViolationKind::ConservationBreach);
        assert_eq!((v.origin, v.sequence), (0, 3));
        assert!(v.detail.contains("sum to -30"), "{}", v.detail);
    }

    #[test]
    fn commit_group_split_across_polls_still_balances() {
        let sink = sink(true);
        sink.ingest(
            &[write_event(0, 1, 10, Some((100, 0, 0)), 50, 0, 3, false, 1)],
            false,
        );
        sink.ingest(
            &[write_event(
                0,
                2,
                20,
                Some((100, 0, 0)),
                150,
                0,
                3,
                false,
                2,
            )],
            false,
        );
        let report = sink.finish();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn restart_rebaselines_refresh_completeness() {
        // Origin site0 commits seq 1-2; the replica's crash-recovery
        // replay installs them without emitting, then its live frontier
        // passes them.
        let replayed = [
            write_event(0, 1, 10, Some((100, 0, 0)), 90, 0, 1, false, 1),
            write_event(0, 1, 11, Some((100, 0, 0)), 70, 0, 2, false, 2),
        ];

        // Without the restart marker the replay window reads as missing
        // installs — the exact false positive the marker exists to kill.
        let naive = sink(false);
        naive.ingest(&replayed, false);
        naive.ingest(&[frontier_event(1, 0, 2, 20)], false);
        let report = naive.finish();
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        assert_eq!(report.violations[0].kind, ViolationKind::MissingInstall);

        // With it, the first post-restart frontier baselines instead.
        let audited = sink(false);
        audited.ingest(&replayed, false);
        audited.ingest(&[restart_event(1, 10), frontier_event(1, 0, 2, 20)], false);
        audited.ingest(&[], false);
        // ...and the checker re-arms past the baseline: an audited commit
        // at seq 3 whose install the replica really skipped is caught.
        audited.ingest(
            &[
                write_event(0, 1, 12, Some((100, 0, 0)), 60, 0, 3, false, 30),
                frontier_event(1, 0, 3, 40),
            ],
            false,
        );
        let report = audited.finish();
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        let v = &report.violations[0];
        assert_eq!(v.kind, ViolationKind::MissingInstall);
        assert_eq!((v.origin, v.sequence, v.record), (0, 3, 12));
    }

    #[test]
    fn bundle_rotation_keeps_newest_n() {
        let dir = std::env::temp_dir().join(format!("dyna-audit-rot-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        for n in 0..6 {
            fs::write(dir.join(format!("audit-{n:06}-lost-update.txt")), "x").unwrap();
        }
        prune_bundles(&dir, 3).unwrap();
        let mut names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(names.len(), 3);
        assert_eq!(names[0], "audit-000003-lost-update.txt");
        let _ = fs::remove_dir_all(&dir);
    }
}
