//! A small explicit byte codec.
//!
//! The paper serializes transaction updates into Kafka log records and ships
//! RPC payloads over Thrift. This reproduction uses an explicit length-checked
//! binary codec over the `bytes` crate for both purposes: log records in
//! `dynamast-replication` and message payloads in `dynamast-network`. Encoding
//! everything to real bytes keeps the network-traffic accounting honest
//! (paper Appendix D reports MB/s per traffic category).

use bytes::{Buf, BufMut};

use crate::error::{DynaError, Result};

/// Types that can serialize themselves into a byte buffer.
pub trait Encode {
    /// Appends the encoded form to `buf`.
    fn encode(&self, buf: &mut impl BufMut);

    /// Exact number of bytes [`Encode::encode`] will append.
    fn encoded_len(&self) -> usize;
}

/// Types that can deserialize themselves from a byte buffer.
pub trait Decode: Sized {
    /// Consumes the encoded form from `buf`.
    fn decode(buf: &mut impl Buf) -> Result<Self>;
}

fn need(buf: &impl Buf, n: usize, what: &'static str) -> Result<()> {
    if buf.remaining() < n {
        Err(DynaError::Codec {
            what,
            needed: n,
            remaining: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

/// Reads a `u8`, failing cleanly on truncated input.
pub fn get_u8(buf: &mut impl Buf) -> Result<u8> {
    need(buf, 1, "u8")?;
    Ok(buf.get_u8())
}

/// Reads a big-endian `u32`, failing cleanly on truncated input.
pub fn get_u32(buf: &mut impl Buf) -> Result<u32> {
    need(buf, 4, "u32")?;
    Ok(buf.get_u32())
}

/// Reads a big-endian `u64`, failing cleanly on truncated input.
pub fn get_u64(buf: &mut impl Buf) -> Result<u64> {
    need(buf, 8, "u64")?;
    Ok(buf.get_u64())
}

/// Reads a big-endian `i64`, failing cleanly on truncated input.
pub fn get_i64(buf: &mut impl Buf) -> Result<i64> {
    need(buf, 8, "i64")?;
    Ok(buf.get_i64())
}

/// Reads a length-prefixed byte string.
pub fn get_bytes(buf: &mut impl Buf) -> Result<Vec<u8>> {
    let len = get_u32(buf)? as usize;
    need(buf, len, "bytes body")?;
    let mut out = vec![0u8; len];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Writes a length-prefixed byte string.
pub fn put_bytes(buf: &mut impl BufMut, data: &[u8]) {
    buf.put_u32(data.len() as u32);
    buf.put_slice(data);
}

/// Encoded size of a length-prefixed byte string.
pub fn bytes_len(data: &[u8]) -> usize {
    4 + data.len()
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_string(buf: &mut impl Buf) -> Result<String> {
    let raw = get_bytes(buf)?;
    String::from_utf8(raw).map_err(|_| DynaError::Codec {
        what: "utf8 string",
        needed: 0,
        remaining: 0,
    })
}

/// Encodes a whole value into a fresh byte vector.
pub fn encode_to_vec<T: Encode>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(value.encoded_len());
    value.encode(&mut buf);
    debug_assert_eq!(buf.len(), value.encoded_len(), "encoded_len mismatch");
    buf
}

/// Encodes a sequence with a `u32` element count prefix.
pub fn encode_seq<T: Encode>(items: &[T], buf: &mut impl BufMut) {
    buf.put_u32(items.len() as u32);
    for item in items {
        item.encode(buf);
    }
}

/// Encoded size of a sequence written by [`encode_seq`].
pub fn seq_len<T: Encode>(items: &[T]) -> usize {
    4 + items.iter().map(Encode::encoded_len).sum::<usize>()
}

/// Decodes a sequence written by [`encode_seq`].
pub fn decode_seq<T: Decode>(buf: &mut impl Buf) -> Result<Vec<T>> {
    let n = get_u32(buf)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(T::decode(buf)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_reads_fail_on_truncated_input() {
        let mut empty: &[u8] = &[];
        assert!(get_u64(&mut empty).is_err());
        let mut short: &[u8] = &[0, 0, 1];
        assert!(get_u32(&mut short).is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        assert_eq!(buf.len(), bytes_len(b"hello"));
        let mut slice = &buf[..];
        assert_eq!(get_bytes(&mut slice).unwrap(), b"hello");
    }

    #[test]
    fn bytes_reject_truncated_body() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"hello");
        let mut truncated = &buf[..buf.len() - 2];
        assert!(get_bytes(&mut truncated).is_err());
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut slice = &buf[..];
        assert!(get_string(&mut slice).is_err());
    }

    #[test]
    fn seq_roundtrip_via_version_vectors() {
        use crate::vv::VersionVector;
        let items = vec![
            VersionVector::from_counts(vec![1, 2]),
            VersionVector::from_counts(vec![3, 4]),
        ];
        let mut buf = Vec::new();
        encode_seq(&items, &mut buf);
        assert_eq!(buf.len(), seq_len(&items));
        let mut slice = &buf[..];
        let back: Vec<VersionVector> = decode_seq(&mut slice).unwrap();
        assert_eq!(back, items);
    }
}
