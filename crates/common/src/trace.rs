//! Flight recorder: an always-on, bounded, structured event trace.
//!
//! Every component of the system — the site selector, the data sites, the
//! replication propagator, the network fabric, and the 2PC coordinators of
//! the baseline architectures — records [`TraceEvent`]s into a shared
//! [`FlightRecorder`]. The recorder is designed so that recording is cheap
//! enough to leave on in benchmarks (see `BENCH_selector.json` for the
//! measured overhead):
//!
//! * Each writer thread owns a private bounded ring; recording is one
//!   uncontended `try_lock` (a single CAS) plus a circular-buffer store.
//!   The lock is contended only while a snapshot is being taken, in which
//!   case the writer *drops the event* instead of blocking — recording
//!   never waits.
//! * Rings are bounded (`TRACE_RING` events per thread, default 1024); old
//!   events are overwritten, so a recorder holds the most recent window of
//!   activity, which is exactly what a post-mortem wants.
//!
//! Events carry a **trace id** (`txn_id`): client-facing transactions are
//! assigned a process-unique id at submission ([`next_trace_id`]) which rides
//! the `ExecUpdate` / `ExecRead` / `ExecCoordinated` RPCs, so a single
//! transaction's causal path — route → remaster → execute → commit →
//! refresh — can be reassembled across components with
//! [`render_timelines`]. Replication refresh events do not know the
//! transaction id (log records are identified by `(origin, sequence)`), so
//! the renderer joins them against the commit event's version stamp.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::ids::SiteId;

/// Hot-path timestamp source. `Instant::now` costs ~30 ns here (a vDSO
/// `clock_gettime`), which is a third of the whole record budget; on x86_64
/// the TSC is read directly (~10 ns) and converted to microseconds with a
/// once-per-process calibration against `Instant`. Trace timestamps are
/// display-grade (ordering and span arithmetic), so the calibration's ~0.1%
/// frequency error and cross-core TSC skew on pre-invariant-TSC hardware
/// are acceptable where they would not be for latency *measurement*.
#[cfg(target_arch = "x86_64")]
mod fastclock {
    use std::sync::OnceLock;
    use std::time::Instant;

    struct Calib {
        base_ticks: u64,
        /// `2^32 ×` microseconds per TSC tick.
        micros_per_tick_q32: u64,
    }

    static CALIB: OnceLock<Calib> = OnceLock::new();

    #[inline]
    fn ticks() -> u64 {
        // SAFETY: `_rdtsc` has no preconditions.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    fn calibrate() -> Calib {
        let t0 = Instant::now();
        let c0 = ticks();
        // ~1 ms spin bounds the frequency error at ~0.1%; paid once per
        // process, on the first recorded event.
        while t0.elapsed().as_micros() < 1_000 {
            std::hint::spin_loop();
        }
        let elapsed = t0.elapsed().as_nanos();
        let dticks = u128::from((ticks().wrapping_sub(c0)).max(1));
        Calib {
            base_ticks: c0,
            micros_per_tick_q32: (((elapsed << 32) / 1_000 / dticks) as u64).max(1),
        }
    }

    /// Microseconds since process-wide calibration (first use).
    #[inline]
    pub fn now_micros() -> u64 {
        let calib = CALIB.get_or_init(calibrate);
        let dticks = ticks().wrapping_sub(calib.base_ticks);
        ((u128::from(dticks) * u128::from(calib.micros_per_tick_q32)) >> 32) as u64
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod fastclock {
    use std::sync::OnceLock;
    use std::time::Instant;

    static START: OnceLock<Instant> = OnceLock::new();

    /// Microseconds since first use.
    #[inline]
    pub fn now_micros() -> u64 {
        let start = START.get_or_init(Instant::now);
        start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

/// Default per-thread ring capacity (events); override with `TRACE_RING`.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a process-unique transaction trace id (never zero).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Reads the `TRACE_RING` override for the per-thread ring capacity.
pub fn ring_capacity_from_env() -> usize {
    std::env::var("TRACE_RING")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_RING_CAPACITY)
}

/// Where an event was recorded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceSite {
    /// Not tied to a specific component (fabric-level bookkeeping).
    None,
    /// The active site selector.
    Selector,
    /// A standby selector replica.
    Standby(u32),
    /// A data site.
    Site(u32),
}

impl From<SiteId> for TraceSite {
    fn from(s: SiteId) -> Self {
        TraceSite::Site(s.raw())
    }
}

impl fmt::Display for TraceSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceSite::None => write!(f, "-"),
            TraceSite::Selector => write!(f, "selector"),
            TraceSite::Standby(n) => write!(f, "standby{n}"),
            TraceSite::Site(n) => write!(f, "site{n}"),
        }
    }
}

/// What happened. One variant per instrumented protocol point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Selector routed an update or read transaction.
    Route,
    /// Selector scored candidate destinations for a remaster.
    RemasterDecision,
    /// Selector sent a release RPC.
    ReleaseSend,
    /// Selector observed the release ack.
    ReleaseAck,
    /// Selector sent a grant RPC.
    GrantSend,
    /// Selector observed the grant ack.
    GrantAck,
    /// Data site began a transaction (locks + session-freshness wait).
    TxnBegin,
    /// Data site finished stored-procedure execution.
    TxnExecute,
    /// Data site committed (version install + log append + publish).
    TxnCommit,
    /// Data site applied a replication refresh batch.
    RefreshApply,
    /// 2PC coordinator dispatched prepares.
    TwoPcPrepare,
    /// 2PC participant voted.
    TwoPcVote,
    /// 2PC coordinator decided.
    TwoPcDecide,
    /// Fabric accepted a message for delivery.
    NetSend,
    /// Fabric delivered a message.
    NetDeliver,
    /// Fault plan verdict: message dropped.
    NetDrop,
    /// Fault plan verdict: message duplicated.
    NetDuplicate,
    /// Fault plan verdict: delay spike injected.
    NetDelaySpike,
    /// A version install (commit-side or refresh-side) observed by the
    /// invariant audit plane. Emitted only while auditing is armed
    /// ([`FlightRecorder::set_audit`]).
    WriteEffect,
    /// An ownership transition (release or grant) in a site's own commit
    /// order, stamped with its commit sequence. Emitted only while auditing
    /// is armed.
    OwnEffect,
    /// A data site restarted after a crash: its store was rebuilt by log
    /// replay that never passes the audited install hooks, so the audit
    /// plane forgets the site's per-site knowledge and re-baselines from
    /// its next events. Emitted only while auditing is armed.
    SiteRestart,
    /// The partial-replication subscription filter deliberately stripped a
    /// refresh write for a partition the site does not host. Declares the
    /// skip to the refresh-completeness checker — a record neither
    /// installed nor declared is still a missing install. Emitted only
    /// while auditing is armed. Payload: [`TracePayload::WriteEffect`] with
    /// `refresh = true`.
    RefreshSkip,
}

impl TraceKind {
    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Route => "route",
            TraceKind::RemasterDecision => "remaster.decide",
            TraceKind::ReleaseSend => "release.send",
            TraceKind::ReleaseAck => "release.ack",
            TraceKind::GrantSend => "grant.send",
            TraceKind::GrantAck => "grant.ack",
            TraceKind::TxnBegin => "txn.begin",
            TraceKind::TxnExecute => "txn.execute",
            TraceKind::TxnCommit => "txn.commit",
            TraceKind::RefreshApply => "refresh.apply",
            TraceKind::TwoPcPrepare => "2pc.prepare",
            TraceKind::TwoPcVote => "2pc.vote",
            TraceKind::TwoPcDecide => "2pc.decide",
            TraceKind::NetSend => "net.send",
            TraceKind::NetDeliver => "net.deliver",
            TraceKind::NetDrop => "net.drop",
            TraceKind::NetDuplicate => "net.duplicate",
            TraceKind::NetDelaySpike => "net.delay_spike",
            TraceKind::WriteEffect => "write.effect",
            TraceKind::OwnEffect => "own.effect",
            TraceKind::SiteRestart => "site.restart",
            TraceKind::RefreshSkip => "refresh.skip",
        }
    }
}

/// One candidate site's scores in a remaster decision, all four features of
/// the paper's Eq. 8 plus the weighted total.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CandidateScore {
    /// The candidate destination site.
    pub site: u32,
    /// Write-load balance factor (Eqs. 2–4), weighted.
    pub balance: f64,
    /// Refresh-delay penalty (Eq. 5), weighted; entered negatively into the
    /// total.
    pub delay: f64,
    /// Intra-transaction co-access localization (Eq. 6), weighted.
    pub intra: f64,
    /// Inter-transaction co-access localization (Eq. 7), weighted.
    pub inter: f64,
    /// Combined benefit `balance - delay + intra + inter`.
    pub total: f64,
    /// Whether the site was reachable when the decision was made
    /// (unreachable candidates are masked out of the argmax).
    pub reachable: bool,
}

/// Structured event payload. Hot-path variants are `Copy`-sized; only the
/// remaster decision (already on the slow path) allocates.
#[derive(Clone, Debug, PartialEq)]
pub enum TracePayload {
    /// Nothing beyond the kind.
    None,
    /// A routing decision.
    Route {
        /// Destination site.
        dest: u32,
        /// Number of write-set partitions (0 for reads).
        partitions: u32,
        /// `true` if the fast path (sole master, shared locks) served it.
        fast_path: bool,
        /// `true` if routing required a remaster.
        remastered: bool,
    },
    /// A remaster decision with the full per-candidate scoring table.
    Decision {
        /// Site chosen as the destination.
        chosen: u32,
        /// Number of write-set partitions being co-located.
        partitions: u32,
        /// Remastering epoch the decision belongs to: the next epoch the
        /// selector will allocate for an inline move, or the first epoch
        /// of an epoch-batched group flush (0 = not yet assigned).
        epoch: u64,
        /// Per-candidate scores of all four features.
        candidates: Arc<Vec<CandidateScore>>,
    },
    /// A release/grant protocol step for one partition.
    Remaster {
        /// Partition being moved.
        partition: u64,
        /// Releasing site.
        from: u32,
        /// Receiving site.
        to: u32,
        /// Remastering epoch.
        epoch: u64,
    },
    /// A duration (begin wait, execution time, …) in microseconds.
    Span {
        /// Elapsed microseconds.
        us: u64,
        /// Microseconds of that spent waiting on version-vector freshness
        /// (only meaningful for [`TraceKind::TxnBegin`]).
        vv_wait_us: u64,
    },
    /// A commit's version stamp (joins refresh events to the transaction).
    Commit {
        /// Origin site of the commit.
        origin: u32,
        /// Sequence the commit installed at its origin.
        sequence: u64,
        /// Commit processing time in microseconds.
        us: u64,
    },
    /// A replication refresh batch application.
    Refresh {
        /// Origin site whose log is being applied.
        origin: u32,
        /// Sequence of the last record applied in the batch.
        sequence: u64,
        /// Records in the batch.
        records: u32,
        /// Refresh lag: now minus the enqueue time of the newest record.
        lag_us: u64,
    },
    /// A network fabric event.
    Net {
        /// Sending endpoint (encoded; see `dynamast-network`).
        from: u32,
        /// Receiving endpoint (encoded).
        to: u32,
        /// Traffic category index.
        category: u8,
        /// Payload bytes.
        bytes: u32,
    },
    /// A 2PC step.
    TwoPc {
        /// Participants involved (prepare) or voting site (vote).
        site: u32,
        /// Vote / decision: `true` = yes / commit.
        ok: bool,
        /// Participant count (prepare/decide) or 0.
        participants: u32,
    },
    /// One version install, as seen by the invariant audit plane: the new
    /// value's signature plus the stamp of the version it replaced.
    WriteEffect {
        /// Partition the key belongs to.
        partition: u64,
        /// Table component of the key.
        table: u32,
        /// Record component of the key.
        record: u64,
        /// Signed value signature of the overwritten row (0 when the prev
        /// version was not captured; see `prev_origin`).
        prev: i64,
        /// Signed value signature of the installed row.
        value: i64,
        /// Origin of the overwritten version's stamp, or `u32::MAX` when the
        /// previous version was not captured (refresh installs skip the read).
        prev_origin: u32,
        /// Sequence of the overwritten version's stamp.
        prev_seq: u64,
        /// Origin site of the installing commit.
        origin: u32,
        /// Commit sequence at the origin.
        sequence: u64,
        /// Selector fence generation the installing site held.
        generation: u64,
        /// Highest remaster epoch the installing site had observed.
        epoch: u64,
        /// `true` for a replication refresh install, `false` for a
        /// commit-side install at the origin.
        refresh: bool,
    },
    /// An ownership transition (release/grant) in the site's commit order.
    Ownership {
        /// Partition whose mastership moved.
        partition: u64,
        /// Site recording the transition.
        site: u32,
        /// The site's commit sequence for the release/grant record.
        sequence: u64,
        /// Remaster epoch of the transition.
        epoch: u64,
        /// `true` for a grant (mastership acquired), `false` for a release.
        acquired: bool,
    },
}

impl fmt::Display for TracePayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TracePayload::None => Ok(()),
            TracePayload::Route {
                dest,
                partitions,
                fast_path,
                remastered,
            } => write!(
                f,
                "dest=site{dest} parts={partitions}{}{}",
                if *fast_path { " fast" } else { "" },
                if *remastered { " remastered" } else { "" }
            ),
            TracePayload::Decision {
                chosen,
                partitions,
                epoch,
                candidates,
            } => {
                write!(f, "chosen=site{chosen} parts={partitions} epoch={epoch}")?;
                for c in candidates.iter() {
                    write!(
                        f,
                        " | site{}: bal={:.3} delay={:.3} intra={:.3} inter={:.3} total={:.3}{}",
                        c.site,
                        c.balance,
                        c.delay,
                        c.intra,
                        c.inter,
                        c.total,
                        if c.reachable { "" } else { " UNREACHABLE" }
                    )?;
                }
                Ok(())
            }
            TracePayload::Remaster {
                partition,
                from,
                to,
                epoch,
            } => write!(f, "p{partition} site{from}->site{to} epoch={epoch}"),
            TracePayload::Span { us, vv_wait_us } => {
                if *vv_wait_us > 0 {
                    write!(f, "{us}us (vv_wait={vv_wait_us}us)")
                } else {
                    write!(f, "{us}us")
                }
            }
            TracePayload::Commit {
                origin,
                sequence,
                us,
            } => write!(f, "origin=site{origin} seq={sequence} {us}us"),
            TracePayload::Refresh {
                origin,
                sequence,
                records,
                lag_us,
            } => write!(
                f,
                "origin=site{origin} thru_seq={sequence} records={records} lag={lag_us}us"
            ),
            TracePayload::Net {
                from,
                to,
                category,
                bytes,
            } => write!(f, "{from:#x}->{to:#x} cat={category} {bytes}B"),
            TracePayload::TwoPc {
                site,
                ok,
                participants,
            } => {
                if *participants > 0 {
                    write!(
                        f,
                        "{} participants={participants}",
                        if *ok { "commit" } else { "abort" }
                    )
                } else {
                    write!(f, "site{site} {}", if *ok { "yes" } else { "no" })
                }
            }
            TracePayload::WriteEffect {
                partition,
                table,
                record,
                prev,
                value,
                prev_origin,
                prev_seq,
                origin,
                sequence,
                generation,
                epoch,
                refresh,
            } => {
                write!(
                    f,
                    "p{partition} key=({table},{record}) {}={value} stamp=(site{origin},{sequence}) gen={generation} epoch={epoch}",
                    if *refresh { "refresh" } else { "commit" },
                )?;
                if *prev_origin != u32::MAX {
                    write!(f, " prev={prev}@(site{prev_origin},{prev_seq})")?;
                }
                Ok(())
            }
            TracePayload::Ownership {
                partition,
                site,
                sequence,
                epoch,
                acquired,
            } => write!(
                f,
                "p{partition} site{site} {} seq={sequence} epoch={epoch}",
                if *acquired { "grant" } else { "release" }
            ),
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Transaction trace id, or 0 for events not tied to a transaction.
    pub txn_id: u64,
    /// Component that recorded the event.
    pub site: TraceSite,
    /// What happened.
    pub kind: TraceKind,
    /// Microseconds since the recorder was created.
    pub micros: u64,
    /// Structured detail.
    pub payload: TracePayload,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "+{:>9}us  {:<9} {:<16}",
            self.micros,
            self.site.to_string(),
            self.kind.label()
        )?;
        match self.payload {
            TracePayload::None => Ok(()),
            _ => write!(f, " {}", self.payload),
        }
    }
}

struct RingInner {
    buf: Vec<TraceEvent>,
    /// Total events ever written; `head % capacity` is the next slot once
    /// the ring has wrapped.
    head: u64,
    /// Events overwritten by ring wrap since the last drain. The audit
    /// plane treats any loss as "audit incomplete", never as a violation.
    overwritten: u64,
    /// High-water timestamp: the fast clock is raw TSC on x86_64 and can
    /// regress across a core migration, so each ring clamps its events
    /// monotone. With per-ring order intact, the stable merge-by-micros in
    /// [`FlightRecorder::drain_accounted`] preserves program order within
    /// every thread.
    last_micros: u64,
}

/// A per-thread ring guarded by a raw spin flag instead of a full mutex:
/// the writer is a single thread holding the lock for one slot write, and
/// the only contention is a (rare) snapshot, so an uncontended
/// acquire-CAS + release-store beats a general mutex's parking machinery
/// on the record hot path.
struct ThreadRing {
    locked: AtomicBool,
    inner: std::cell::UnsafeCell<RingInner>,
}

// SAFETY: `inner` is only accessed while `locked` is held (acquired with
// an Acquire CAS, released with a Release store), which serialises all
// access and publishes writes to the next acquirer.
unsafe impl Sync for ThreadRing {}
unsafe impl Send for ThreadRing {}

impl ThreadRing {
    fn new() -> Self {
        ThreadRing {
            locked: AtomicBool::new(false),
            inner: std::cell::UnsafeCell::new(RingInner {
                buf: Vec::new(),
                head: 0,
                overwritten: 0,
                last_micros: 0,
            }),
        }
    }

    #[inline]
    fn try_acquire(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Blocking acquire for readers: the writer holds the flag for one
    /// slot write (nanoseconds), so spinning is bounded in practice.
    fn acquire(&self) {
        while !self.try_acquire() {
            std::hint::spin_loop();
        }
    }

    #[inline]
    fn release(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Pushes one event, overwriting the oldest once at capacity. Never
    /// blocks: if the ring is locked (snapshot in progress) the event is
    /// dropped and `false` returned.
    #[inline]
    fn push(&self, capacity: usize, mut ev: TraceEvent) -> bool {
        if !self.try_acquire() {
            return false;
        }
        // SAFETY: flag held (see `Sync` impl).
        let inner = unsafe { &mut *self.inner.get() };
        if ev.micros < inner.last_micros {
            ev.micros = inner.last_micros;
        } else {
            inner.last_micros = ev.micros;
        }
        if inner.buf.len() < capacity {
            inner.buf.push(ev);
        } else {
            let slot = (inner.head % capacity as u64) as usize;
            inner.buf[slot] = ev;
            inner.overwritten += 1;
        }
        inner.head += 1;
        self.release();
        true
    }

    /// Pushes a group of events sharing one (clamped) timestamp under a
    /// single flag acquisition. Returns how many events were dropped (all
    /// of them if a snapshot holds the ring — same non-blocking contract
    /// as [`ThreadRing::push`]).
    fn push_batch(
        &self,
        capacity: usize,
        micros: u64,
        events: impl IntoIterator<Item = TraceEvent>,
    ) -> u64 {
        if !self.try_acquire() {
            return events.into_iter().count() as u64;
        }
        // SAFETY: flag held (see `Sync` impl).
        let inner = unsafe { &mut *self.inner.get() };
        let micros = if micros < inner.last_micros {
            inner.last_micros
        } else {
            inner.last_micros = micros;
            micros
        };
        for mut ev in events {
            ev.micros = micros;
            if inner.buf.len() < capacity {
                inner.buf.push(ev);
            } else {
                let slot = (inner.head % capacity as u64) as usize;
                inner.buf[slot] = ev;
                inner.overwritten += 1;
            }
            inner.head += 1;
        }
        self.release();
        0
    }

    /// Appends the ring's events in chronological order: once wrapped, the
    /// oldest retained event sits at `head % len`, not slot 0.
    fn snapshot(&self, out: &mut Vec<TraceEvent>) {
        self.acquire();
        // SAFETY: flag held (see `Sync` impl).
        let inner = unsafe { &*self.inner.get() };
        if !inner.buf.is_empty() {
            let start = (inner.head % inner.buf.len() as u64) as usize;
            out.extend(inner.buf[start..].iter().cloned());
            out.extend(inner.buf[..start].iter().cloned());
        }
        self.release();
    }

    /// Snapshots and clears the ring under one flag acquisition, returning
    /// how many events were lost to ring wrap since the last drain. The
    /// two steps must be atomic: a separate snapshot-then-clear would
    /// destroy (unaccounted) any event pushed in between, and the audit
    /// plane would read the silent gap as a violation instead of loss.
    fn take(&self, out: &mut Vec<TraceEvent>) -> u64 {
        self.acquire();
        // SAFETY: flag held (see `Sync` impl).
        let inner = unsafe { &mut *self.inner.get() };
        if !inner.buf.is_empty() {
            let start = (inner.head % inner.buf.len() as u64) as usize;
            out.extend(inner.buf[start..].iter().cloned());
            out.extend(inner.buf[..start].iter().cloned());
            inner.buf.clear();
            inner.head = 0;
        }
        let overwritten = inner.overwritten;
        inner.overwritten = 0;
        self.release();
        overwritten
    }
}

thread_local! {
    /// Per-thread ring handles, keyed by recorder id. Small linear map: a
    /// thread typically touches one or two recorders.
    static THREAD_RINGS: std::cell::RefCell<Vec<(u64, Arc<ThreadRing>)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The flight recorder: a set of per-thread bounded event rings plus a
/// merge-on-read snapshot API.
///
/// ```
/// use dynamast_common::trace::{FlightRecorder, TraceKind, TracePayload, TraceSite};
///
/// let rec = FlightRecorder::new(64);
/// rec.record(7, TraceSite::Selector, TraceKind::Route, TracePayload::None);
/// let events = rec.snapshot();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].txn_id, 7);
/// ```
pub struct FlightRecorder {
    id: u64,
    start_micros: u64,
    enabled: AtomicBool,
    /// Whether audit-plane events ([`TraceKind::WriteEffect`],
    /// [`TraceKind::OwnEffect`]) should be emitted. Off by default so the
    /// audit plane is zero-cost unless armed.
    audit: AtomicBool,
    /// Whether audited installs should also carry value *signatures*.
    /// Signatures feed the conservation checker (and enrich bundles); the
    /// ownership/exactly-once checkers run on stamps alone. Hashing every
    /// row is the dominant emission cost on wide rows, so the sink arms
    /// this only when a conservation checker will actually consume it.
    audit_values: AtomicBool,
    capacity_per_thread: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// Creates a recorder with the given per-thread ring capacity.
    pub fn new(capacity_per_thread: usize) -> Arc<Self> {
        Arc::new(FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            start_micros: fastclock::now_micros(),
            enabled: AtomicBool::new(true),
            audit: AtomicBool::new(false),
            audit_values: AtomicBool::new(false),
            capacity_per_thread: capacity_per_thread.max(1),
            rings: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        })
    }

    /// Creates a recorder sized from the `TRACE_RING` environment variable
    /// (default [`DEFAULT_RING_CAPACITY`] events per thread).
    pub fn from_env() -> Arc<Self> {
        Self::new(ring_capacity_from_env())
    }

    /// Enables or disables recording (cheap atomic; events while disabled
    /// are discarded before timestamping).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Arms or disarms audit-plane event emission (write/ownership effects).
    pub fn set_audit(&self, on: bool) {
        self.audit.store(on, Ordering::Relaxed);
    }

    /// Whether audit-plane events should be emitted. Emit sites check this
    /// before doing any per-write work (value signatures, prev reads).
    #[inline]
    pub fn audit_enabled(&self) -> bool {
        self.audit.load(Ordering::Relaxed) && self.enabled()
    }

    /// Arms or disarms value-signature computation on audited installs
    /// (see the `audit_values` field).
    pub fn set_audit_values(&self, on: bool) {
        self.audit_values.store(on, Ordering::Relaxed);
    }

    /// Whether audited installs should carry value signatures.
    #[inline]
    pub fn audit_values(&self) -> bool {
        self.audit_values.load(Ordering::Relaxed)
    }

    /// Microseconds since the recorder was created.
    #[inline]
    pub fn now_micros(&self) -> u64 {
        fastclock::now_micros().saturating_sub(self.start_micros)
    }

    /// Events dropped because a snapshot held the writer's ring.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records one event on the calling thread's ring.
    pub fn record(&self, txn_id: u64, site: TraceSite, kind: TraceKind, payload: TracePayload) {
        if !self.enabled() {
            return;
        }
        let ev = TraceEvent {
            txn_id,
            site,
            kind,
            micros: self.now_micros(),
            payload,
        };
        let pushed = THREAD_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                ring.push(self.capacity_per_thread, ev)
            } else {
                let ring = Arc::new(ThreadRing::new());
                self.rings.lock().push(Arc::clone(&ring));
                let pushed = ring.push(self.capacity_per_thread, ev);
                rings.push((self.id, ring));
                pushed
            }
        });
        if !pushed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a group of events on the calling thread's ring with one
    /// clock read and one ring acquisition for the whole group (the
    /// per-event costs — ~50 ns of virtualized `rdtsc` plus the
    /// TLS/lock round trip — dominate audit emission, which produces one
    /// event per write of a commit). The group shares one timestamp;
    /// within-ring order is positional, so relative order is preserved.
    pub fn record_batch(&self, events: impl IntoIterator<Item = TraceEvent>) {
        if !self.enabled() {
            return;
        }
        let micros = self.now_micros();
        let dropped = THREAD_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                ring.push_batch(self.capacity_per_thread, micros, events)
            } else {
                let ring = Arc::new(ThreadRing::new());
                self.rings.lock().push(Arc::clone(&ring));
                let dropped = ring.push_batch(self.capacity_per_thread, micros, events);
                rings.push((self.id, ring));
                dropped
            }
        });
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Takes a merged snapshot of all per-thread rings, ordered by
    /// timestamp. Writers racing a snapshot drop their event rather than
    /// blocking (counted in [`FlightRecorder::dropped`]).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let rings: Vec<Arc<ThreadRing>> = self.rings.lock().clone();
        let mut out = Vec::new();
        for ring in rings {
            ring.snapshot(&mut out);
        }
        out.sort_by_key(|e| e.micros);
        out
    }

    /// Snapshots and clears all rings.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.drain_accounted().0
    }

    /// Snapshots and clears all rings, also returning how many events were
    /// lost to ring wrap since the previous drain. The audit plane uses the
    /// loss count to degrade to "audit incomplete" instead of reporting
    /// false violations over a gappy history.
    pub fn drain_accounted(&self) -> (Vec<TraceEvent>, u64) {
        let rings: Vec<Arc<ThreadRing>> = self.rings.lock().clone();
        let mut out = Vec::new();
        let mut wrapped = 0u64;
        for ring in &rings {
            wrapped += ring.take(&mut out);
        }
        out.sort_by_key(|e| e.micros);
        (out, wrapped)
    }

    /// Renders the causal per-transaction timelines of the most recent
    /// `last_n` events — the chaos watchdog's post-mortem view.
    pub fn dump_recent_timelines(&self, last_n: usize, max_txns: usize) -> String {
        let mut events = self.snapshot();
        if events.len() > last_n {
            events.drain(..events.len() - last_n);
        }
        render_timelines(&events, max_txns)
    }
}

/// Groups events by transaction and renders each as a causal timeline.
///
/// Replication refresh events carry no transaction id; they are joined to a
/// transaction via the `(origin, sequence)` stamp of its commit event.
/// Untraced events (fabric noise, other txns' refreshes) are summarised in a
/// trailing count line instead of printed.
pub fn render_timelines(events: &[TraceEvent], max_txns: usize) -> String {
    use std::fmt::Write as _;

    let mut by_txn: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    // (origin, commit sequence) -> txn id, for the refresh join.
    let mut commit_stamp: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    let mut untraced = 0usize;
    for ev in events {
        if ev.txn_id != 0 {
            if let TracePayload::Commit {
                origin, sequence, ..
            } = ev.payload
            {
                commit_stamp.insert((origin, sequence), ev.txn_id);
            }
            by_txn.entry(ev.txn_id).or_default().push(ev);
        }
    }
    for ev in events {
        if ev.txn_id == 0 {
            if let TracePayload::Refresh {
                origin, sequence, ..
            } = ev.payload
            {
                // A refresh batch applies records (.. ..=sequence]; attribute
                // it to any transaction whose commit stamp it covers.
                let joined: Vec<u64> = commit_stamp
                    .range((origin, 0)..=(origin, sequence))
                    .map(|(_, txn)| *txn)
                    .collect();
                if !joined.is_empty() {
                    for txn in joined {
                        by_txn.entry(txn).or_default().push(ev);
                    }
                    continue;
                }
            }
            untraced += 1;
        }
    }

    let mut order: Vec<(u64, u64)> = by_txn
        .iter()
        .map(|(txn, evs)| (evs.iter().map(|e| e.micros).min().unwrap_or(0), *txn))
        .collect();
    order.sort_unstable();

    let mut out = String::new();
    let shown = order.len().min(max_txns);
    let _ = writeln!(
        out,
        "flight recorder: {} events, {} transactions (showing last {shown}), {untraced} untraced",
        events.len(),
        order.len(),
    );
    for &(_, txn) in order
        .iter()
        .rev()
        .take(max_txns)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        let mut evs = by_txn.remove(txn).unwrap_or_default();
        evs.sort_by_key(|e| e.micros);
        let _ = writeln!(out, "txn {txn}:");
        for ev in evs {
            let _ = writeln!(out, "  {ev}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rec: &FlightRecorder, txn: u64, kind: TraceKind) {
        rec.record(txn, TraceSite::Selector, kind, TracePayload::None);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn record_snapshot_roundtrip() {
        let rec = FlightRecorder::new(16);
        ev(&rec, 1, TraceKind::Route);
        ev(&rec, 1, TraceKind::TxnCommit);
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap[0].micros <= snap[1].micros);
    }

    #[test]
    fn ring_overwrites_oldest_at_capacity() {
        let rec = FlightRecorder::new(4);
        for i in 0..10 {
            ev(&rec, i, TraceKind::Route);
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 4);
        let ids: Vec<u64> = snap.iter().map(|e| e.txn_id).collect();
        assert!(ids.contains(&9), "newest retained: {ids:?}");
        assert!(!ids.contains(&0), "oldest overwritten: {ids:?}");
    }

    #[test]
    fn disabled_recorder_discards() {
        let rec = FlightRecorder::new(16);
        rec.set_enabled(false);
        ev(&rec, 1, TraceKind::Route);
        assert!(rec.snapshot().is_empty());
        rec.set_enabled(true);
        ev(&rec, 2, TraceKind::Route);
        assert_eq!(rec.snapshot().len(), 1);
    }

    #[test]
    fn drain_clears_rings() {
        let rec = FlightRecorder::new(16);
        ev(&rec, 1, TraceKind::Route);
        assert_eq!(rec.drain().len(), 1);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn multithreaded_writers_merge_in_time_order() {
        let rec = FlightRecorder::new(256);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    rec.record(
                        t * 100 + i,
                        TraceSite::Site(t as u32),
                        TraceKind::TxnBegin,
                        TracePayload::None,
                    );
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len() as u64 + rec.dropped(), 200);
        assert!(snap.windows(2).all(|w| w[0].micros <= w[1].micros));
    }

    #[test]
    fn timeline_joins_refresh_by_commit_stamp() {
        let rec = FlightRecorder::new(64);
        rec.record(
            42,
            TraceSite::Selector,
            TraceKind::Route,
            TracePayload::Route {
                dest: 1,
                partitions: 2,
                fast_path: false,
                remastered: true,
            },
        );
        rec.record(
            42,
            TraceSite::Site(1),
            TraceKind::TxnCommit,
            TracePayload::Commit {
                origin: 1,
                sequence: 7,
                us: 12,
            },
        );
        // Refresh at another site covering the commit's stamp: txn_id = 0.
        rec.record(
            0,
            TraceSite::Site(2),
            TraceKind::RefreshApply,
            TracePayload::Refresh {
                origin: 1,
                sequence: 9,
                records: 3,
                lag_us: 88,
            },
        );
        let dump = rec.dump_recent_timelines(100, 10);
        assert!(dump.contains("txn 42:"), "{dump}");
        assert!(dump.contains("refresh.apply"), "{dump}");
        assert!(dump.contains("remastered"), "{dump}");
    }

    #[test]
    fn decision_payload_prints_all_four_features() {
        let p = TracePayload::Decision {
            chosen: 1,
            partitions: 3,
            epoch: 12,
            candidates: Arc::new(vec![CandidateScore {
                site: 1,
                balance: 0.5,
                delay: 0.1,
                intra: 2.0,
                inter: 0.0,
                total: 2.4,
                reachable: true,
            }]),
        };
        let s = p.to_string();
        for needle in ["bal=", "delay=", "intra=", "inter=", "total=", "epoch=12"] {
            assert!(s.contains(needle), "{s}");
        }
    }
}
