//! Error types shared across the workspace.

use std::fmt;

use crate::ids::{Key, PartitionId, SiteId};

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, DynaError>;

/// Errors surfaced by the DynaMast reproduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynaError {
    /// A byte-codec read ran out of input or met malformed data.
    Codec {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        remaining: usize,
    },
    /// A referenced table does not exist in the catalog.
    NoSuchTable(u32),
    /// A read targeted a record that does not exist at the snapshot.
    NoSuchRecord(Key),
    /// A site received an operation for a partition it does not master.
    ///
    /// Under the distributed site selector (Appendix I) this is the expected
    /// signal for a stale-metadata routing; the client resubmits to the
    /// master selector.
    NotMaster {
        /// The site that rejected the operation.
        site: SiteId,
        /// The partition whose mastership check failed.
        partition: PartitionId,
    },
    /// A site received an operation for a partition it does not hold a copy
    /// of (partial replication): the replica set changed under the router's
    /// feet, or a copy drop raced a read. The client re-routes against the
    /// refreshed replica map.
    NotReplica {
        /// The site that rejected the operation.
        site: SiteId,
        /// The partition the site holds no copy of.
        partition: PartitionId,
    },
    /// A two-phase-commit participant voted no, aborting the transaction.
    TxnAborted {
        /// Human-readable reason recorded by the coordinator.
        reason: &'static str,
    },
    /// An RPC could not be delivered (endpoint shut down or crashed).
    Network(&'static str),
    /// An RPC did not complete within its deadline: the request or reply was
    /// lost, the link is partitioned, or the retry budget ran out.
    Timeout {
        /// What was being waited on.
        op: &'static str,
        /// Elapsed budget in milliseconds when the deadline fired.
        ms: u64,
    },
    /// A data site rejected a remaster operation carrying a selector
    /// generation older than the highest one the site has observed: the
    /// sender is a deposed (zombie) selector and must not move mastership.
    StaleSelector {
        /// The generation the rejected request carried.
        observed: u64,
        /// The newest generation the site has been fenced to.
        current: u64,
    },
    /// The site is shutting down and rejects new work.
    ShuttingDown,
    /// An invariant that should be unreachable was violated.
    Internal(&'static str),
}

impl fmt::Display for DynaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynaError::Codec {
                what,
                needed,
                remaining,
            } => write!(
                f,
                "codec error decoding {what}: needed {needed} bytes, {remaining} remaining"
            ),
            DynaError::NoSuchTable(t) => write!(f, "no such table t{t}"),
            DynaError::NoSuchRecord(k) => write!(f, "no such record {k:?}"),
            DynaError::NotMaster { site, partition } => {
                write!(f, "{site} does not master {partition}")
            }
            DynaError::NotReplica { site, partition } => {
                write!(f, "{site} does not host {partition}")
            }
            DynaError::TxnAborted { reason } => write!(f, "transaction aborted: {reason}"),
            DynaError::Network(what) => write!(f, "network error: {what}"),
            DynaError::Timeout { op, ms } => write!(f, "timeout after {ms}ms: {op}"),
            DynaError::StaleSelector { observed, current } => write!(
                f,
                "stale selector generation {observed} rejected (site fenced to {current})"
            ),
            DynaError::ShuttingDown => write!(f, "site shutting down"),
            DynaError::Internal(what) => write!(f, "internal invariant violated: {what}"),
        }
    }
}

impl std::error::Error for DynaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TableId;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = DynaError::NotMaster {
            site: SiteId::new(2),
            partition: PartitionId::new(9),
        };
        assert_eq!(e.to_string(), "S2 does not master p9");
        let e = DynaError::NotReplica {
            site: SiteId::new(1),
            partition: PartitionId::new(4),
        };
        assert_eq!(e.to_string(), "S1 does not host p4");
        let e = DynaError::NoSuchRecord(Key::new(TableId::new(1), 5));
        assert!(e.to_string().contains("t1/5"));
    }

    #[test]
    fn errors_are_comparable_for_test_assertions() {
        assert_eq!(DynaError::ShuttingDown, DynaError::ShuttingDown);
        assert_ne!(DynaError::Network("a"), DynaError::Internal("a"),);
        assert_ne!(
            DynaError::Timeout { op: "rpc", ms: 5 },
            DynaError::Network("rpc"),
        );
    }
}
