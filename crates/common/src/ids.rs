//! Strongly typed identifiers.
//!
//! The paper's unit of mastership is the *partition* (a group of data items,
//! §V-B): the site selector tracks one master location per partition and
//! remasters whole partitions. Records are addressed by `(table, record id)`
//! and map deterministically to a partition via the table's partition size.

use std::fmt;

use bytes::{Buf, BufMut};

use crate::codec::{Decode, Encode};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name($inner);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: usize) -> Self {
                $name(raw as $inner)
            }

            /// The raw index, for vector indexing.
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }

            /// The raw value.
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A data site (one replica-holding machine in the paper's deployment).
    SiteId,
    u32,
    "S"
);
id_type!(
    /// A client session. Each client owns a `cvv` session vector.
    ClientId,
    u64,
    "C"
);
id_type!(
    /// A table in the catalog.
    TableId,
    u32,
    "t"
);
id_type!(
    /// A partition: the unit of mastership tracking and remastering.
    PartitionId,
    u64,
    "p"
);

/// A record's primary key within its table.
pub type RecordId = u64;

/// Fully qualified key of a record: `(table, record id)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// Table the record belongs to.
    pub table: TableId,
    /// Primary key within the table.
    pub record: RecordId,
}

impl Key {
    /// Builds a key.
    pub const fn new(table: TableId, record: RecordId) -> Self {
        Key { table, record }
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{}", self.table, self.record)
    }
}

impl Encode for Key {
    fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u32(self.table.raw());
        buf.put_u64(self.record);
    }

    fn encoded_len(&self) -> usize {
        12
    }
}

impl Decode for Key {
    fn decode(buf: &mut impl Buf) -> crate::Result<Self> {
        let table = TableId::new(crate::codec::get_u32(buf)? as usize);
        let record = crate::codec::get_u64(buf)?;
        Ok(Key { table, record })
    }
}

/// A globally unique partition handle: `(table, partition number)` packed into
/// a single [`PartitionId`].
///
/// The packing reserves bits 48..63 for the table — the topmost bit stays
/// clear, which lets downstream code use it for shadow keys — capping the
/// reproduction at 32,768 tables and ~2⁴⁸ partitions per table, far beyond
/// any workload here.
pub fn partition_id(table: TableId, partition_index: u64) -> PartitionId {
    debug_assert!(
        table.raw() < (1 << 15),
        "table id exceeds partition packing"
    );
    debug_assert!(
        partition_index < (1 << 48),
        "partition index exceeds partition packing"
    );
    PartitionId::new((((table.raw() as u64) << 48) | partition_index) as usize)
}

/// Inverse of [`partition_id`].
pub fn unpack_partition_id(pid: PartitionId) -> (TableId, u64) {
    let raw = pid.raw();
    (TableId::new((raw >> 48) as usize), raw & ((1 << 48) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_types_roundtrip_raw_values() {
        assert_eq!(SiteId::new(3).as_usize(), 3);
        assert_eq!(ClientId::new(42).raw(), 42);
        assert_eq!(format!("{}", PartitionId::new(7)), "p7");
        assert_eq!(format!("{:?}", SiteId::new(0)), "S0");
    }

    #[test]
    fn key_orders_by_table_then_record() {
        let a = Key::new(TableId::new(0), 99);
        let b = Key::new(TableId::new(1), 0);
        assert!(a < b);
    }

    #[test]
    fn partition_id_packs_and_unpacks() {
        let pid = partition_id(TableId::new(5), 123_456);
        let (t, p) = unpack_partition_id(pid);
        assert_eq!(t, TableId::new(5));
        assert_eq!(p, 123_456);
    }

    #[test]
    fn partition_ids_are_distinct_across_tables() {
        assert_ne!(
            partition_id(TableId::new(0), 1),
            partition_id(TableId::new(1), 1)
        );
    }

    #[test]
    fn key_codec_roundtrip() {
        use crate::codec::{Decode, Encode};
        let k = Key::new(TableId::new(9), 1 << 40);
        let mut buf = bytes::BytesMut::new();
        k.encode(&mut buf);
        assert_eq!(buf.len(), k.encoded_len());
        let mut b = buf.freeze();
        assert_eq!(Key::decode(&mut b).unwrap(), k);
    }
}
