//! Cell values and rows.
//!
//! The storage engine is row-oriented (§V-A1); a [`Row`] is a fixed-arity
//! vector of [`Value`] cells matching the owning table's schema. Values are
//! deliberately simple — the benchmark workloads (YCSB, TPC-C, SmallBank)
//! need integers, floats-as-fixed-point, and strings.

use std::fmt;

use bytes::{Buf, BufMut};

use crate::codec::{self, Decode, Encode};
use crate::error::{DynaError, Result};

/// A single cell value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Unsigned 64-bit integer (ids, counts).
    U64(u64),
    /// Signed 64-bit integer. Monetary amounts are stored as fixed-point
    /// cents (TPC-C, SmallBank) to keep rows hashable and comparisons exact.
    I64(i64),
    /// UTF-8 string (names, payload fields).
    Str(String),
    /// Raw bytes (YCSB payload).
    Bytes(Vec<u8>),
}

impl Value {
    /// Unwraps a `U64`, or errors.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Value::U64(v) => Ok(*v),
            _ => Err(DynaError::Internal("value is not u64")),
        }
    }

    /// Unwraps an `I64`, or errors.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::I64(v) => Ok(*v),
            _ => Err(DynaError::Internal("value is not i64")),
        }
    }

    /// Unwraps a `Str`, or errors.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(DynaError::Internal("value is not str")),
        }
    }

    /// In-memory payload size in bytes (used for traffic accounting).
    pub fn payload_size(&self) -> usize {
        match self {
            Value::U64(_) | Value::I64(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}u"),
            Value::I64(v) => write!(f, "{v}i"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl Encode for Value {
    fn encode(&self, buf: &mut impl BufMut) {
        match self {
            Value::U64(v) => {
                buf.put_u8(0);
                buf.put_u64(*v);
            }
            Value::I64(v) => {
                buf.put_u8(1);
                buf.put_i64(*v);
            }
            Value::Str(s) => {
                buf.put_u8(2);
                codec::put_bytes(buf, s.as_bytes());
            }
            Value::Bytes(b) => {
                buf.put_u8(3);
                codec::put_bytes(buf, b);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Value::U64(_) | Value::I64(_) => 8,
            Value::Str(s) => codec::bytes_len(s.as_bytes()),
            Value::Bytes(b) => codec::bytes_len(b),
        }
    }
}

impl Decode for Value {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        match codec::get_u8(buf)? {
            0 => Ok(Value::U64(codec::get_u64(buf)?)),
            1 => Ok(Value::I64(codec::get_i64(buf)?)),
            2 => Ok(Value::Str(codec::get_string(buf)?)),
            3 => Ok(Value::Bytes(codec::get_bytes(buf)?)),
            _ => Err(DynaError::Codec {
                what: "value tag",
                needed: 0,
                remaining: buf.remaining(),
            }),
        }
    }
}

/// A row: one cell per schema column.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Row {
    cells: Vec<Value>,
}

impl Row {
    /// Builds a row from cells.
    pub fn new(cells: Vec<Value>) -> Self {
        Row { cells }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cells.len()
    }

    /// The cell at `column`.
    pub fn cell(&self, column: usize) -> &Value {
        &self.cells[column]
    }

    /// Mutable access to the cell at `column`.
    pub fn cell_mut(&mut self, column: usize) -> &mut Value {
        &mut self.cells[column]
    }

    /// Replaces the cell at `column`.
    pub fn set(&mut self, column: usize, value: Value) {
        self.cells[column] = value;
    }

    /// All cells in order.
    pub fn cells(&self) -> &[Value] {
        &self.cells
    }

    /// In-memory payload size in bytes across all cells.
    pub fn payload_size(&self) -> usize {
        self.cells.iter().map(Value::payload_size).sum()
    }
}

impl Encode for Row {
    fn encode(&self, buf: &mut impl BufMut) {
        codec::encode_seq(&self.cells, buf);
    }

    fn encoded_len(&self) -> usize {
        codec::seq_len(&self.cells)
    }
}

impl Decode for Row {
    fn decode(buf: &mut impl Buf) -> Result<Self> {
        Ok(Row {
            cells: codec::decode_seq(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_enforce_types() {
        let v = Value::U64(7);
        assert_eq!(v.as_u64().unwrap(), 7);
        assert!(v.as_i64().is_err());
        assert!(Value::Str("x".into()).as_str().is_ok());
    }

    #[test]
    fn value_roundtrips_all_variants() {
        for v in [
            Value::U64(42),
            Value::I64(-42),
            Value::Str("hello".into()),
            Value::Bytes(vec![1, 2, 3]),
        ] {
            let buf = codec::encode_to_vec(&v);
            let mut slice = &buf[..];
            assert_eq!(Value::decode(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn row_roundtrips_and_reports_sizes() {
        let row = Row::new(vec![Value::U64(1), Value::Str("abcd".into())]);
        assert_eq!(row.arity(), 2);
        assert_eq!(row.payload_size(), 12);
        let buf = codec::encode_to_vec(&row);
        let mut slice = &buf[..];
        assert_eq!(Row::decode(&mut slice).unwrap(), row);
    }

    #[test]
    fn row_cells_can_be_mutated_in_place() {
        let mut row = Row::new(vec![Value::I64(100)]);
        if let Value::I64(v) = row.cell_mut(0) {
            *v += 50;
        }
        assert_eq!(row.cell(0).as_i64().unwrap(), 150);
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut bad: &[u8] = &[9, 0, 0];
        assert!(Value::decode(&mut bad).is_err());
    }
}
