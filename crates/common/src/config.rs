//! System-wide configuration.
//!
//! [`SystemConfig`] collects the knobs the paper mentions: number of data
//! sites, number of retained record versions (four, §V-A1), partition
//! granularity (YCSB uses 100-key partitions, Appendix C), the site-selector
//! strategy weights (Eq. 8, Appendix H), statistics sampling, and the
//! simulated-network latency model that stands in for the paper's 10GbE +
//! Thrift deployment.

use std::time::Duration;

/// Weights of the site selector's linear remastering model (paper Eq. 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StrategyWeights {
    /// `w_balance`: weight of the write-load-balance factor (Eqs. 2–4).
    pub balance: f64,
    /// `w_delay`: weight of the refresh-delay estimate (Eq. 5). Applied
    /// negatively — a lagging destination is penalised.
    pub delay: f64,
    /// `w_intra_txn`: weight of intra-transaction co-access localization
    /// (Eq. 6).
    pub intra_txn: f64,
    /// `w_inter_txn`: weight of inter-transaction co-access localization
    /// (Eq. 7).
    pub inter_txn: f64,
}

impl StrategyWeights {
    /// Appendix H weights for YCSB: balance dominates, intra-transaction
    /// correlations second, inter-transaction correlations off (already
    /// captured by intra for range-correlated partitions).
    ///
    /// Calibration note: the paper uses `w_balance = 10⁶` against its own
    /// (unspecified-scale) balance-distance function. This implementation's
    /// distance is the squared L2 deviation from the uniform write
    /// distribution, whose per-decision deltas are far smaller, so the same
    /// *priority order* — balance decisive when the system is imbalanced,
    /// co-location decisive near balance — needs a proportionally smaller
    /// weight. 10⁴ preserves that hierarchy; 10⁶ here would let balance
    /// noise override co-location and ping-pong overlapping neighbourhoods.
    pub fn ycsb() -> Self {
        StrategyWeights {
            balance: 10_000.0,
            delay: 0.5,
            intra_txn: 3.0,
            inter_txn: 0.0,
        }
    }

    /// Appendix H weights for SmallBank: as YCSB but with `w_balance`
    /// lowered drastically — short transactions place little load, so
    /// access patterns matter comparatively more, and crucially the hot
    /// account set must be allowed to *clump* at one site instead of being
    /// sheared apart by balance on every transfer. (Recalibrated to this
    /// implementation's balance-distance scale; see
    /// [`StrategyWeights::ycsb`].)
    pub fn smallbank() -> Self {
        StrategyWeights {
            balance: 50.0,
            delay: 0.5,
            intra_txn: 3.0,
            inter_txn: 0.0,
        }
    }

    /// Appendix H weights for TPC-C: co-access localization near the
    /// ~90% single-warehouse probability, with a small non-zero balance
    /// term "which ensures that the system considers load balance".
    /// (Balance recalibrated to this implementation's distance scale: with
    /// the paper's 0.01 the balance force would be numerically zero here,
    /// every cold-start placement would tie-break to site 0, and DynaMast
    /// would degenerate into single-master; see [`StrategyWeights::ycsb`].)
    pub fn tpcc() -> Self {
        StrategyWeights {
            balance: 500.0,
            delay: 0.05,
            intra_txn: 0.88,
            inter_txn: 0.88,
        }
    }

    /// Scales one weight, for the Figure 5a sensitivity sweeps.
    #[must_use]
    pub fn with_scaled(mut self, which: WeightKind, factor: f64) -> Self {
        match which {
            WeightKind::Balance => self.balance *= factor,
            WeightKind::Delay => self.delay *= factor,
            WeightKind::IntraTxn => self.intra_txn *= factor,
            WeightKind::InterTxn => self.inter_txn *= factor,
        }
        self
    }

    /// Zeroes one weight (removing its feature from the model), for the
    /// Figure 5a ablations.
    #[must_use]
    pub fn without(mut self, which: WeightKind) -> Self {
        match which {
            WeightKind::Balance => self.balance = 0.0,
            WeightKind::Delay => self.delay = 0.0,
            WeightKind::IntraTxn => self.intra_txn = 0.0,
            WeightKind::InterTxn => self.inter_txn = 0.0,
        }
        self
    }
}

/// Names the four hyperparameters for sweeps and ablations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightKind {
    /// `w_balance`.
    Balance,
    /// `w_delay`.
    Delay,
    /// `w_intra_txn`.
    IntraTxn,
    /// `w_inter_txn`.
    InterTxn,
}

/// Deadline and retry policy for RPCs issued over the simulated network.
///
/// Faults (message drops, partitions, crashed endpoints) surface to callers
/// as `DynaError::Timeout` / `DynaError::Network`; a resilient caller retries
/// with capped exponential backoff and seeded jitter until either the
/// per-call attempt budget or the overall deadline is exhausted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Deadline for a single attempt's reply.
    pub attempt_timeout: Duration,
    /// Maximum number of attempts (≥ 1); the first send counts as one.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubled each retry.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Overall deadline across all attempts and backoffs.
    pub deadline: Duration,
}

impl RetryPolicy {
    /// Default policy: generous enough to ride out delay spikes and a site
    /// restart, tight enough that chaos tests finish under their watchdog.
    pub fn standard() -> Self {
        RetryPolicy {
            attempt_timeout: Duration::from_millis(500),
            max_attempts: 6,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(50),
            deadline: Duration::from_secs(10),
        }
    }

    /// A single attempt with a bounded wait: fail fast, no retransmission.
    pub fn one_shot(attempt_timeout: Duration) -> Self {
        RetryPolicy {
            attempt_timeout,
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            deadline: attempt_timeout,
        }
    }
}

/// Simulated network latency model.
///
/// The paper runs on a 10Gbit/s LAN; network time is >40% of transaction
/// latency (Fig. 7). We charge each message a constant one-way delay plus a
/// per-byte cost, with optional uniform jitter. Setting everything to zero
/// yields an instantaneous network for unit tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkConfig {
    /// Constant one-way delay per message.
    pub one_way_delay: Duration,
    /// Additional delay per KiB of payload (bandwidth term).
    pub delay_per_kib: Duration,
    /// Uniform jitter added in `[0, jitter]`.
    pub jitter: Duration,
    /// Deadline/retry policy applied by resilient RPC callers.
    pub retry: RetryPolicy,
}

impl NetworkConfig {
    /// Zero-latency network for unit and protocol tests.
    pub fn instant() -> Self {
        NetworkConfig {
            one_way_delay: Duration::ZERO,
            delay_per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            retry: RetryPolicy::standard(),
        }
    }

    /// LAN-like latency used by the benchmark harness: 100µs one way
    /// (~typical same-rack RTT of 200µs), 1µs per KiB (~1GB/s effective),
    /// 20µs jitter.
    pub fn lan() -> Self {
        NetworkConfig {
            one_way_delay: Duration::from_micros(100),
            delay_per_kib: Duration::from_micros(1),
            jitter: Duration::from_micros(20),
            retry: RetryPolicy::standard(),
        }
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Total one-way delay for a payload of `bytes` (before jitter).
    pub fn delay_for(&self, bytes: usize) -> Duration {
        self.one_way_delay + self.delay_per_kib * (bytes as u32 / 1024)
    }
}

/// How widely each partition is replicated across the data sites.
///
/// The paper's deployment is fully replicated (every site stores every
/// partition, §V-A); partial replication keeps a per-partition subset of
/// sites as copy holders, bounded below by a floor so remastering and
/// fail-over always have a second copy to fall back on. Full replication is
/// the degenerate configuration where the replica set of every partition is
/// all sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Every site stores every partition (the seed behavior).
    Full,
    /// Each partition is stored at a dynamic subset of sites, never fewer
    /// than `floor` copies (and always including the current master).
    Partial {
        /// Minimum number of copies per partition (≥ 2 so the master is
        /// never the sole holder).
        floor: usize,
    },
}

impl ReplicationMode {
    /// Whether this mode replicates only a subset of sites per partition.
    pub fn is_partial(&self) -> bool {
        matches!(self, ReplicationMode::Partial { .. })
    }

    /// The effective replica floor under `num_sites` sites: the configured
    /// floor clamped to `[2, num_sites]` (full replication floors at all
    /// sites).
    pub fn effective_floor(&self, num_sites: usize) -> usize {
        match self {
            ReplicationMode::Full => num_sites,
            ReplicationMode::Partial { floor } => (*floor).clamp(2, num_sites.max(1)),
        }
    }
}

/// When the durable log's segment writer calls `fsync`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncMode {
    /// Every committer waits until its own record is on disk before its
    /// commit acknowledges. Strongest guarantee; serializes commit
    /// acknowledgment behind the gap-closing writer's fsync.
    Always,
    /// One `fsync` per group-committed run: the gap-closing fill that
    /// publishes a contiguous run syncs the whole run in one call, and
    /// committers whose record rides someone else's run acknowledge without
    /// waiting. Durability lags commit acknowledgment by at most one run.
    Group,
    /// Segments are written but never explicitly synced; durability is
    /// whatever the OS page cache survives. Benchmarks use this to isolate
    /// the protocol cost from the disk.
    Off,
}

/// Durable-log configuration. With `log_dir = None` (the default) logs are
/// purely in-memory — the seed behavior, and what every benchmark that
/// measures protocol cost uses.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Root directory for per-site segment/checkpoint directories
    /// (`<log_dir>/site-<id>/`). `None` keeps logs in memory only.
    pub log_dir: Option<std::path::PathBuf>,
    /// When to `fsync` appended segments.
    pub fsync: FsyncMode,
    /// Rotate to a new segment file once the current one exceeds this many
    /// bytes of frames (header excluded).
    pub segment_bytes: u64,
}

impl DurabilityConfig {
    /// In-memory logs (the default).
    pub fn volatile() -> Self {
        DurabilityConfig {
            log_dir: None,
            fsync: FsyncMode::Off,
            segment_bytes: 4 << 20,
        }
    }
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self::volatile()
    }
}

/// Top-level system configuration shared by all five evaluated systems.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Number of data sites (`m`).
    pub num_sites: usize,
    /// Retained versions per record (default 4, §V-A1).
    pub mvcc_versions: usize,
    /// Keys per partition for key-range partitioned tables (YCSB uses 100).
    pub partition_size: u64,
    /// Site-selector strategy weights (Eq. 8).
    pub weights: StrategyWeights,
    /// Simulated network latency.
    pub network: NetworkConfig,
    /// Site-selector statistics: fraction of write sets sampled into the
    /// transaction history queue (§V-B). 1.0 samples everything.
    pub sample_rate: f64,
    /// Site-selector statistics: capacity of the per-system history queue;
    /// the oldest sample is expired (its counts decremented) on overflow.
    pub history_capacity: usize,
    /// Δt window for inter-transaction co-access correlation (Eq. 7).
    pub inter_txn_window: Duration,
    /// Upper bound on distinct co-access counter partners tracked per
    /// partition (keeps the statistics tables bounded under adversarial
    /// workloads).
    pub max_coaccess_partners: usize,
    /// Ablation switch: perform release/grant operations one partition at
    /// a time instead of in parallel. The paper's Algorithm 1 parallelizes
    /// them ("parallel execution of release and grant operations greatly
    /// speed up remastering"); enabling this quantifies that claim.
    pub sequential_remastering: bool,
    /// Epoch-batched group remastering (off by default). Instead of an
    /// inline release/grant pair per routed transaction, the selector
    /// queues the move, routes the transaction to the current master, and
    /// flushes the queue at the epoch boundary as coalesced per-site-pair
    /// `BatchRelease`/`BatchGrant` RPCs.
    pub remaster_batching: bool,
    /// Epoch boundary by count: the pending-move queue flushes once it
    /// holds this many distinct partitions.
    pub epoch_max_moves: usize,
    /// Epoch boundary by time: the queue also flushes once this much time
    /// has passed since the first move was queued. `Duration::ZERO`
    /// disables the time trigger (count-only epochs — what deterministic
    /// replay tests need, since flush timing then depends only on the
    /// route sequence).
    pub epoch_interval: Duration,
    /// No-stall guarantee: how many transactions may route to the *old*
    /// master of a queued partition before the selector gives up on the
    /// epoch and moves that partition inline immediately.
    pub remaster_wait_budget: u32,
    /// Fixed simulated CPU cost per stored-procedure execution (parsing,
    /// plan dispatch). Occupies an RPC worker, modelling the paper's
    /// 12-core data-site machines; ~45% of transaction latency is
    /// execution in Fig. 7.
    pub service_base: Duration,
    /// Additional simulated CPU cost per row read, scanned, or written.
    pub service_per_op: Duration,
    /// Seed for all deterministic randomness (workloads, jitter).
    pub seed: u64,
    /// Durable-log settings (in-memory by default).
    pub durability: DurabilityConfig,
    /// Replica-set policy: full replication (default) or a dynamic
    /// per-partition subset with a copy floor.
    pub replication: ReplicationMode,
    /// Whether the adaptive replica-provisioning planner runs under partial
    /// replication (default). Off pins every replica set at its floor
    /// assignment — copies still move for correctness (create-then-grant,
    /// NotReplica repair), but the planner never widens hot partitions or
    /// sheds cold ones. Benchmarks use this to measure the floor deployment
    /// itself, operators to pin replica sets during maintenance.
    pub replica_provisioning: bool,
}

impl SystemConfig {
    /// A small default configuration: 4 sites, LAN network, YCSB weights.
    pub fn new(num_sites: usize) -> Self {
        SystemConfig {
            num_sites,
            mvcc_versions: 4,
            partition_size: 100,
            weights: StrategyWeights::ycsb(),
            network: NetworkConfig::lan(),
            sample_rate: 1.0,
            history_capacity: 4096,
            inter_txn_window: Duration::from_millis(100),
            max_coaccess_partners: 64,
            sequential_remastering: false,
            remaster_batching: false,
            epoch_max_moves: 32,
            epoch_interval: Duration::ZERO,
            remaster_wait_budget: 64,
            service_base: Duration::from_micros(800),
            service_per_op: Duration::from_micros(2),
            seed: 0x000D_A11A_5EED,
            durability: DurabilityConfig::volatile(),
            replication: ReplicationMode::Full,
            replica_provisioning: true,
        }
    }

    /// Same configuration with an instantaneous network (for tests).
    #[must_use]
    pub fn with_instant_network(mut self) -> Self {
        self.network = NetworkConfig::instant();
        self
    }

    /// Zero simulated CPU cost (protocol tests that should run instantly).
    #[must_use]
    pub fn with_instant_service(mut self) -> Self {
        self.service_base = Duration::ZERO;
        self.service_per_op = Duration::ZERO;
        self
    }

    /// Replaces the strategy weights.
    #[must_use]
    pub fn with_weights(mut self, weights: StrategyWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Puts the redo logs on disk under `log_dir` with the given fsync mode
    /// (segment size stays at the [`DurabilityConfig::volatile`] default).
    #[must_use]
    pub fn with_durability(mut self, log_dir: std::path::PathBuf, fsync: FsyncMode) -> Self {
        self.durability.log_dir = Some(log_dir);
        self.durability.fsync = fsync;
        self
    }

    /// Replaces the segment rotation threshold (crash-sim tests use tiny
    /// segments so rotation and truncation are exercised in short runs).
    #[must_use]
    pub fn with_segment_bytes(mut self, segment_bytes: u64) -> Self {
        self.durability.segment_bytes = segment_bytes;
        self
    }

    /// Switches to partial replication with the given per-partition copy
    /// floor (clamped to at least 2 at build time so fail-over always has a
    /// survivor copy).
    #[must_use]
    pub fn with_partial_replication(mut self, floor: usize) -> Self {
        self.replication = ReplicationMode::Partial { floor };
        self
    }

    /// Pins every replica set at its floor assignment: the provisioning
    /// planner never widens or sheds, only correctness-driven copy moves
    /// (create-then-grant, repair) happen.
    #[must_use]
    pub fn with_frozen_replica_sets(mut self) -> Self {
        self.replica_provisioning = false;
        self
    }

    /// Enables epoch-batched group remastering with a count-triggered
    /// epoch boundary (`epoch_interval` stays as configured; the default
    /// `Duration::ZERO` keeps epochs count-only and replay-deterministic).
    #[must_use]
    pub fn with_epoch_batching(mut self, max_moves: usize, wait_budget: u32) -> Self {
        self.remaster_batching = true;
        self.epoch_max_moves = max_moves;
        self.remaster_wait_budget = wait_budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_h_presets_match_paper() {
        let y = StrategyWeights::ycsb();
        // Recalibrated for this implementation's balance-distance scale (see
        // the ycsb() docs); the paper's value is 10⁶ on its own scale.
        assert_eq!(y.balance, 10_000.0);
        assert_eq!(y.intra_txn, 3.0);
        assert_eq!(y.inter_txn, 0.0);
        assert_eq!(y.delay, 0.5);
        let t = StrategyWeights::tpcc();
        assert_eq!(t.intra_txn, t.inter_txn);
        // Balance weights are recalibrated per workload to this
        // implementation's distance scale; YCSB's balance force is the
        // strongest, as in the paper.
        let y = StrategyWeights::ycsb();
        let s = StrategyWeights::smallbank();
        assert!(y.balance > s.balance && y.balance > t.balance);
        assert!(s.balance > 0.0 && t.balance > 0.0);
    }

    #[test]
    fn weight_sweep_helpers_scale_and_zero() {
        let w = StrategyWeights::ycsb().with_scaled(WeightKind::Balance, 0.01);
        assert_eq!(w.balance, 100.0);
        let w = w.without(WeightKind::IntraTxn);
        assert_eq!(w.intra_txn, 0.0);
        assert_eq!(w.delay, 0.5);
    }

    #[test]
    fn network_delay_scales_with_payload() {
        let net = NetworkConfig {
            one_way_delay: Duration::from_micros(100),
            delay_per_kib: Duration::from_micros(10),
            jitter: Duration::ZERO,
            retry: RetryPolicy::standard(),
        };
        assert_eq!(net.delay_for(100), Duration::from_micros(100));
        assert_eq!(net.delay_for(4096), Duration::from_micros(140));
        assert_eq!(NetworkConfig::instant().delay_for(1 << 20), Duration::ZERO);
    }

    #[test]
    fn config_builders_compose() {
        let cfg = SystemConfig::new(8)
            .with_instant_network()
            .with_weights(StrategyWeights::tpcc())
            .with_seed(7);
        assert_eq!(cfg.num_sites, 8);
        assert_eq!(cfg.network, NetworkConfig::instant());
        assert_eq!(cfg.weights, StrategyWeights::tpcc());
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.mvcc_versions, 4);
    }

    #[test]
    fn replication_mode_defaults_to_full_and_clamps_floor() {
        let cfg = SystemConfig::new(4);
        assert_eq!(cfg.replication, ReplicationMode::Full);
        assert!(!cfg.replication.is_partial());
        assert_eq!(cfg.replication.effective_floor(4), 4);
        let cfg = cfg.with_partial_replication(2);
        assert!(cfg.replication.is_partial());
        assert_eq!(cfg.replication.effective_floor(4), 2);
        // Floors clamp into [2, num_sites].
        assert_eq!(ReplicationMode::Partial { floor: 0 }.effective_floor(4), 2);
        assert_eq!(ReplicationMode::Partial { floor: 9 }.effective_floor(4), 4);
    }

    #[test]
    fn epoch_batching_builder_sets_knobs() {
        let cfg = SystemConfig::new(3);
        assert!(!cfg.remaster_batching);
        let cfg = cfg.with_epoch_batching(8, 16);
        assert!(cfg.remaster_batching);
        assert_eq!(cfg.epoch_max_moves, 8);
        assert_eq!(cfg.remaster_wait_budget, 16);
        assert_eq!(cfg.epoch_interval, Duration::ZERO);
    }
}
