//! Shared foundation types for the DynaMast reproduction.
//!
//! This crate contains the vocabulary used by every other crate in the
//! workspace:
//!
//! * [`vv::VersionVector`] — the m-dimensional vectors the dynamic mastering
//!   protocol uses as site state (`svv`), transaction begin/commit timestamps
//!   (`tvv`), and client session state (`cvv`) (paper §III-A).
//! * [`ids`] — strongly typed identifiers for sites, clients, tables,
//!   partitions and records.
//! * [`value`] — cell values and rows stored by the in-memory engine.
//! * [`config`] — system-wide configuration, including the site-selector
//!   strategy weights of paper Eq. 8 / Appendix H.
//! * [`metrics`] — latency histograms and counters used by the benchmark
//!   harness to report the paper's figures, unified under the
//!   [`metrics::MetricsRegistry`].
//! * [`trace`] — the flight recorder: a bounded per-thread event ring that
//!   records every transaction's causal path through the system.
//! * [`audit`] — the invariant audit plane: streaming conservation and
//!   ownership checkers over the flight recorder, with black-box repro
//!   bundles on violation.
//! * [`dist`] — workload distributions (Zipfian, Bernoulli-neighbour) shared
//!   by the YCSB/TPC-C/SmallBank generators.
//! * [`codec`] — the small explicit byte codec used for log records and RPC
//!   payload sizing.

pub mod audit;
pub mod codec;
pub mod config;
pub mod dist;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod trace;
pub mod value;
pub mod vv;

pub use config::{DurabilityConfig, FsyncMode, RetryPolicy, StrategyWeights, SystemConfig};
pub use error::{DynaError, Result};
pub use ids::{ClientId, Key, PartitionId, RecordId, SiteId, TableId};
pub use metrics::MetricsRegistry;
pub use trace::{FlightRecorder, TraceEvent, TraceKind, TracePayload, TraceSite};
pub use value::{Row, Value};
pub use vv::VersionVector;
