//! Workload distributions.
//!
//! * [`Zipfian`] — the skewed key/partition selector used by the paper's
//!   skewed YCSB experiments (ρ = 0.75).
//! * [`bernoulli_neighbor_offset`] — the Appendix C neighbour-partition
//!   selector for multi-partition read-modify-write transactions: a
//!   Binomial(5, 0.5) draw re-centred on the base partition, yielding offsets
//!   in `[-3, +2]` around it.

use rand::Rng;

/// Zipfian distribution over `0..n` with exponent `theta`, using the
/// classic Gray et al. rejection-free inversion method ("Quickly generating
/// billion-record synthetic databases", SIGMOD '94).
///
/// Item 0 is the most popular. The paper's skewed YCSB workloads use
/// `theta = 0.75`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a Zipfian distribution over `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian over empty domain");
        assert!(
            theta > 0.0 && theta < 1.0,
            "theta must be in (0,1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation; domains here are ≤ a few million and the
        // constructor runs once per workload.
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Draws an item in `0..n`, 0 being the hottest.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        v.min(self.n - 1)
    }
}

/// Appendix C neighbour-partition selection: sample Binomial(5, 0.5)
/// successes and treat the centre (3 successes in the paper's example) as
/// offset 0, so `k` successes yield offset `k - 3` partitions relative to the
/// base partition.
///
/// Offsets fall in `[-3, +2]`.
pub fn bernoulli_neighbor_offset(rng: &mut impl Rng) -> i64 {
    let mut successes = 0i64;
    for _ in 0..5 {
        if rng.gen_bool(0.5) {
            successes += 1;
        }
    }
    successes - 3
}

/// Clamps `base + offset` into `[0, n)` with saturation, for partition
/// neighbourhood selection at domain edges.
pub fn clamp_offset(base: u64, offset: i64, n: u64) -> u64 {
    debug_assert!(n > 0);
    let shifted = base as i128 + offset as i128;
    shifted.clamp(0, (n - 1) as i128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipfian_stays_in_domain() {
        let z = Zipfian::new(100, 0.75);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipfian_is_skewed_toward_low_items() {
        let z = Zipfian::new(1000, 0.75);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0u32;
        let trials = 50_000;
        for _ in 0..trials {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under uniform access the first 10 of 1000 items get ~1% of draws;
        // under Zipf(0.75) they get a large multiple of that.
        let frac = head as f64 / trials as f64;
        assert!(frac > 0.10, "zipf head fraction too small: {frac}");
    }

    #[test]
    fn zipfian_singleton_domain_always_zero() {
        let z = Zipfian::new(1, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn zipfian_rejects_empty_domain() {
        let _ = Zipfian::new(0, 0.5);
    }

    #[test]
    fn neighbor_offsets_cover_expected_range_and_center() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 6];
        let trials = 100_000;
        for _ in 0..trials {
            let off = bernoulli_neighbor_offset(&mut rng);
            assert!((-3..=2).contains(&off));
            counts[(off + 3) as usize] += 1;
        }
        // Binomial(5, 0.5) puts ~31% mass on exactly 2 and 3 successes each
        // (offsets -1 and 0).
        let p0 = counts[3] as f64 / trials as f64;
        assert!((p0 - 0.3125).abs() < 0.02, "P(offset=0) = {p0}");
    }

    #[test]
    fn clamp_offset_saturates_at_edges() {
        assert_eq!(clamp_offset(0, -3, 100), 0);
        assert_eq!(clamp_offset(99, 2, 100), 99);
        assert_eq!(clamp_offset(50, -2, 100), 48);
    }
}
